#ifndef STETHO_SCOPE_ANALYSIS_H_
#define STETHO_SCOPE_ANALYSIS_H_

#include <string>
#include <vector>

#include "profiler/event.h"

namespace stetho::scope {

/// --- Multi-core utilization (paper §5: "utilization distribution of
/// threads", "Multi-core utilization analysis exhibits degree of
/// multi-threaded parallelization") ---

struct ThreadUtilization {
  int thread = 0;
  int64_t busy_us = 0;        ///< sum of instruction durations on this thread
  int64_t instructions = 0;   ///< done events observed
};

struct UtilizationReport {
  int64_t wall_us = 0;  ///< first start → last done
  std::vector<ThreadUtilization> threads;
  size_t max_concurrency = 0;   ///< peak simultaneously-running instructions
  double avg_concurrency = 0;   ///< total busy / wall

  /// Human-readable distribution table.
  std::string ToString() const;
};

UtilizationReport AnalyzeThreadUtilization(
    const std::vector<profiler::TraceEvent>& events);

/// --- Memory usage by operators (paper §5: "memory usage by operators") ---

struct OperatorStats {
  std::string op;        ///< "module.function"
  int64_t calls = 0;
  int64_t total_usec = 0;
  int64_t max_usec = 0;
  int64_t p50_usec = 0;  ///< median call duration
  int64_t p95_usec = 0;  ///< 95th-percentile call duration
  int64_t max_rss_bytes = 0;  ///< peak engine memory observed at this op
};

/// Aggregates done events by operator, sorted by total time (descending).
std::vector<OperatorStats> AnalyzeOperators(
    const std::vector<profiler::TraceEvent>& events);

/// --- Costly-instruction clustering (paper §5: "costly instruction
/// clustering", "sequence of instruction execution clustering") ---

struct CostlyCluster {
  size_t first_event = 0;   ///< index into the event vector
  size_t last_event = 0;
  std::vector<int> pcs;     ///< costly instructions in the cluster
  int64_t total_usec = 0;
};

/// Groups costly done events (usec >= min_usec) that are within
/// `max_gap_events` trace positions of each other.
std::vector<CostlyCluster> FindCostlyClusters(
    const std::vector<profiler::TraceEvent>& events, int64_t min_usec,
    size_t max_gap_events = 8);

/// --- Parallelism diagnosis (paper §5: "we have uncovered several unusual
/// cases, such as sequential execution of a MAL plan where multithreaded
/// execution was expected") ---

struct ParallelismDiagnosis {
  size_t max_concurrency = 0;
  double avg_concurrency = 0;
  int threads_used = 0;
  int expected_dop = 0;
  bool sequential_anomaly = false;
  std::string summary;
};

ParallelismDiagnosis DiagnoseParallelism(
    const std::vector<profiler::TraceEvent>& events, int expected_dop);

/// --- Cross-run comparison (micro analysis, paper §6) ---

/// Per-instruction change between two traces of the same plan.
struct TraceDelta {
  int pc = 0;
  std::string op;            ///< "module.function"
  int64_t usec_a = 0;        ///< total completed time in trace A
  int64_t usec_b = 0;        ///< ... and in trace B
  int64_t delta_usec() const { return usec_b - usec_a; }
};

struct TraceComparison {
  int64_t total_usec_a = 0;
  int64_t total_usec_b = 0;
  /// Pcs present in both, sorted by |delta| descending (regressions and
  /// improvements first).
  std::vector<TraceDelta> deltas;
  std::vector<int> only_in_a;  ///< executed only in trace A
  std::vector<int> only_in_b;

  /// Human-readable regression report (top `top_n` movers).
  std::string ToString(size_t top_n = 10) const;
};

/// Compares two traces of the same plan pc-by-pc — the "micro analysis"
/// workflow: record a query twice (e.g. before/after a kernel change) and
/// diff where the time went.
TraceComparison CompareTraces(const std::vector<profiler::TraceEvent>& a,
                              const std::vector<profiler::TraceEvent>& b);

/// --- Progress (paper §5: "Monitor the progress of query plan execution") ---

/// Fraction of plan instructions with a done event, in [0, 1].
double EstimateProgress(const std::vector<profiler::TraceEvent>& events,
                        size_t plan_size);

}  // namespace stetho::scope

#endif  // STETHO_SCOPE_ANALYSIS_H_
