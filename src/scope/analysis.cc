#include "scope/analysis.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/string_util.h"

namespace stetho::scope {

using profiler::EventState;
using profiler::TraceEvent;

namespace {

/// Extracts "module.function" from a rendered MAL statement.
std::string OperatorOf(const std::string& stmt) {
  size_t start = 0;
  size_t assign = stmt.find(":=");
  if (assign != std::string::npos) start = assign + 2;
  while (start < stmt.size() && stmt[start] == ' ') ++start;
  size_t paren = stmt.find('(', start);
  if (paren == std::string::npos) return stmt.substr(start);
  return stmt.substr(start, paren - start);
}

}  // namespace

UtilizationReport AnalyzeThreadUtilization(const std::vector<TraceEvent>& events) {
  UtilizationReport report;
  if (events.empty()) return report;

  std::map<int, ThreadUtilization> threads;
  int64_t first_us = events.front().time_us;
  int64_t last_us = events.front().time_us;
  int64_t total_busy = 0;

  // Concurrency sweep: +1 at each start timestamp, -1 at each done.
  std::vector<std::pair<int64_t, int>> deltas;
  for (const TraceEvent& e : events) {
    first_us = std::min(first_us, e.time_us);
    last_us = std::max(last_us, e.time_us);
    if (e.state == EventState::kStart) {
      deltas.emplace_back(e.time_us, +1);
      continue;
    }
    ThreadUtilization& t = threads[e.thread];
    t.thread = e.thread;
    t.busy_us += e.usec;
    ++t.instructions;
    total_busy += e.usec;
    deltas.emplace_back(e.time_us, -1);
  }
  std::stable_sort(deltas.begin(), deltas.end(),
                   [](const auto& a, const auto& b) {
                     if (a.first != b.first) return a.first < b.first;
                     // Done before start at equal timestamps: conservative.
                     return a.second < b.second;
                   });
  int64_t running = 0;
  int64_t peak = 0;
  for (const auto& [ts, delta] : deltas) {
    running += delta;
    peak = std::max(peak, running);
  }

  report.wall_us = last_us - first_us;
  report.max_concurrency = static_cast<size_t>(peak);
  report.avg_concurrency =
      report.wall_us > 0
          ? static_cast<double>(total_busy) / static_cast<double>(report.wall_us)
          : 0.0;
  for (auto& [id, t] : threads) report.threads.push_back(t);
  return report;
}

std::string UtilizationReport::ToString() const {
  std::string out = StrFormat(
      "wall=%lldus max_concurrency=%zu avg_concurrency=%.2f\n",
      static_cast<long long>(wall_us), max_concurrency, avg_concurrency);
  for (const ThreadUtilization& t : threads) {
    double share = wall_us > 0 ? 100.0 * static_cast<double>(t.busy_us) /
                                     static_cast<double>(wall_us)
                               : 0.0;
    out += StrFormat("  thread %d: busy=%lldus (%.1f%%) instructions=%lld\n",
                     t.thread, static_cast<long long>(t.busy_us), share,
                     static_cast<long long>(t.instructions));
  }
  return out;
}

std::vector<OperatorStats> AnalyzeOperators(const std::vector<TraceEvent>& events) {
  std::map<std::string, OperatorStats> by_op;
  std::map<std::string, std::vector<int64_t>> durations;
  for (const TraceEvent& e : events) {
    if (e.state != EventState::kDone) continue;
    std::string op = OperatorOf(e.stmt);
    OperatorStats& stats = by_op[op];
    stats.op = op;
    ++stats.calls;
    stats.total_usec += e.usec;
    stats.max_usec = std::max(stats.max_usec, e.usec);
    stats.max_rss_bytes = std::max(stats.max_rss_bytes, e.rss_bytes);
    durations[op].push_back(e.usec);
  }
  for (auto& [op, samples] : durations) {
    std::sort(samples.begin(), samples.end());
    OperatorStats& stats = by_op[op];
    // Nearest-rank percentiles.
    stats.p50_usec = samples[(samples.size() - 1) / 2];
    stats.p95_usec = samples[(samples.size() * 95) / 100 >= samples.size()
                                 ? samples.size() - 1
                                 : (samples.size() * 95) / 100];
  }
  std::vector<OperatorStats> out;
  out.reserve(by_op.size());
  for (auto& [op, stats] : by_op) out.push_back(std::move(stats));
  std::sort(out.begin(), out.end(), [](const OperatorStats& a, const OperatorStats& b) {
    return a.total_usec > b.total_usec;
  });
  return out;
}

std::vector<CostlyCluster> FindCostlyClusters(
    const std::vector<TraceEvent>& events, int64_t min_usec,
    size_t max_gap_events) {
  std::vector<CostlyCluster> clusters;
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    if (e.state != EventState::kDone || e.usec < min_usec) continue;
    if (!clusters.empty() &&
        i - clusters.back().last_event <= max_gap_events) {
      CostlyCluster& c = clusters.back();
      c.last_event = i;
      c.pcs.push_back(e.pc);
      c.total_usec += e.usec;
      continue;
    }
    CostlyCluster c;
    c.first_event = i;
    c.last_event = i;
    c.pcs.push_back(e.pc);
    c.total_usec = e.usec;
    clusters.push_back(std::move(c));
  }
  return clusters;
}

ParallelismDiagnosis DiagnoseParallelism(const std::vector<TraceEvent>& events,
                                         int expected_dop) {
  UtilizationReport util = AnalyzeThreadUtilization(events);
  ParallelismDiagnosis diag;
  diag.max_concurrency = util.max_concurrency;
  diag.avg_concurrency = util.avg_concurrency;
  diag.threads_used = static_cast<int>(util.threads.size());
  diag.expected_dop = expected_dop;
  diag.sequential_anomaly =
      expected_dop > 1 &&
      (diag.threads_used <= 1 || util.max_concurrency <= 1);
  if (diag.sequential_anomaly) {
    diag.summary = StrFormat(
        "ANOMALY: plan executed sequentially (threads=%d, peak "
        "concurrency=%zu) although dop=%d was expected",
        diag.threads_used, diag.max_concurrency, expected_dop);
  } else {
    diag.summary = StrFormat(
        "plan used %d threads, peak concurrency %zu (dop=%d)",
        diag.threads_used, diag.max_concurrency, expected_dop);
  }
  return diag;
}

namespace {

/// Total completed time and operator per pc.
std::map<int, std::pair<int64_t, std::string>> SumByPc(
    const std::vector<TraceEvent>& events) {
  std::map<int, std::pair<int64_t, std::string>> out;
  for (const TraceEvent& e : events) {
    if (e.state != EventState::kDone) continue;
    auto& entry = out[e.pc];
    entry.first += e.usec;
    if (entry.second.empty()) entry.second = OperatorOf(e.stmt);
  }
  return out;
}

}  // namespace

TraceComparison CompareTraces(const std::vector<TraceEvent>& a,
                              const std::vector<TraceEvent>& b) {
  TraceComparison cmp;
  auto by_pc_a = SumByPc(a);
  auto by_pc_b = SumByPc(b);
  for (const auto& [pc, entry] : by_pc_a) {
    cmp.total_usec_a += entry.first;
    auto it = by_pc_b.find(pc);
    if (it == by_pc_b.end()) {
      cmp.only_in_a.push_back(pc);
      continue;
    }
    TraceDelta delta;
    delta.pc = pc;
    delta.op = entry.second;
    delta.usec_a = entry.first;
    delta.usec_b = it->second.first;
    cmp.deltas.push_back(std::move(delta));
  }
  for (const auto& [pc, entry] : by_pc_b) {
    cmp.total_usec_b += entry.first;
    if (!by_pc_a.count(pc)) cmp.only_in_b.push_back(pc);
  }
  std::sort(cmp.deltas.begin(), cmp.deltas.end(),
            [](const TraceDelta& x, const TraceDelta& y) {
              int64_t dx = x.delta_usec() < 0 ? -x.delta_usec() : x.delta_usec();
              int64_t dy = y.delta_usec() < 0 ? -y.delta_usec() : y.delta_usec();
              if (dx != dy) return dx > dy;
              return x.pc < y.pc;
            });
  return cmp;
}

std::string TraceComparison::ToString(size_t top_n) const {
  std::string out = StrFormat(
      "total: %lldus -> %lldus (%+lldus)\n",
      static_cast<long long>(total_usec_a),
      static_cast<long long>(total_usec_b),
      static_cast<long long>(total_usec_b - total_usec_a));
  for (size_t i = 0; i < deltas.size() && i < top_n; ++i) {
    const TraceDelta& d = deltas[i];
    out += StrFormat("  pc=%-4d %-24s %8lldus -> %8lldus (%+lldus)\n", d.pc,
                     d.op.c_str(), static_cast<long long>(d.usec_a),
                     static_cast<long long>(d.usec_b),
                     static_cast<long long>(d.delta_usec()));
  }
  if (!only_in_a.empty()) {
    out += StrFormat("  %zu instruction(s) only in trace A\n", only_in_a.size());
  }
  if (!only_in_b.empty()) {
    out += StrFormat("  %zu instruction(s) only in trace B\n", only_in_b.size());
  }
  return out;
}

double EstimateProgress(const std::vector<TraceEvent>& events,
                        size_t plan_size) {
  if (plan_size == 0) return 0.0;
  std::set<int> done_pcs;
  for (const TraceEvent& e : events) {
    if (e.state == EventState::kDone) done_pcs.insert(e.pc);
  }
  double fraction =
      static_cast<double>(done_pcs.size()) / static_cast<double>(plan_size);
  return fraction > 1.0 ? 1.0 : fraction;
}

}  // namespace stetho::scope
