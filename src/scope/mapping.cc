#include "scope/mapping.h"

#include "common/string_util.h"

namespace stetho::scope {

Result<int> PcForNode(std::string_view node_id) {
  if (node_id.size() < 2 || node_id[0] != 'n') {
    return Status::ParseError("node id is not of the form n<pc>: " +
                              std::string(node_id));
  }
  STETHO_ASSIGN_OR_RETURN(int64_t pc, ParseInt64(node_id.substr(1)));
  if (pc < 0) return Status::ParseError("negative pc in node id");
  return static_cast<int>(pc);
}

}  // namespace stetho::scope
