#ifndef STETHO_SCOPE_TEXTUAL_H_
#define STETHO_SCOPE_TEXTUAL_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "net/datagram.h"
#include "net/pipe_health.h"
#include "profiler/filter.h"
#include "profiler/sink.h"

namespace stetho::scope {

/// Configuration of the textual Stethoscope.
struct TextualOptions {
  /// Trace file path; received events are appended here ("" = memory only).
  std::string trace_path;
  /// Client-side filter applied to incoming events (paper §3.2: "Its filter
  /// options allow for selective tracing of execution states on each of the
  /// connected servers").
  profiler::EventFilter filter;
  /// Capacity of the in-memory sampling buffer (paper §4.2: "its content is
  /// sampled in a buffer").
  size_t buffer_capacity = 8192;
  /// Receive poll timeout.
  int poll_ms = 20;
  /// After a blocking receive, up to this many additional queued datagrams
  /// are drained (zero timeout) and processed as one batch — one sink lock
  /// acquisition per batch instead of per event.
  int max_batch = 256;
  /// Receiver time source for the stream-health latency/staleness estimates
  /// (nullptr = steady clock). Only read while obs::Active() — the
  /// loss/reorder/duplicate accounting itself never reads a clock.
  Clock* clock = nullptr;
  /// Stream-health accountant tuning (one accountant per connected server).
  net::StreamHealth::Options health;
};

/// The textual Stethoscope (paper §3.2): connects to one or more MonetDB
/// servers over UDP, receives their execution-trace streams, demultiplexes
/// dot-file content from trace events (paper §4.2 framing), redirects trace
/// lines to a trace file, and keeps a sampled ring buffer for run-time
/// analysis.
///
/// One listener thread per connected server; Stop() joins them all.
class TextualStethoscope {
 public:
  explicit TextualStethoscope(TextualOptions options);
  ~TextualStethoscope();

  TextualStethoscope(const TextualStethoscope&) = delete;
  TextualStethoscope& operator=(const TextualStethoscope&) = delete;

  /// Connects a named server stream and starts its listener thread.
  Status AddServer(const std::string& name,
                   std::unique_ptr<net::DatagramReceiver> receiver);

  /// Stops all listener threads (idempotent).
  void Stop();

  /// Registers a callback fired for every accepted trace event
  /// (server name, event). Must be thread-safe.
  void SetEventCallback(
      std::function<void(const std::string&, const profiler::TraceEvent&)> cb);

  /// --- received state ---

  /// Snapshot of the sampling buffer (oldest first).
  std::vector<profiler::TraceEvent> BufferSnapshot() const;

  /// Dot file content received for a query (paper: "It filters the dot file
  /// content, generates a new dot file"). Queries are keyed
  /// "server/query-name" because multiple servers may reuse names like
  /// "s0". NotFound until %DOT-END arrived.
  Result<std::string> DotFor(const std::string& query) const;

  /// Keys ("server/query") of queries whose dot file is complete.
  std::vector<std::string> CompletedDots() const;

  /// Keys of queries whose %EOF marker arrived.
  std::vector<std::string> FinishedQueries() const;
  bool QueryFinished(const std::string& query) const;

  int64_t events_received() const { return received_.load(); }
  int64_t events_filtered() const { return filtered_.load(); }
  int64_t malformed_lines() const { return malformed_.load(); }

  /// Delivery health of one server's stream, accounted from the per-event
  /// global sequence numbers (pre-filter, so client-side filtering never
  /// reads as loss). Zero-valued summary for unknown servers.
  net::PipeHealthSummary HealthFor(const std::string& server) const;
  /// All streams combined (counts summed; offset/latency from the worst
  /// stream; sequence span unset — spans are per-stream quantities).
  net::PipeHealthSummary Health() const;
  /// Feeds stetho_pipe_staleness_usec with the current age of the rendered
  /// picture on every stream. Call once per analysis/render round; no-op
  /// unless obs::Active().
  void ObserveStaleness();

  /// Flushes the trace file (if any).
  Status Flush();

 private:
  void ListenLoop(std::string server, net::DatagramReceiver* receiver,
                  net::StreamHealth* health);
  /// Processes a batch of received lines in order: trace-event runs are
  /// parsed outside any lock and pushed through the sinks batch-wise;
  /// each contiguous run of framing lines takes one mu_ acquisition.
  void HandleBatch(const std::string& server,
                   const std::vector<std::string>& lines,
                   net::StreamHealth* health);
  /// Applies one framing (control) line; caller holds mu_.
  void HandleControlLocked(const std::string& server, const std::string& line);

  TextualOptions options_;
  std::shared_ptr<profiler::RingBufferSink> buffer_;
  std::unique_ptr<profiler::FileSink> trace_file_;

  std::atomic<bool> running_{true};
  std::atomic<int64_t> received_{0};
  std::atomic<int64_t> filtered_{0};
  std::atomic<int64_t> malformed_{0};

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<net::DatagramReceiver>> receivers_;
  std::vector<std::thread> threads_;
  /// Per-server stream-health accountants; entries are created in
  /// AddServer and never removed, and StreamHealth is internally
  /// synchronized, so listener threads use the raw pointer lock-free.
  std::map<std::string, std::unique_ptr<net::StreamHealth>> health_;
  std::map<std::string, std::string> dot_partial_;   // query -> accumulating
  std::map<std::string, std::string> dot_complete_;  // query -> full dot
  std::vector<std::string> finished_;
  std::function<void(const std::string&, const profiler::TraceEvent&)> callback_;
};

}  // namespace stetho::scope

#endif  // STETHO_SCOPE_TEXTUAL_H_
