#include "scope/online.h"

#include <map>
#include <mutex>
#include <thread>

#include "common/string_util.h"
#include "dot/parser.h"
#include "net/channel.h"
#include "scope/mapping.h"

namespace stetho::scope {

using profiler::TraceEvent;

Result<OnlineReport> OnlineMonitor::MonitorQuery(const std::string& sql) {
  OnlineReport report;
  Clock* clock =
      options_.clock != nullptr ? options_.clock : SteadyClock::Default();

  // Wire the server's profiler stream into a textual Stethoscope. The demo
  // runs single-process, so an in-process channel stands in for the UDP
  // loopback pair (the UDP path is exercised separately; both implement
  // DatagramSender/Receiver).
  auto [sender, receiver] = net::Channel::CreatePair();
  TextualOptions topt;
  topt.trace_path = options_.trace_path;
  topt.filter = options_.filter;
  topt.buffer_capacity = options_.buffer_capacity;
  // Incremental §4.2.1 analysis: the listener feeds every accepted event
  // into the tracker as it arrives, so each analysis round applies only the
  // newly settled verdicts instead of re-deriving the full set from a
  // buffer rescan. Declared before `textual` so the callback's referents
  // outlive the listener threads its destructor joins on error paths.
  std::mutex tracker_mu;
  PairSequenceTracker tracker;

  TextualStethoscope textual(topt);
  textual.SetEventCallback(
      [&](const std::string& /*server*/, const TraceEvent& event) {
        std::lock_guard<std::mutex> lock(tracker_mu);
        tracker.Observe(event);
      });

  STETHO_RETURN_IF_ERROR(textual.AddServer("server0", std::move(receiver)));
  server_->AttachStream(std::shared_ptr<net::DatagramSender>(std::move(sender)));

  // Launch the query in its own thread (paper §4.2: "The query whose
  // execution plan needs to be analyzed is launched next in a separate
  // thread").
  Status query_status;
  server::QueryOutcome outcome;
  std::atomic<bool> query_done{false};
  std::thread query_thread([&] {
    auto r = server_->ExecuteSql(sql);
    if (r.ok()) {
      outcome = std::move(r).value();
    } else {
      query_status = r.status();
    }
    query_done.store(true, std::memory_order_release);
  });

  // The dot file is a prerequisite for graph-structure generation; the
  // server pushes it over the stream before execution begins.
  std::string query_name;
  std::string dot_text;
  const int64_t deadline = clock->NowMicros() + options_.dot_timeout_us;
  while (true) {
    auto dots = textual.CompletedDots();
    if (!dots.empty()) {
      query_name = dots.back();
      auto dot = textual.DotFor(query_name);
      if (dot.ok()) {
        dot_text = std::move(dot).value();
        break;
      }
    }
    // A failed compilation never emits a dot file — surface the error
    // instead of waiting out the deadline. A *successful* query may finish
    // before the listener thread has drained the channel, so only a
    // processed %EOF with no completed dot proves the server never sent
    // one (delivery is ordered: dot, trace events, EOF). The dot check
    // must come *after* the %EOF check: the listener may process both
    // between our reads, and re-reading the dots second means an observed
    // EOF with no dot cannot be a stale view.
    if (query_done.load(std::memory_order_acquire)) {
      if (!query_status.ok()) {
        query_thread.join();
        server_->DetachStreams();
        return query_status;
      }
      if (!textual.FinishedQueries().empty() &&
          textual.CompletedDots().empty()) {
        query_thread.join();
        server_->DetachStreams();
        return Status::Internal("query finished without emitting a dot file");
      }
    }
    if (clock->NowMicros() > deadline) {
      query_thread.join();
      server_->DetachStreams();
      if (!query_status.ok()) return query_status;
      return Status::Internal("no dot file received from the server stream");
    }
    clock->SleepMicros(1000);
  }

  STETHO_ASSIGN_OR_RETURN(dot::Graph graph, dot::ParseDot(dot_text));
  report.dot = dot_text;
  report.graph_nodes = graph.num_nodes();

  ReplayOptions scene_options;
  scene_options.clock = options_.clock;
  scene_options.render_interval_us = options_.render_interval_us;
  scene_options.viewport_width = options_.viewport_width;
  scene_options.viewport_height = options_.viewport_height;
  STETHO_ASSIGN_OR_RETURN(
      scene_, OfflineReplayer::Create(graph, {}, scene_options));

  // Monitoring loop: sample the buffer, run the §4.2.1 pair-sequence
  // algorithm, and push color changes through the render-paced EDT.
  std::map<int, viz::Color> applied;
  auto analyze_once = [&] {
    std::vector<TraceEvent> buffer = textual.BufferSnapshot();
    report.progress_series.push_back(
        EstimateProgress(buffer, report.graph_nodes));
    std::vector<ColorDecision> decisions;
    {
      std::lock_guard<std::mutex> lock(tracker_mu);
      decisions = tracker.TakeNew();
    }
    for (const ColorDecision& d : decisions) {
      auto it = applied.find(d.pc);
      if (it != applied.end() && it->second == d.color) continue;
      applied[d.pc] = d.color;
      int glyph = scene_->space()->ShapeFor(NodeForPc(d.pc));
      if (glyph < 0) continue;
      viz::Color color = d.color;
      viz::VirtualSpace* space = scene_->space();
      scene_->dispatcher()->PostRender([space, glyph, color] {
        (void)space->MutateGlyph(glyph,
                                 [&](viz::Glyph* g) { g->fill = color; });
      });
      ++report.color_updates;
    }
    ++report.analysis_rounds;
  };

  while (!textual.QueryFinished(query_name)) {
    analyze_once();
    clock->SleepMicros(options_.analysis_period_us);
  }
  query_thread.join();
  analyze_once();  // final sweep over the complete buffer
  scene_->dispatcher()->Drain();
  server_->DetachStreams();
  textual.Stop();
  STETHO_RETURN_IF_ERROR(textual.Flush());

  if (!query_status.ok()) return query_status;

  report.outcome = std::move(outcome);
  report.events = textual.BufferSnapshot();
  report.events_received = textual.events_received();
  report.events_filtered = textual.events_filtered();
  report.utilization = AnalyzeThreadUtilization(report.events);
  // The *expected* degree of parallelism is what the analyst configured —
  // if the server silently ran sequentially (the demo's anomaly), the
  // diagnosis below is exactly what flags it.
  report.parallelism = DiagnoseParallelism(
      report.events,
      server_->options().dop > 0
          ? server_->options().dop
          : static_cast<int>(std::thread::hardware_concurrency()));
  report.operators = AnalyzeOperators(report.events);
  report.final_progress =
      EstimateProgress(report.events, report.outcome.plan.size());
  return report;
}

}  // namespace stetho::scope
