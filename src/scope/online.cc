#include "scope/online.h"

#include <algorithm>
#include <map>
#include <mutex>
#include <set>
#include <thread>

#include "analysis/perfdiff.h"
#include "common/string_util.h"
#include "dot/parser.h"
#include "net/channel.h"
#include "scope/mapping.h"

namespace stetho::scope {

using profiler::TraceEvent;

Result<OnlineReport> OnlineMonitor::MonitorQuery(const std::string& sql) {
  OnlineReport report;
  Clock* clock =
      options_.clock != nullptr ? options_.clock : SteadyClock::Default();

  // Wire the server's profiler stream into a textual Stethoscope. The demo
  // runs single-process, so an in-process channel stands in for the UDP
  // loopback pair (the UDP path is exercised separately; both implement
  // DatagramSender/Receiver).
  auto [sender, receiver] = net::Channel::CreatePair();
  TextualOptions topt;
  topt.trace_path = options_.trace_path;
  topt.filter = options_.filter;
  topt.buffer_capacity = options_.buffer_capacity;
  topt.clock = options_.clock;
  // Incremental §4.2.1 analysis: the listener feeds every accepted event
  // into the tracker as it arrives, so each analysis round applies only the
  // newly settled verdicts instead of re-deriving the full set from a
  // buffer rescan. Declared before `textual` so the callback's referents
  // outlive the listener threads its destructor joins on error paths.
  std::mutex tracker_mu;
  PairSequenceTracker tracker;

  // Live progress/ETA: the plan's work model comes from EXPLAIN (the
  // pipeline is deterministic, so the shape matches what ExecuteSql will
  // run) and the received done-events fill it in. A failed compile is
  // surfaced by the query thread below; the monitor then just has no
  // estimator to feed.
  std::shared_ptr<analysis::ProgressEstimator> estimator;
  // Straggler comparator: the stored cross-run baseline for this plan's
  // shape, if the profile store has one. Start times feed the running-
  // duration check (an instruction can be flagged before it completes).
  std::shared_ptr<const obs::PlanProfile> baseline;
  std::mutex straggler_mu;
  std::map<int, int64_t> start_us;
  int64_t newest_event_us = 0;
  if (auto plan = server_->Explain(sql); plan.ok()) {
    estimator = std::make_shared<analysis::ProgressEstimator>(
        analysis::ProgressModelCache::Default()->GetOrBuild(plan.value()));
    obs::ProfileStore* store = options_.profile != nullptr
                                   ? options_.profile
                                   : obs::ProfileStore::Default();
    baseline = store->Lookup(analysis::PlanShapeHash(plan.value()));
  }

  TextualStethoscope textual(topt);
  textual.SetEventCallback(
      [&](const std::string& /*server*/, const TraceEvent& event) {
        if (estimator != nullptr) estimator->ObserveEvent(event);
        if (baseline != nullptr) {
          std::lock_guard<std::mutex> lock(straggler_mu);
          newest_event_us = std::max(newest_event_us, event.time_us);
          if (event.state == profiler::EventState::kStart) {
            start_us.emplace(event.pc, event.time_us);
          }
        }
        std::lock_guard<std::mutex> lock(tracker_mu);
        tracker.Observe(event);
      });

  STETHO_RETURN_IF_ERROR(textual.AddServer("server0", std::move(receiver)));
  std::shared_ptr<net::DatagramSender> wire(std::move(sender));
  std::shared_ptr<net::FaultInjectingSender> injector;
  if (options_.fault.drop_p > 0 || options_.fault.dup_p > 0 ||
      options_.fault.reorder_p > 0) {
    injector =
        std::make_shared<net::FaultInjectingSender>(wire, options_.fault);
    wire = injector;
  }
  server_->AttachStream(wire);

  // Launch the query in its own thread (paper §4.2: "The query whose
  // execution plan needs to be analyzed is launched next in a separate
  // thread").
  Status query_status;
  server::QueryOutcome outcome;
  std::atomic<bool> query_done{false};
  std::thread query_thread([&] {
    auto r = server_->ExecuteSql(sql);
    if (r.ok()) {
      outcome = std::move(r).value();
    } else {
      query_status = r.status();
    }
    query_done.store(true, std::memory_order_release);
  });

  // The dot file is a prerequisite for graph-structure generation; the
  // server pushes it over the stream before execution begins.
  std::string query_name;
  std::string dot_text;
  const int64_t deadline = clock->NowMicros() + options_.dot_timeout_us;
  while (true) {
    auto dots = textual.CompletedDots();
    if (!dots.empty()) {
      query_name = dots.back();
      auto dot = textual.DotFor(query_name);
      if (dot.ok()) {
        dot_text = std::move(dot).value();
        break;
      }
    }
    // A failed compilation never emits a dot file — surface the error
    // instead of waiting out the deadline. A *successful* query may finish
    // before the listener thread has drained the channel, so only a
    // processed %EOF with no completed dot proves the server never sent
    // one (delivery is ordered: dot, trace events, EOF). The dot check
    // must come *after* the %EOF check: the listener may process both
    // between our reads, and re-reading the dots second means an observed
    // EOF with no dot cannot be a stale view.
    if (query_done.load(std::memory_order_acquire)) {
      if (!query_status.ok()) {
        query_thread.join();
        server_->DetachStreams();
        return query_status;
      }
      if (!textual.FinishedQueries().empty() &&
          textual.CompletedDots().empty()) {
        query_thread.join();
        server_->DetachStreams();
        return Status::Internal("query finished without emitting a dot file");
      }
    }
    if (clock->NowMicros() > deadline) {
      query_thread.join();
      server_->DetachStreams();
      if (!query_status.ok()) return query_status;
      return Status::Internal("no dot file received from the server stream");
    }
    clock->SleepMicros(1000);
  }

  STETHO_ASSIGN_OR_RETURN(dot::Graph graph, dot::ParseDot(dot_text));
  report.dot = dot_text;
  report.graph_nodes = graph.num_nodes();

  ReplayOptions scene_options;
  scene_options.clock = options_.clock;
  scene_options.render_interval_us = options_.render_interval_us;
  scene_options.viewport_width = options_.viewport_width;
  scene_options.viewport_height = options_.viewport_height;
  STETHO_ASSIGN_OR_RETURN(
      scene_, OfflineReplayer::Create(graph, {}, scene_options));

  // Monitoring loop: sample the buffer, run the §4.2.1 pair-sequence
  // algorithm, and push color changes through the render-paced EDT.
  std::map<int, viz::Color> applied;
  std::set<int> straggler_flagged;
  // Both straggler gates (ratio x absolute delta), mirroring the
  // trace-perf-regression lint check so live and offline agree.
  auto is_straggler = [this](int64_t usec, const obs::RobustStat& stat) {
    if (stat.count() == 0) return false;
    const double median = stat.Median();
    const double floor =
        std::max(options_.straggler_mad_k * stat.Mad(),
                 static_cast<double>(options_.straggler_min_usec));
    if (static_cast<double>(usec) - median < floor) return false;
    return static_cast<double>(usec) >=
           options_.straggler_ratio * std::max(1.0, median);
  };
  auto sweep_stragglers = [&] {
    if (baseline == nullptr || estimator == nullptr) return;
    std::map<int, int64_t> starts;
    int64_t now_us;
    {
      std::lock_guard<std::mutex> lock(straggler_mu);
      starts = start_us;
      now_us = newest_event_us;
    }
    for (size_t pc = 0; pc < baseline->pcs.size(); ++pc) {
      const int ipc = static_cast<int>(pc);
      if (straggler_flagged.count(ipc) > 0) continue;
      const obs::RobustStat& stat = baseline->pcs[pc].usec;
      const int64_t done_usec = estimator->PcUsec(ipc);
      const bool completed = done_usec >= 0;
      int64_t usec = done_usec;
      if (!completed) {
        auto it = starts.find(ipc);
        if (it == starts.end()) continue;  // not started (or start lost)
        usec = now_us - it->second;
      }
      if (!is_straggler(usec, stat)) continue;
      straggler_flagged.insert(ipc);
      report.stragglers.push_back({ipc, usec, stat.Median(), completed});
      // Deviation overlay: the fill stays with the pair-sequence state
      // machine; the stroke says "slow against history".
      int glyph = scene_->space()->ShapeFor(NodeForPc(ipc));
      if (glyph >= 0) {
        viz::VirtualSpace* space = scene_->space();
        scene_->dispatcher()->PostRender([space, glyph] {
          (void)space->MutateGlyph(glyph, [](viz::Glyph* g) {
            g->stroke = viz::Color::Magenta();
          });
        });
        ++report.straggler_updates;
      }
    }
  };
  auto analyze_once = [&] {
    std::vector<TraceEvent> buffer = textual.BufferSnapshot();
    if (estimator != nullptr) {
      report.progress_series.push_back(estimator->ratio());
      report.eta_series_usec.push_back(estimator->EtaUsec());
    } else {
      report.progress_series.push_back(
          EstimateProgress(buffer, report.graph_nodes));
      report.eta_series_usec.push_back(-1);
    }
    textual.ObserveStaleness();
    sweep_stragglers();
    if (options_.status_line) {
      std::string line =
          estimator != nullptr
              ? estimator->ScoreboardLine(query_name)
              : StrFormat("%s  %5.1f%%", query_name.c_str(),
                          100.0 * report.progress_series.back());
      if (baseline != nullptr) {
        line += StrFormat("  stragglers:%zu", report.stragglers.size());
      }
      options_.status_line(line + "  | " +
                           textual.HealthFor("server0").ToString());
    }
    std::vector<ColorDecision> decisions;
    {
      std::lock_guard<std::mutex> lock(tracker_mu);
      decisions = tracker.TakeNew();
    }
    for (const ColorDecision& d : decisions) {
      auto it = applied.find(d.pc);
      if (it != applied.end() && it->second == d.color) continue;
      applied[d.pc] = d.color;
      int glyph = scene_->space()->ShapeFor(NodeForPc(d.pc));
      if (glyph < 0) continue;
      viz::Color color = d.color;
      viz::VirtualSpace* space = scene_->space();
      scene_->dispatcher()->PostRender([space, glyph, color] {
        (void)space->MutateGlyph(glyph,
                                 [&](viz::Glyph* g) { g->fill = color; });
      });
      ++report.color_updates;
    }
    ++report.analysis_rounds;
  };

  // The %EOF marker normally ends the loop; on a faulty wire it may never
  // arrive, so once the query thread has returned and the receive side has
  // drained (no new events across a few rounds), the monitor concludes on
  // what it has instead of hanging — degraded, not stuck.
  int64_t last_received = -1;
  int stable_rounds = 0;
  while (!textual.QueryFinished(query_name)) {
    analyze_once();
    if (query_done.load(std::memory_order_acquire)) {
      const int64_t rec = textual.events_received();
      stable_rounds = rec == last_received ? stable_rounds + 1 : 0;
      last_received = rec;
      if (stable_rounds >= 3) break;
    }
    clock->SleepMicros(options_.analysis_period_us);
  }
  query_thread.join();
  // The query is complete: pin progress at 1.0 whatever the wire delivered.
  if (estimator != nullptr && query_status.ok()) estimator->MarkFinished();
  analyze_once();  // final sweep over the complete buffer
  scene_->dispatcher()->Drain();
  server_->DetachStreams();
  textual.Stop();  // joins listeners and finalizes the health accounting
  STETHO_RETURN_IF_ERROR(textual.Flush());
  report.pipe_health = textual.HealthFor("server0");
  if (injector != nullptr) {
    report.injected_dropped = injector->injected_dropped();
    report.injected_duplicated = injector->injected_duplicated();
    report.injected_reordered = injector->injected_reordered();
  }

  if (!query_status.ok()) return query_status;

  report.outcome = std::move(outcome);
  report.events = textual.BufferSnapshot();
  report.events_received = textual.events_received();
  report.events_filtered = textual.events_filtered();
  report.utilization = AnalyzeThreadUtilization(report.events);
  // The *expected* degree of parallelism is what the analyst configured —
  // if the server silently ran sequentially (the demo's anomaly), the
  // diagnosis below is exactly what flags it.
  report.parallelism = DiagnoseParallelism(
      report.events,
      server_->options().dop > 0
          ? server_->options().dop
          : static_cast<int>(std::thread::hardware_concurrency()));
  report.operators = AnalyzeOperators(report.events);
  report.final_progress =
      estimator != nullptr
          ? estimator->ratio()
          : EstimateProgress(report.events, report.outcome.plan.size());
  return report;
}

}  // namespace stetho::scope
