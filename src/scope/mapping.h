#ifndef STETHO_SCOPE_MAPPING_H_
#define STETHO_SCOPE_MAPPING_H_

#include <string>
#include <string_view>

#include "common/status.h"

namespace stetho::scope {

/// Trace ↔ dot-file mapping (paper §3.3): the program counter of a trace
/// event maps to node "n<pc>" in the dot file, and the event's "stmt" field
/// maps to the node's "label" attribute.
inline std::string NodeForPc(int pc) { return "n" + std::to_string(pc); }

/// Inverse mapping; ParseError for ids not of the form n<digits>.
Result<int> PcForNode(std::string_view node_id);

}  // namespace stetho::scope

#endif  // STETHO_SCOPE_MAPPING_H_
