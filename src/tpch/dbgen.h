#ifndef STETHO_TPCH_DBGEN_H_
#define STETHO_TPCH_DBGEN_H_

#include <cstdint>

#include "common/status.h"
#include "storage/table.h"

namespace stetho::tpch {

/// Configuration for the deterministic TPC-H-style data generator. The
/// paper demos Stethoscope on long-running TPC-H queries; this generator
/// produces the same table shapes at laptop scale. Dates are stored as
/// yyyymmdd integers (e.g. 19940101) so range predicates stay readable.
struct TpchConfig {
  /// Fraction of the official SF1 row counts (lineitem ≈ 6M * sf).
  double scale_factor = 0.001;
  uint64_t seed = 19920712;
};

/// Number of rows each table receives at the configured scale.
struct TpchRowCounts {
  size_t region;
  size_t nation;
  size_t supplier;
  size_t part;
  size_t customer;
  size_t orders;
  /// lineitem is 1..7 lines per order; this is the expected mean (4 / order).
};

TpchRowCounts RowCountsFor(const TpchConfig& config);

/// Generates the eight-table catalog: region, nation, supplier, part,
/// customer, orders, lineitem. Fully deterministic for a given config.
Result<storage::Catalog> GenerateTpch(const TpchConfig& config);

/// --- date helpers (yyyymmdd integer encoding) ---
/// Converts yyyymmdd to days since 1970-01-01.
int64_t DateToDays(int64_t yyyymmdd);
/// Converts days since 1970-01-01 back to yyyymmdd.
int64_t DaysToDate(int64_t days);
/// Adds `delta` days to a yyyymmdd date.
int64_t AddDays(int64_t yyyymmdd, int64_t delta);

}  // namespace stetho::tpch

#endif  // STETHO_TPCH_DBGEN_H_
