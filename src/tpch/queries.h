#ifndef STETHO_TPCH_QUERIES_H_
#define STETHO_TPCH_QUERIES_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace stetho::tpch {

/// One benchmark query in the supported SQL dialect.
struct TpchQuery {
  std::string id;     ///< short handle, e.g. "q1", "paper"
  std::string title;  ///< human description
  std::string sql;
};

/// The query suite used across examples, tests and benches. Contains the
/// paper's Fig. 1 query plus TPC-H-derived queries adapted to this dialect
/// (dates as yyyymmdd integers, explicit JOIN ... ON syntax).
const std::vector<TpchQuery>& TpchQueries();

/// Lookup by id; NotFound on miss.
Result<TpchQuery> GetQuery(const std::string& id);

}  // namespace stetho::tpch

#endif  // STETHO_TPCH_QUERIES_H_
