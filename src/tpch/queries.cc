#include "tpch/queries.h"

namespace stetho::tpch {

const std::vector<TpchQuery>& TpchQueries() {
  static const std::vector<TpchQuery>* queries = new std::vector<TpchQuery>{
      {"paper",
       "The paper's Fig. 1 query",
       "select l_tax from lineitem where l_partkey = 1"},

      {"q1",
       "TPC-H Q1: pricing summary report",
       "select l_returnflag, l_linestatus, "
       "sum(l_quantity) as sum_qty, "
       "sum(l_extendedprice) as sum_base_price, "
       "sum(l_extendedprice * (1 - l_discount)) as sum_disc_price, "
       "sum(l_extendedprice * (1 - l_discount) * (1 + l_tax)) as sum_charge, "
       "avg(l_quantity) as avg_qty, "
       "avg(l_extendedprice) as avg_price, "
       "avg(l_discount) as avg_disc, "
       "count(*) as count_order "
       "from lineitem "
       "where l_shipdate <= 19980902 "
       "group by l_returnflag, l_linestatus "
       "order by l_returnflag, l_linestatus"},

      {"q3",
       "TPC-H Q3: shipping priority",
       "select l_orderkey, "
       "sum(l_extendedprice * (1 - l_discount)) as revenue, "
       "o_orderdate, o_shippriority "
       "from customer "
       "join orders on c_custkey = o_custkey "
       "join lineitem on o_orderkey = l_orderkey "
       "where c_mktsegment = 'BUILDING' "
       "and o_orderdate < 19950315 and l_shipdate > 19950315 "
       "group by l_orderkey, o_orderdate, o_shippriority "
       "order by revenue desc, o_orderdate "
       "limit 10"},

      {"q5",
       "TPC-H Q5 (adapted): local supplier volume",
       "select n_name, "
       "sum(l_extendedprice * (1 - l_discount)) as revenue "
       "from customer "
       "join orders on c_custkey = o_custkey "
       "join lineitem on o_orderkey = l_orderkey "
       "join supplier on l_suppkey = s_suppkey "
       "join nation on s_nationkey = n_nationkey "
       "join region on n_regionkey = r_regionkey "
       "where r_name = 'ASIA' "
       "and o_orderdate >= 19940101 and o_orderdate < 19950101 "
       "and c_nationkey = s_nationkey "
       "group by n_name "
       "order by revenue desc"},

      {"q6",
       "TPC-H Q6: forecasting revenue change",
       "select sum(l_extendedprice * l_discount) as revenue "
       "from lineitem "
       "where l_shipdate >= 19940101 and l_shipdate < 19950101 "
       "and l_discount between 0.05 and 0.07 "
       "and l_quantity < 24"},

      {"q12",
       "TPC-H Q12 (adapted): shipping modes and order priority",
       "select l_shipmode, "
       "sum(case when o_orderpriority = '1-URGENT' or o_orderpriority = "
       "'2-HIGH' then 1 else 0 end) as high_line_count, "
       "sum(case when o_orderpriority <> '1-URGENT' and o_orderpriority <> "
       "'2-HIGH' then 1 else 0 end) as low_line_count "
       "from orders "
       "join lineitem on o_orderkey = l_orderkey "
       "where (l_shipmode = 'MAIL' or l_shipmode = 'SHIP') "
       "and l_receiptdate >= 19940101 and l_receiptdate < 19950101 "
       "and l_commitdate < l_receiptdate and l_shipdate < l_commitdate "
       "group by l_shipmode "
       "order by l_shipmode"},

      {"q14",
       "TPC-H Q14: promotion effect",
       "select 100.0 * sum(case when p_type like 'PROMO%' then "
       "l_extendedprice * (1 - l_discount) else 0.0 end) / "
       "sum(l_extendedprice * (1 - l_discount)) as promo_revenue "
       "from lineitem "
       "join part on l_partkey = p_partkey "
       "where l_shipdate >= 19950901 and l_shipdate < 19951001"},

      {"q11",
       "TPC-H Q11 (adapted): important stock identification",
       "select ps_partkey, "
       "sum(ps_supplycost * ps_availqty) as value "
       "from partsupp "
       "join supplier on ps_suppkey = s_suppkey "
       "join nation on s_nationkey = n_nationkey "
       "where n_name = 'GERMANY' "
       "group by ps_partkey "
       "order by value desc, ps_partkey "
       "limit 10"},

      {"q16",
       "TPC-H Q16 (adapted): parts/supplier relationship",
       "select p_type, count(distinct ps_suppkey) as supplier_cnt "
       "from partsupp "
       "join part on ps_partkey = p_partkey "
       "where p_size >= 10 and not p_type like 'PROMO%' "
       "group by p_type "
       "order by supplier_cnt desc, p_type "
       "limit 10"},

      {"q18",
       "TPC-H Q18 (adapted): large volume customer orders",
       "select l_orderkey, sum(l_quantity) as total_qty "
       "from lineitem "
       "group by l_orderkey "
       "having sum(l_quantity) > 150 "
       "order by total_qty desc, l_orderkey "
       "limit 20"},

      {"distinct_flags",
       "DISTINCT over low-cardinality flag columns",
       "select distinct l_returnflag, l_linestatus from lineitem "
       "order by l_returnflag, l_linestatus"},

      {"big_group",
       "Wide aggregation stressing group/aggr operators",
       "select l_partkey, count(*) as cnt, sum(l_quantity) as qty, "
       "min(l_extendedprice) as min_price, max(l_extendedprice) as max_price, "
       "avg(l_discount) as avg_disc "
       "from lineitem group by l_partkey order by cnt desc limit 20"},

      {"scan_heavy",
       "Selection ladder over lineitem (many candidate-list selects)",
       "select l_orderkey, l_extendedprice from lineitem "
       "where l_quantity between 10 and 40 and l_discount between 0.02 and "
       "0.08 and l_tax between 0.01 and 0.07 and l_shipdate >= 19930101 and "
       "l_shipdate < 19980101 and l_returnflag = 'N'"},
  };
  return *queries;
}

Result<TpchQuery> GetQuery(const std::string& id) {
  for (const TpchQuery& q : TpchQueries()) {
    if (q.id == id) return q;
  }
  return Status::NotFound("no TPC-H query with id '" + id + "'");
}

}  // namespace stetho::tpch
