#include "tpch/dbgen.h"

#include <algorithm>

#include "common/rng.h"
#include "common/string_util.h"

namespace stetho::tpch {
namespace {

using storage::Catalog;
using storage::DataType;
using storage::Schema;
using storage::Table;
using storage::TablePtr;
using storage::Value;

const char* kRegions[] = {"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"};

const char* kNations[] = {
    "ALGERIA", "ARGENTINA", "BRAZIL",  "CANADA",         "EGYPT",
    "ETHIOPIA", "FRANCE",   "GERMANY", "INDIA",          "INDONESIA",
    "IRAN",     "IRAQ",     "JAPAN",   "JORDAN",         "KENYA",
    "MOROCCO",  "MOZAMBIQUE", "PERU",  "CHINA",          "ROMANIA",
    "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES"};
// Region of each nation (official TPC-H mapping).
const int kNationRegion[] = {0, 1, 1, 1, 4, 0, 3, 3, 2, 2, 4, 4, 2,
                             4, 0, 0, 0, 1, 2, 3, 4, 2, 3, 3, 1};

const char* kSegments[] = {"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY",
                           "HOUSEHOLD"};
const char* kPriorities[] = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                             "4-NOT SPECIFIED", "5-LOW"};
const char* kShipModes[] = {"REG AIR", "AIR", "RAIL", "SHIP",
                            "TRUCK",   "MAIL", "FOB"};
const char* kShipInstruct[] = {"DELIVER IN PERSON", "COLLECT COD", "NONE",
                               "TAKE BACK RETURN"};
const char* kTypePrefix[] = {"STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY",
                             "PROMO"};
const char* kTypeMid[] = {"ANODIZED", "BURNISHED", "PLATED", "POLISHED",
                          "BRUSHED"};
const char* kTypeSuffix[] = {"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"};
const char* kPartAdjectives[] = {"almond", "antique", "aquamarine", "azure",
                                 "beige",  "bisque",  "black",      "blanched"};
const char* kPartNouns[] = {"linen", "pink", "powder", "puff",
                            "rose",  "sky",  "steel",  "tomato"};

template <typename T, size_t N>
const T& Pick(SplitMix64& rng, const T (&arr)[N]) {
  return arr[rng.NextBounded(N)];
}

}  // namespace

// Howard Hinnant's civil-date algorithms.
int64_t DateToDays(int64_t yyyymmdd) {
  int64_t y = yyyymmdd / 10000;
  int64_t m = (yyyymmdd / 100) % 100;
  int64_t d = yyyymmdd % 100;
  y -= m <= 2;
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const int64_t yoe = y - era * 400;
  const int64_t doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;
  const int64_t doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + doe - 719468;
}

int64_t DaysToDate(int64_t days) {
  int64_t z = days + 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const int64_t doe = z - era * 146097;
  const int64_t yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t y = yoe + era * 400;
  const int64_t doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const int64_t mp = (5 * doy + 2) / 153;
  const int64_t d = doy - (153 * mp + 2) / 5 + 1;
  const int64_t m = mp + (mp < 10 ? 3 : -9);
  return (y + (m <= 2 ? 1 : 0)) * 10000 + m * 100 + d;
}

int64_t AddDays(int64_t yyyymmdd, int64_t delta) {
  return DaysToDate(DateToDays(yyyymmdd) + delta);
}

TpchRowCounts RowCountsFor(const TpchConfig& config) {
  auto scaled = [&](double base) {
    double v = base * config.scale_factor;
    return static_cast<size_t>(std::max(1.0, v));
  };
  TpchRowCounts counts;
  counts.region = 5;
  counts.nation = 25;
  counts.supplier = scaled(10000);
  counts.part = scaled(200000);
  counts.customer = scaled(150000);
  counts.orders = scaled(1500000);
  return counts;
}

Result<Catalog> GenerateTpch(const TpchConfig& config) {
  if (config.scale_factor <= 0) {
    return Status::InvalidArgument("scale_factor must be positive");
  }
  SplitMix64 rng(config.seed);
  TpchRowCounts counts = RowCountsFor(config);
  Catalog catalog;

  // --- region ---
  TablePtr region = Table::Make(
      "region",
      Schema({{"r_regionkey", DataType::kInt64}, {"r_name", DataType::kString}}));
  region->Reserve(counts.region);
  for (size_t i = 0; i < counts.region; ++i) {
    STETHO_RETURN_IF_ERROR(region->AppendRow(
        {Value::Int(static_cast<int64_t>(i)), Value::String(kRegions[i])}));
  }
  STETHO_RETURN_IF_ERROR(catalog.AddTable(region));

  // --- nation ---
  TablePtr nation = Table::Make(
      "nation", Schema({{"n_nationkey", DataType::kInt64},
                        {"n_name", DataType::kString},
                        {"n_regionkey", DataType::kInt64}}));
  nation->Reserve(counts.nation);
  for (size_t i = 0; i < counts.nation; ++i) {
    STETHO_RETURN_IF_ERROR(nation->AppendRow(
        {Value::Int(static_cast<int64_t>(i)), Value::String(kNations[i]),
         Value::Int(kNationRegion[i])}));
  }
  STETHO_RETURN_IF_ERROR(catalog.AddTable(nation));

  // --- supplier ---
  TablePtr supplier = Table::Make(
      "supplier", Schema({{"s_suppkey", DataType::kInt64},
                          {"s_name", DataType::kString},
                          {"s_nationkey", DataType::kInt64},
                          {"s_acctbal", DataType::kDouble}}));
  supplier->Reserve(counts.supplier);
  for (size_t i = 1; i <= counts.supplier; ++i) {
    STETHO_RETURN_IF_ERROR(supplier->AppendRow(
        {Value::Int(static_cast<int64_t>(i)),
         Value::String(StrFormat("Supplier#%09zu", i)),
         Value::Int(static_cast<int64_t>(rng.NextBounded(25))),
         Value::Double(static_cast<double>(rng.NextRange(-99999, 999999)) / 100.0)}));
  }
  STETHO_RETURN_IF_ERROR(catalog.AddTable(supplier));

  // --- part ---
  TablePtr part = Table::Make(
      "part", Schema({{"p_partkey", DataType::kInt64},
                      {"p_name", DataType::kString},
                      {"p_type", DataType::kString},
                      {"p_size", DataType::kInt64},
                      {"p_retailprice", DataType::kDouble}}));
  part->Reserve(counts.part);
  for (size_t i = 1; i <= counts.part; ++i) {
    std::string type = std::string(Pick(rng, kTypePrefix)) + " " +
                       Pick(rng, kTypeMid) + " " + Pick(rng, kTypeSuffix);
    std::string name = std::string(Pick(rng, kPartAdjectives)) + " " +
                       Pick(rng, kPartNouns);
    double retail =
        (90000.0 + (static_cast<double>(i % 200001) / 10.0) + 100.0 * (i % 1000)) / 100.0;
    STETHO_RETURN_IF_ERROR(part->AppendRow(
        {Value::Int(static_cast<int64_t>(i)), Value::String(std::move(name)),
         Value::String(std::move(type)),
         Value::Int(static_cast<int64_t>(rng.NextRange(1, 50))),
         Value::Double(retail)}));
  }
  STETHO_RETURN_IF_ERROR(catalog.AddTable(part));

  // --- partsupp (4 suppliers per part, official shape) ---
  TablePtr partsupp = Table::Make(
      "partsupp", Schema({{"ps_partkey", DataType::kInt64},
                          {"ps_suppkey", DataType::kInt64},
                          {"ps_availqty", DataType::kInt64},
                          {"ps_supplycost", DataType::kDouble}}));
  partsupp->Reserve(counts.part * 4);
  for (size_t p = 1; p <= counts.part; ++p) {
    for (int i = 0; i < 4; ++i) {
      // Spread the 4 suppliers across the supplier table (the official
      // generator's modular stride), keeping keys in range.
      int64_t supp =
          1 + static_cast<int64_t>((p + static_cast<size_t>(i) *
                                            (counts.supplier / 4 + 1)) %
                                   counts.supplier);
      STETHO_RETURN_IF_ERROR(partsupp->AppendRow(
          {Value::Int(static_cast<int64_t>(p)), Value::Int(supp),
           Value::Int(rng.NextRange(1, 9999)),
           Value::Double(static_cast<double>(rng.NextRange(100, 100000)) / 100.0)}));
    }
  }
  STETHO_RETURN_IF_ERROR(catalog.AddTable(partsupp));

  // --- customer ---
  TablePtr customer = Table::Make(
      "customer", Schema({{"c_custkey", DataType::kInt64},
                          {"c_name", DataType::kString},
                          {"c_nationkey", DataType::kInt64},
                          {"c_mktsegment", DataType::kString},
                          {"c_acctbal", DataType::kDouble}}));
  customer->Reserve(counts.customer);
  for (size_t i = 1; i <= counts.customer; ++i) {
    STETHO_RETURN_IF_ERROR(customer->AppendRow(
        {Value::Int(static_cast<int64_t>(i)),
         Value::String(StrFormat("Customer#%09zu", i)),
         Value::Int(static_cast<int64_t>(rng.NextBounded(25))),
         Value::String(Pick(rng, kSegments)),
         Value::Double(static_cast<double>(rng.NextRange(-99999, 999999)) / 100.0)}));
  }
  STETHO_RETURN_IF_ERROR(catalog.AddTable(customer));

  // --- orders + lineitem ---
  TablePtr orders = Table::Make(
      "orders", Schema({{"o_orderkey", DataType::kInt64},
                        {"o_custkey", DataType::kInt64},
                        {"o_orderdate", DataType::kInt64},
                        {"o_orderpriority", DataType::kString},
                        {"o_shippriority", DataType::kInt64},
                        {"o_totalprice", DataType::kDouble}}));
  TablePtr lineitem = Table::Make(
      "lineitem", Schema({{"l_orderkey", DataType::kInt64},
                          {"l_partkey", DataType::kInt64},
                          {"l_suppkey", DataType::kInt64},
                          {"l_linenumber", DataType::kInt64},
                          {"l_quantity", DataType::kInt64},
                          {"l_extendedprice", DataType::kDouble},
                          {"l_discount", DataType::kDouble},
                          {"l_tax", DataType::kDouble},
                          {"l_returnflag", DataType::kString},
                          {"l_linestatus", DataType::kString},
                          {"l_shipdate", DataType::kInt64},
                          {"l_commitdate", DataType::kInt64},
                          {"l_receiptdate", DataType::kInt64},
                          {"l_shipmode", DataType::kString},
                          {"l_shipinstruct", DataType::kString}}));

  const int64_t kStartDate = 19920101;
  const int64_t kEndOffsetDays = DateToDays(19980802) - DateToDays(kStartDate);
  const int64_t kCutoff = 19950617;  // official returnflag/linestatus pivot

  orders->Reserve(counts.orders);
  // Lines per order are uniform in [1, 7], so reserve the expected four
  // lineitem rows per order; the tail growth (if any) is a single doubling.
  lineitem->Reserve(counts.orders * 4);
  for (size_t o = 1; o <= counts.orders; ++o) {
    int64_t orderdate =
        AddDays(kStartDate, rng.NextRange(0, kEndOffsetDays));
    int64_t custkey =
        static_cast<int64_t>(rng.NextRange(1, static_cast<int64_t>(counts.customer)));
    int64_t nlines = rng.NextRange(1, 7);
    double total = 0.0;
    for (int64_t l = 1; l <= nlines; ++l) {
      int64_t qty = rng.NextRange(1, 50);
      double price_per_unit =
          static_cast<double>(rng.NextRange(90100, 209800)) / 100.0;
      double extended = static_cast<double>(qty) * price_per_unit;
      double discount = static_cast<double>(rng.NextRange(0, 10)) / 100.0;
      double tax = static_cast<double>(rng.NextRange(0, 8)) / 100.0;
      int64_t shipdate = AddDays(orderdate, rng.NextRange(1, 121));
      int64_t commitdate = AddDays(orderdate, rng.NextRange(30, 90));
      int64_t receiptdate = AddDays(shipdate, rng.NextRange(1, 30));
      std::string returnflag;
      if (receiptdate <= kCutoff) {
        returnflag = rng.NextBool(0.5) ? "R" : "A";
      } else {
        returnflag = "N";
      }
      std::string linestatus = shipdate > kCutoff ? "O" : "F";
      STETHO_RETURN_IF_ERROR(lineitem->AppendRow(
          {Value::Int(static_cast<int64_t>(o)),
           Value::Int(rng.NextRange(1, static_cast<int64_t>(counts.part))),
           Value::Int(rng.NextRange(1, static_cast<int64_t>(counts.supplier))),
           Value::Int(l), Value::Int(qty), Value::Double(extended),
           Value::Double(discount), Value::Double(tax),
           Value::String(std::move(returnflag)), Value::String(std::move(linestatus)),
           Value::Int(shipdate), Value::Int(commitdate), Value::Int(receiptdate),
           Value::String(Pick(rng, kShipModes)),
           Value::String(Pick(rng, kShipInstruct))}));
      total += extended * (1.0 - discount) * (1.0 + tax);
    }
    STETHO_RETURN_IF_ERROR(orders->AppendRow(
        {Value::Int(static_cast<int64_t>(o)), Value::Int(custkey),
         Value::Int(orderdate), Value::String(Pick(rng, kPriorities)),
         Value::Int(0), Value::Double(total)}));
  }
  STETHO_RETURN_IF_ERROR(catalog.AddTable(orders));
  STETHO_RETURN_IF_ERROR(catalog.AddTable(lineitem));

  // Row counts with a random component (order line counts, partsupp
  // fan-out) can overshoot the Reserve estimates and double the backing
  // arrays. Trim the slack so the catalog's MemoryBytes reflects the rows
  // actually generated — the engine's live-byte accountant charges shared
  // catalog columns at sql.bind, and the static footprint model assumes
  // the capacity of a loaded column matches its size.
  for (const std::string& name : catalog.TableNames()) {
    catalog.GetTable(name).value()->ShrinkToFit();
  }

  return catalog;
}

}  // namespace stetho::tpch
