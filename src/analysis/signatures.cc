#include "analysis/signatures.h"

#include <map>

namespace stetho::analysis {
namespace {

constexpr ValueKind kAny = ValueKind::kAny;
constexpr ValueKind kScalar = ValueKind::kScalar;
constexpr ValueKind kBat = ValueKind::kBat;

KernelSignature Fixed(std::vector<ValueKind> args,
                      std::vector<ValueKind> results) {
  KernelSignature s;
  s.args = std::move(args);
  s.results = std::move(results);
  return s;
}

KernelSignature Variadic(int min_args, ValueKind kind,
                         std::vector<ValueKind> results) {
  KernelSignature s;
  s.variadic = true;
  s.min_args = min_args;
  s.variadic_kind = kind;
  s.results = std::move(results);
  return s;
}

/// The table mirrors the registrations in RegisterCoreKernels /
/// RegisterAlgebraKernels / RegisterGroupAggrKernels and each kernel's
/// ExpectArity + Arg{Bat,Scalar} calls. Keep the three in sync when adding
/// kernels (tests/analysis_test.cc cross-checks coverage against the
/// default registry).
std::map<std::string, KernelSignature> BuildTable() {
  std::map<std::string, KernelSignature> t;

  // --- sql: catalog access (pure: tables are immutable) + result sink ---
  t["sql.mvc"] = Fixed({}, {kScalar});
  t["sql.tid"] = Fixed({kScalar, kScalar, kScalar}, {kBat});
  t["sql.bind"] = Fixed({kScalar, kScalar, kScalar, kScalar, kScalar}, {kBat});
  {
    KernelSignature s = Fixed({kScalar, kAny}, {});
    s.is_sink = true;
    s.side_effect_free = false;
    t["sql.resultSet"] = s;
  }

  // --- bat / mat: BAT bookkeeping and mergetable ---
  t["bat.mirror"] = Fixed({kBat}, {kBat});
  t["bat.partition"] = Fixed({kBat, kScalar, kScalar}, {kBat});
  t["bat.densebat"] = Fixed({kScalar}, {kBat});
  t["bat.append"] = Fixed({kBat, kBat}, {kBat});
  t["mat.pack"] = Variadic(1, kBat, {kBat});

  // --- calc / batcalc: scalar and vectorized arithmetic ---
  for (const char* op : {"add", "sub", "mul", "div", "eq", "ne", "lt", "le",
                         "gt", "ge", "and", "or"}) {
    t[std::string("calc.") + op] = Fixed({kScalar, kScalar}, {kScalar});
    KernelSignature s = Fixed({kAny, kAny}, {kBat});
    s.needs_bat_arg = true;
    t[std::string("batcalc.") + op] = s;
  }
  t["calc.not"] = Fixed({kScalar}, {kScalar});
  t["calc.lng"] = Fixed({kScalar}, {kScalar});
  t["calc.dbl"] = Fixed({kScalar}, {kScalar});
  t["calc.str"] = Fixed({kScalar}, {kScalar});
  t["batcalc.not"] = Fixed({kBat}, {kBat});
  t["batcalc.ifthenelse"] = Fixed({kBat, kAny, kAny}, {kBat});
  t["batcalc.like"] = Fixed({kBat, kScalar}, {kBat});

  // --- algebra: selections, projections, joins, sorting ---
  t["algebra.select"] = Fixed({kBat, kBat, kScalar, kScalar}, {kBat});
  t["algebra.thetaselect"] = Fixed({kBat, kBat, kScalar, kScalar}, {kBat});
  t["algebra.likeselect"] = Fixed({kBat, kBat, kScalar}, {kBat});
  t["algebra.selectmask"] = Fixed({kBat, kBat}, {kBat});
  t["algebra.projection"] = Fixed({kBat, kBat}, {kBat});
  t["algebra.join"] = Fixed({kBat, kBat}, {kBat, kBat});
  t["algebra.sort"] = Fixed({kBat, kScalar}, {kBat, kBat});
  t["algebra.slice"] = Fixed({kBat, kScalar, kScalar}, {kBat});
  t["algebra.firstn"] = Fixed({kBat, kScalar, kScalar}, {kBat});

  // --- group / aggr ---
  t["group.group"] = Fixed({kBat}, {kBat, kBat, kBat});
  t["group.subgroup"] = Fixed({kBat, kBat}, {kBat, kBat, kBat});
  for (const char* agg : {"sum", "min", "max", "avg", "count"}) {
    t[std::string("aggr.") + agg] = Fixed({kBat}, {kScalar});
    t[std::string("aggr.sub") + agg] = Fixed({kBat, kBat, kBat}, {kBat});
  }

  // --- language / io / debug: administrative and effectful ---
  {
    KernelSignature s = Fixed({}, {});
    s.side_effect_free = false;
    t["language.dataflow"] = s;
  }
  {
    KernelSignature s = Fixed({kAny}, {});
    s.side_effect_free = false;
    t["language.pass"] = s;
  }
  {
    KernelSignature s = Variadic(0, kAny, {});
    s.is_sink = true;
    s.side_effect_free = false;
    t["io.print"] = s;
  }
  {
    KernelSignature s = Fixed({kScalar}, {});
    s.side_effect_free = false;
    t["debug.sleep"] = s;
  }
  {
    KernelSignature s = Fixed({kScalar}, {kScalar});
    s.side_effect_free = false;  // exists to defeat dead-code elimination
    t["debug.spin"] = s;
  }
  return t;
}

}  // namespace

const char* ValueKindName(ValueKind kind) {
  switch (kind) {
    case ValueKind::kAny:
      return "any";
    case ValueKind::kScalar:
      return "scalar";
    case ValueKind::kBat:
      return "bat";
  }
  return "unknown";
}

const KernelSignature* LookupKernelSignature(const std::string& module,
                                             const std::string& function) {
  static const std::map<std::string, KernelSignature>& table =
      *new std::map<std::string, KernelSignature>(BuildTable());
  auto it = table.find(module + "." + function);
  return it != table.end() ? &it->second : nullptr;
}

bool LooksLikeResultSink(const std::string& module,
                         const std::string& function) {
  if (module == "io") return true;
  auto contains = [&function](const char* needle) {
    return function.find(needle) != std::string::npos;
  };
  return contains("print") || contains("result") || contains("Result") ||
         contains("output") || contains("export");
}

}  // namespace stetho::analysis
