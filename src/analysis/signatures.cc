#include "analysis/signatures.h"

#include <algorithm>
#include <map>

namespace stetho::analysis {
namespace {

constexpr ValueKind kAny = ValueKind::kAny;
constexpr ValueKind kScalar = ValueKind::kScalar;
constexpr ValueKind kBat = ValueKind::kBat;

using storage::DataType;
using storage::Value;

// ---------------------------------------------------------------------------
// Transfer functions. Each mirrors the runtime semantics of one kernel in
// src/engine/kernels_*.cc and must stay SOUND: every fact it asserts
// (element type, cardinality interval, NULL-freedom, ascending order) must
// hold for the value the kernel actually produces. The checks built on top
// (type-flow, cardinality-contradiction, the pass-equivalence differ) treat
// a violated fact as a provable bug, so optimism here becomes false
// positives there.
// ---------------------------------------------------------------------------

const AbstractValue& Arg(const TransferContext& ctx, size_t i) {
  static const AbstractValue& top = *new AbstractValue(AbstractValue::Top());
  if (ctx.args == nullptr || i >= ctx.args->size()) return top;
  return (*ctx.args)[i];
}

/// Constant argument i coerced to int64, when statically known.
bool ConstInt(const TransferContext& ctx, size_t i, int64_t* out) {
  const AbstractValue& v = Arg(ctx, i);
  if (!v.constant.has_value()) return false;
  auto r = v.constant->ToInt();
  if (!r.ok()) return false;
  *out = r.value();
  return true;
}

/// Meet of the cardinalities of all BAT arguments (batcalc zip semantics:
/// at run time they are all the same size, so the true count lies in every
/// argument's interval). Falls back to the join hull when the meet is empty
/// (contradictory plans — the cardinality-contradiction check reports it).
Interval ZipCard(const TransferContext& ctx) {
  bool any = false;
  Interval meet = Interval::Unknown();
  Interval hull{Interval::kUnbounded, 0};
  for (size_t i = 0; ctx.args != nullptr && i < ctx.args->size(); ++i) {
    const AbstractValue& v = (*ctx.args)[i];
    if (!v.defined || v.is_bat != Tri::kTrue) continue;
    meet = meet.Meet(v.card);
    hull = any ? hull.Join(v.card) : v.card;
    any = true;
  }
  if (!any) return Interval::Unknown();
  return meet.lo <= meet.hi ? meet : hull;
}

/// Numeric promotion shared by calc./batcalc. arithmetic: double if the
/// operation is a division or any operand is a double; int64 once every
/// operand type is known non-double; unknown otherwise.
DataType ArithElem(const TransferContext& ctx, bool is_div) {
  if (is_div) return DataType::kDouble;
  bool all_known = true;
  for (size_t i = 0; ctx.args != nullptr && i < ctx.args->size(); ++i) {
    const AbstractValue& v = (*ctx.args)[i];
    if (v.elem == DataType::kDouble) return DataType::kDouble;
    if (!v.elem_known()) all_known = false;
  }
  return all_known ? DataType::kInt64 : DataType::kNull;
}

/// kFalse only when every operand is provably NULL-free; NULLs propagate
/// through arithmetic and comparisons.
Tri PropagatedNullable(const TransferContext& ctx) {
  Tri out = Tri::kFalse;
  for (size_t i = 0; ctx.args != nullptr && i < ctx.args->size(); ++i) {
    out = TriOr(out, (*ctx.args)[i].nullable);
  }
  return out;
}

void TransferDensebat(const TransferContext& ctx,
                      std::vector<AbstractValue>* r) {
  if (r->size() != 1) return;
  AbstractValue& out = (*r)[0];
  out.elem = DataType::kOid;
  out.sorted = Tri::kTrue;
  out.nullable = Tri::kFalse;
  int64_t n = 0;
  if (ConstInt(ctx, 0, &n)) out.card = Interval::Exact(std::max<int64_t>(0, n));
}

void TransferMirror(const TransferContext& ctx,
                    std::vector<AbstractValue>* r) {
  if (r->size() != 1) return;
  AbstractValue& out = (*r)[0];
  out.elem = DataType::kOid;
  out.sorted = Tri::kTrue;
  out.nullable = Tri::kFalse;
  const AbstractValue& in = Arg(ctx, 0);
  if (in.defined && in.is_bat == Tri::kTrue) out.card = in.card;
}

void TransferPartition(const TransferContext& ctx,
                       std::vector<AbstractValue>* r) {
  if (r->size() != 1) return;
  AbstractValue& out = (*r)[0];
  const AbstractValue& in = Arg(ctx, 0);
  out.elem = in.elem;
  out.sorted = in.sorted;
  out.nullable = in.nullable;
  // A piece holds between 0 and ceil(n / pieces) of the input's rows: the
  // kernel slices [n*i/p, n*(i+1)/p), and no such slice exceeds the ceiling.
  // The lower bound stays 0 (the exact split n*(i+1)/p - n*i/p is
  // deliberately not used: it would prove tiny pieces empty and drown
  // small-table plans in guaranteed-empty warnings). The ceiling matters for
  // the memory model: without it every piece is bounded by the FULL input,
  // and mat.pack's sum inflates downstream cardinalities by the piece count.
  out.card = Interval{0, in.card.hi};
  int64_t pieces = 0;
  if (ConstInt(ctx, 1, &pieces) && pieces > 0 &&
      in.card.hi != Interval::kUnbounded) {
    out.card.hi = (in.card.hi + pieces - 1) / pieces;
  }
}

void TransferAppend(const TransferContext& ctx,
                    std::vector<AbstractValue>* r) {
  if (r->size() != 1) return;
  AbstractValue& out = (*r)[0];
  const AbstractValue& x = Arg(ctx, 0);
  const AbstractValue& y = Arg(ctx, 1);
  if (x.elem_known() && x.elem == y.elem) out.elem = x.elem;
  out.card = Interval::SaturatingAdd(x.card, y.card);
  out.nullable = TriOr(x.nullable, y.nullable);
}

void TransferPack(const TransferContext& ctx, std::vector<AbstractValue>* r) {
  if (r->size() != 1 || ctx.args == nullptr || ctx.args->empty()) return;
  AbstractValue& out = (*r)[0];
  DataType elem = (*ctx.args)[0].elem;
  Interval card = Interval::Exact(0);
  Tri nullable = Tri::kFalse;
  for (const AbstractValue& v : *ctx.args) {
    if (v.elem != elem) elem = DataType::kNull;
    card = Interval::SaturatingAdd(card, v.card);
    nullable = TriOr(nullable, v.nullable);
  }
  out.elem = elem;
  out.card = card;
  out.nullable = nullable;
}

template <bool kIsDiv>
void TransferArith(const TransferContext& ctx, std::vector<AbstractValue>* r) {
  if (r->size() != 1) return;
  AbstractValue& out = (*r)[0];
  out.elem = ArithElem(ctx, kIsDiv);
  // x/0 yields NULL, so division is never provably NULL-free.
  out.nullable = kIsDiv ? Tri::kUnknown : PropagatedNullable(ctx);
  if (out.is_bat == Tri::kTrue) out.card = ZipCard(ctx);
}

void TransferCompare(const TransferContext& ctx,
                     std::vector<AbstractValue>* r) {
  if (r->size() != 1) return;
  AbstractValue& out = (*r)[0];
  out.elem = DataType::kBool;
  out.nullable = PropagatedNullable(ctx);
  if (out.is_bat == Tri::kTrue) out.card = ZipCard(ctx);
}

void TransferCast(DataType to, const TransferContext& ctx,
                  std::vector<AbstractValue>* r) {
  if (r->size() != 1) return;
  AbstractValue& out = (*r)[0];
  out.elem = to;
  out.nullable = Arg(ctx, 0).nullable;
}

void TransferCastLng(const TransferContext& ctx,
                     std::vector<AbstractValue>* r) {
  TransferCast(DataType::kInt64, ctx, r);
}
void TransferCastDbl(const TransferContext& ctx,
                     std::vector<AbstractValue>* r) {
  TransferCast(DataType::kDouble, ctx, r);
}
void TransferCastStr(const TransferContext& ctx,
                     std::vector<AbstractValue>* r) {
  TransferCast(DataType::kString, ctx, r);
}

void TransferIfthenelse(const TransferContext& ctx,
                        std::vector<AbstractValue>* r) {
  if (r->size() != 1) return;
  AbstractValue& out = (*r)[0];
  const AbstractValue& t = Arg(ctx, 1);
  const AbstractValue& e = Arg(ctx, 2);
  if (t.elem == DataType::kDouble || e.elem == DataType::kDouble) {
    out.elem = DataType::kDouble;  // either branch widens the result
  } else if (t.elem_known() && e.elem_known()) {
    out.elem = t.elem;
  }
  out.nullable = PropagatedNullable(ctx);
  out.card = ZipCard(ctx);
}

void TransferLike(const TransferContext& ctx, std::vector<AbstractValue>* r) {
  if (r->size() != 1) return;
  AbstractValue& out = (*r)[0];
  out.elem = DataType::kBool;
  const AbstractValue& in = Arg(ctx, 0);
  out.nullable = in.nullable;
  if (in.defined && in.is_bat == Tri::kTrue) out.card = in.card;
}

/// select / thetaselect / likeselect: a subsequence of the candidate list
/// (arg 1) restricted to positions of the value column (arg 0).
void TransferSelect(const TransferContext& ctx,
                    std::vector<AbstractValue>* r) {
  if (r->size() != 1) return;
  AbstractValue& out = (*r)[0];
  out.elem = DataType::kOid;
  out.nullable = Tri::kFalse;
  const AbstractValue& col = Arg(ctx, 0);
  const AbstractValue& cand = Arg(ctx, 1);
  out.card = Interval{0, std::min(cand.card.hi, col.card.hi)};
  // A subsequence preserves the candidate list's order.
  out.sorted = cand.sorted;
}

void TransferSelectmask(const TransferContext& ctx,
                        std::vector<AbstractValue>* r) {
  if (r->size() != 1) return;
  AbstractValue& out = (*r)[0];
  out.elem = DataType::kOid;
  out.nullable = Tri::kFalse;
  const AbstractValue& cand = Arg(ctx, 0);
  const AbstractValue& mask = Arg(ctx, 1);
  out.card = Interval{0, std::min(cand.card.hi, mask.card.hi)};
  out.sorted = cand.sorted;
}

void TransferProjection(const TransferContext& ctx,
                        std::vector<AbstractValue>* r) {
  if (r->size() != 1) return;
  AbstractValue& out = (*r)[0];
  const AbstractValue& cand = Arg(ctx, 0);
  const AbstractValue& col = Arg(ctx, 1);
  out.elem = col.elem;
  out.nullable = col.nullable;
  if (cand.defined && cand.is_bat == Tri::kTrue) out.card = cand.card;
}

void TransferJoin(const TransferContext& ctx, std::vector<AbstractValue>* r) {
  if (r->size() != 2) return;
  Interval card =
      Interval::SaturatingMulUpper(Arg(ctx, 0).card, Arg(ctx, 1).card);
  for (AbstractValue& out : *r) {
    out.elem = DataType::kOid;
    out.nullable = Tri::kFalse;
    out.card = card;
  }
}

void TransferSort(const TransferContext& ctx, std::vector<AbstractValue>* r) {
  if (r->size() != 2) return;
  const AbstractValue& in = Arg(ctx, 0);
  AbstractValue& values = (*r)[0];
  values.elem = in.elem;
  values.nullable = in.nullable;
  if (in.defined && in.is_bat == Tri::kTrue) values.card = in.card;
  // Ascending sort provably sorts; descending output may still be ascending
  // when all keys are equal, so it stays unknown rather than kFalse.
  const AbstractValue& rev = Arg(ctx, 1);
  if (rev.constant.has_value() && rev.constant->type() == DataType::kBool &&
      !rev.constant->AsBool()) {
    values.sorted = Tri::kTrue;
  }
  AbstractValue& perm = (*r)[1];
  perm.elem = DataType::kOid;
  perm.nullable = Tri::kFalse;
  perm.card = values.card;
}

void TransferSlice(const TransferContext& ctx, std::vector<AbstractValue>* r) {
  if (r->size() != 1) return;
  AbstractValue& out = (*r)[0];
  const AbstractValue& in = Arg(ctx, 0);
  out.elem = in.elem;
  out.nullable = in.nullable;
  out.sorted = in.sorted;
  int64_t lo = 0;
  int64_t hi = 0;
  if (ConstInt(ctx, 1, &lo) && ConstInt(ctx, 2, &hi) && lo >= 0 && hi >= lo) {
    // rows(n) = min(hi, n) - min(lo, n), monotone in n.
    auto rows = [lo, hi](int64_t n) {
      return std::min(hi, n) - std::min(lo, n);
    };
    out.card = Interval{rows(in.card.lo), rows(in.card.hi)};
  } else {
    out.card = Interval{0, in.card.hi};
  }
}

void TransferFirstn(const TransferContext& ctx,
                    std::vector<AbstractValue>* r) {
  if (r->size() != 1) return;
  AbstractValue& out = (*r)[0];
  out.elem = DataType::kOid;
  out.nullable = Tri::kFalse;
  int64_t n = 0;
  int64_t hi = Arg(ctx, 0).card.hi;
  if (ConstInt(ctx, 1, &n)) hi = std::min(hi, std::max<int64_t>(0, n));
  out.card = Interval{0, hi};
}

/// group.group / group.subgroup -> (per-row group ids, extents, histogram).
void TransferGroup(const TransferContext& ctx, std::vector<AbstractValue>* r) {
  if (r->size() != 3) return;
  const AbstractValue& col = Arg(ctx, 0);
  AbstractValue& groups = (*r)[0];
  groups.elem = DataType::kOid;
  groups.nullable = Tri::kFalse;
  if (col.defined && col.is_bat == Tri::kTrue) groups.card = col.card;
  AbstractValue& extents = (*r)[1];
  extents.elem = DataType::kOid;
  extents.nullable = Tri::kFalse;
  extents.card = Interval{col.card.lo > 0 ? 1 : 0, col.card.hi};
  // First-occurrence positions are discovered scanning ascending.
  extents.sorted = Tri::kTrue;
  AbstractValue& histogram = (*r)[2];
  histogram.elem = DataType::kInt64;
  histogram.nullable = Tri::kFalse;
  histogram.card = extents.card;
}

void TransferAggrCount(const TransferContext& ctx,
                       std::vector<AbstractValue>* r) {
  if (r->size() != 1) return;
  AbstractValue& out = (*r)[0];
  out.elem = DataType::kInt64;
  out.nullable = Tri::kFalse;
  const AbstractValue& col = Arg(ctx, 0);
  // count skips NULLs, so the cardinality only pins the result for a
  // provably NULL-free input.
  if (col.defined && col.card.is_exact() && col.nullable == Tri::kFalse) {
    out.constant = Value::Int(col.card.lo);
  }
}

void TransferAggrNumeric(const TransferContext& ctx,
                         std::vector<AbstractValue>* r) {
  if (r->size() != 1) return;
  AbstractValue& out = (*r)[0];
  const AbstractValue& col = Arg(ctx, 0);
  if (col.elem_known()) {
    out.elem = col.elem == DataType::kDouble ? DataType::kDouble
                                             : DataType::kInt64;
  }
}

void TransferAggrAvg(const TransferContext& /*ctx*/,
                     std::vector<AbstractValue>* r) {
  if (r->size() != 1) return;
  (*r)[0].elem = DataType::kDouble;
}

/// Grouped aggregates: one output row per group (extents, arg 2).
void TransferSubaggr(DataType elem, const TransferContext& ctx,
                     std::vector<AbstractValue>* r) {
  if (r->size() != 1) return;
  AbstractValue& out = (*r)[0];
  const AbstractValue& col = Arg(ctx, 0);
  const AbstractValue& extents = Arg(ctx, 2);
  if (elem != DataType::kNull) {
    out.elem = elem;
  } else if (col.elem_known()) {
    out.elem = col.elem == DataType::kDouble ? DataType::kDouble
                                             : DataType::kInt64;
  }
  if (extents.defined && extents.is_bat == Tri::kTrue) {
    out.card = extents.card;
  }
}

void TransferSubNumeric(const TransferContext& ctx,
                        std::vector<AbstractValue>* r) {
  TransferSubaggr(DataType::kNull, ctx, r);
}
void TransferSubAvg(const TransferContext& ctx,
                    std::vector<AbstractValue>* r) {
  TransferSubaggr(DataType::kDouble, ctx, r);
}
void TransferSubCount(const TransferContext& ctx,
                      std::vector<AbstractValue>* r) {
  TransferSubaggr(DataType::kInt64, ctx, r);
  if (r->size() == 1) (*r)[0].nullable = Tri::kFalse;
}

void TransferMvc(const TransferContext& ctx, std::vector<AbstractValue>* r) {
  (void)ctx;
  if (r->size() != 1) return;
  (*r)[0].elem = DataType::kInt64;
  (*r)[0].nullable = Tri::kFalse;
}

void TransferTid(const TransferContext& ctx, std::vector<AbstractValue>* r) {
  (void)ctx;
  if (r->size() != 1) return;
  AbstractValue& out = (*r)[0];
  out.elem = DataType::kOid;
  out.sorted = Tri::kTrue;
  out.nullable = Tri::kFalse;
}

KernelSignature Fixed(std::vector<ValueKind> args,
                      std::vector<ValueKind> results) {
  KernelSignature s;
  s.args = std::move(args);
  s.results = std::move(results);
  return s;
}

KernelSignature Variadic(int min_args, ValueKind kind,
                         std::vector<ValueKind> results) {
  KernelSignature s;
  s.variadic = true;
  s.min_args = min_args;
  s.variadic_kind = kind;
  s.results = std::move(results);
  return s;
}

/// The table mirrors the registrations in RegisterCoreKernels /
/// RegisterAlgebraKernels / RegisterGroupAggrKernels and each kernel's
/// ExpectArity + Arg{Bat,Scalar} calls, and carries the abstract transfer
/// function modelling the kernel's value semantics. Keep all three in sync
/// when adding kernels (tests/analysis_test.cc cross-checks coverage against
/// the default registry).
std::map<std::string, KernelSignature> BuildTable() {
  constexpr DataType kElemAny = DataType::kNull;
  constexpr DataType kElemBool = DataType::kBool;
  constexpr DataType kElemStr = DataType::kString;
  std::map<std::string, KernelSignature> t;

  // --- sql: catalog access (pure: tables are immutable) + result sink ---
  {
    KernelSignature s = Fixed({}, {kScalar});
    s.transfer = TransferMvc;
    t["sql.mvc"] = s;
  }
  {
    KernelSignature s = Fixed({kScalar, kScalar, kScalar}, {kBat});
    s.arg_elem = {kElemAny, kElemStr, kElemStr};
    s.transfer = TransferTid;
    t["sql.tid"] = s;
  }
  {
    KernelSignature s =
        Fixed({kScalar, kScalar, kScalar, kScalar, kScalar}, {kBat});
    s.arg_elem = {kElemAny, kElemStr, kElemStr, kElemStr, kElemAny};
    t["sql.bind"] = s;
  }
  {
    KernelSignature s = Fixed({kScalar, kAny}, {});
    s.is_sink = true;
    s.side_effect_free = false;
    s.arg_elem = {kElemStr, kElemAny};
    t["sql.resultSet"] = s;
  }

  // --- bat / mat: BAT bookkeeping and mergetable ---
  {
    KernelSignature s = Fixed({kBat}, {kBat});
    s.transfer = TransferMirror;
    t["bat.mirror"] = s;
  }
  {
    KernelSignature s = Fixed({kBat, kScalar, kScalar}, {kBat});
    s.transfer = TransferPartition;
    t["bat.partition"] = s;
  }
  {
    KernelSignature s = Fixed({kScalar}, {kBat});
    s.transfer = TransferDensebat;
    t["bat.densebat"] = s;
  }
  {
    KernelSignature s = Fixed({kBat, kBat}, {kBat});
    s.transfer = TransferAppend;
    t["bat.append"] = s;
  }
  {
    KernelSignature s = Variadic(1, kBat, {kBat});
    s.transfer = TransferPack;
    t["mat.pack"] = s;
  }

  // --- calc / batcalc: scalar and vectorized arithmetic ---
  for (const char* op : {"add", "sub", "mul", "div", "eq", "ne", "lt", "le",
                         "gt", "ge", "and", "or"}) {
    const std::string name(op);
    bool arith =
        name == "add" || name == "sub" || name == "mul" || name == "div";
    bool boolean = name == "and" || name == "or";
    AbstractTransferFn fn = !arith ? TransferCompare
                            : name == "div" ? TransferArith<true>
                                            : TransferArith<false>;
    KernelSignature c = Fixed({kScalar, kScalar}, {kScalar});
    c.transfer = fn;
    if (boolean) c.arg_elem = {kElemBool, kElemBool};
    t[std::string("calc.") + op] = c;

    KernelSignature b = Fixed({kAny, kAny}, {kBat});
    b.needs_bat_arg = true;
    b.transfer = fn;
    b.equal_card_args = {{0, 1}};
    if (boolean) b.arg_elem = {kElemBool, kElemBool};
    t[std::string("batcalc.") + op] = b;
  }
  {
    KernelSignature s = Fixed({kScalar}, {kScalar});
    s.arg_elem = {kElemBool};
    s.transfer = TransferCompare;  // !x is boolean with NULL propagation
    t["calc.not"] = s;
  }
  {
    KernelSignature s = Fixed({kScalar}, {kScalar});
    s.transfer = TransferCastLng;
    t["calc.lng"] = s;
  }
  {
    KernelSignature s = Fixed({kScalar}, {kScalar});
    s.transfer = TransferCastDbl;
    t["calc.dbl"] = s;
  }
  {
    KernelSignature s = Fixed({kScalar}, {kScalar});
    s.transfer = TransferCastStr;
    t["calc.str"] = s;
  }
  {
    KernelSignature s = Fixed({kBat}, {kBat});
    s.arg_elem = {kElemBool};
    s.transfer = TransferCompare;
    t["batcalc.not"] = s;
  }
  {
    KernelSignature s = Fixed({kBat, kAny, kAny}, {kBat});
    s.arg_elem = {kElemBool, kElemAny, kElemAny};
    s.equal_card_args = {{0, 1}, {0, 2}};
    s.transfer = TransferIfthenelse;
    t["batcalc.ifthenelse"] = s;
  }
  {
    KernelSignature s = Fixed({kBat, kScalar}, {kBat});
    s.arg_elem = {kElemStr, kElemStr};
    s.transfer = TransferLike;
    t["batcalc.like"] = s;
  }

  // --- algebra: selections, projections, joins, sorting ---
  for (const char* sel : {"select", "thetaselect"}) {
    KernelSignature s = Fixed({kBat, kBat, kScalar, kScalar}, {kBat});
    s.candidate_args = {1};
    if (std::string(sel) == "thetaselect") {
      s.arg_elem = {kElemAny, kElemAny, kElemAny, kElemStr};
    }
    s.transfer = TransferSelect;
    t[std::string("algebra.") + sel] = s;
  }
  {
    KernelSignature s = Fixed({kBat, kBat, kScalar}, {kBat});
    s.candidate_args = {1};
    s.arg_elem = {kElemStr, kElemAny, kElemStr};
    s.transfer = TransferSelect;
    t["algebra.likeselect"] = s;
  }
  {
    KernelSignature s = Fixed({kBat, kBat}, {kBat});
    s.candidate_args = {0};
    s.arg_elem = {kElemAny, kElemBool};
    s.equal_card_args = {{0, 1}};
    s.transfer = TransferSelectmask;
    t["algebra.selectmask"] = s;
  }
  {
    KernelSignature s = Fixed({kBat, kBat}, {kBat});
    s.candidate_args = {0};
    s.transfer = TransferProjection;
    t["algebra.projection"] = s;
  }
  {
    KernelSignature s = Fixed({kBat, kBat}, {kBat, kBat});
    s.transfer = TransferJoin;
    t["algebra.join"] = s;
  }
  {
    KernelSignature s = Fixed({kBat, kScalar}, {kBat, kBat});
    s.arg_elem = {kElemAny, kElemBool};
    s.transfer = TransferSort;
    t["algebra.sort"] = s;
  }
  {
    KernelSignature s = Fixed({kBat, kScalar, kScalar}, {kBat});
    s.transfer = TransferSlice;
    t["algebra.slice"] = s;
  }
  {
    KernelSignature s = Fixed({kBat, kScalar, kScalar}, {kBat});
    s.arg_elem = {kElemAny, kElemAny, kElemBool};
    s.transfer = TransferFirstn;
    t["algebra.firstn"] = s;
  }

  // --- group / aggr ---
  {
    KernelSignature s = Fixed({kBat}, {kBat, kBat, kBat});
    s.transfer = TransferGroup;
    t["group.group"] = s;
  }
  {
    KernelSignature s = Fixed({kBat, kBat}, {kBat, kBat, kBat});
    s.equal_card_args = {{0, 1}};
    s.transfer = TransferGroup;
    t["group.subgroup"] = s;
  }
  for (const char* agg : {"sum", "min", "max", "avg", "count"}) {
    std::string name(agg);
    KernelSignature s = Fixed({kBat}, {kScalar});
    s.transfer = name == "count" ? TransferAggrCount
                 : name == "avg" ? TransferAggrAvg
                                 : TransferAggrNumeric;
    t["aggr." + name] = s;

    KernelSignature g = Fixed({kBat, kBat, kBat}, {kBat});
    g.equal_card_args = {{0, 1}};
    g.transfer = name == "count" ? TransferSubCount
                 : name == "avg" ? TransferSubAvg
                                 : TransferSubNumeric;
    t["aggr.sub" + name] = g;
  }

  // --- language / io / debug: administrative and effectful ---
  {
    KernelSignature s = Fixed({}, {});
    s.side_effect_free = false;
    t["language.dataflow"] = s;
  }
  {
    KernelSignature s = Fixed({kAny}, {});
    s.side_effect_free = false;
    t["language.pass"] = s;
  }
  {
    KernelSignature s = Variadic(0, kAny, {});
    s.is_sink = true;
    s.side_effect_free = false;
    t["io.print"] = s;
  }
  {
    KernelSignature s = Fixed({kScalar}, {});
    s.side_effect_free = false;
    t["debug.sleep"] = s;
  }
  {
    KernelSignature s = Fixed({kScalar}, {kScalar});
    s.side_effect_free = false;  // exists to defeat dead-code elimination
    t["debug.spin"] = s;
  }
  return t;
}

}  // namespace

const char* ValueKindName(ValueKind kind) {
  switch (kind) {
    case ValueKind::kAny:
      return "any";
    case ValueKind::kScalar:
      return "scalar";
    case ValueKind::kBat:
      return "bat";
  }
  return "unknown";
}

const KernelSignature* LookupKernelSignature(const std::string& module,
                                             const std::string& function) {
  static const std::map<std::string, KernelSignature>& table =
      *new std::map<std::string, KernelSignature>(BuildTable());
  auto it = table.find(module + "." + function);
  return it != table.end() ? &it->second : nullptr;
}

bool LooksLikeResultSink(const std::string& module,
                         const std::string& function) {
  if (module == "io") return true;
  auto contains = [&function](const char* needle) {
    return function.find(needle) != std::string::npos;
  };
  return contains("print") || contains("result") || contains("Result") ||
         contains("output") || contains("export");
}

}  // namespace stetho::analysis
