#include "analysis/absint.h"

#include <utility>

#include "common/string_util.h"

namespace stetho::analysis {
namespace {

using mal::Argument;
using mal::Instruction;
using mal::Program;

/// Per-result shape defaults from the signature's result kinds. Transfer
/// functions refine these; kernels without a transfer still get their
/// scalar/BAT shape right.
std::vector<AbstractValue> SeedResults(const KernelSignature* sig,
                                       const Instruction& ins) {
  std::vector<AbstractValue> results(ins.results.size(),
                                     AbstractValue::Top());
  if (sig == nullptr) return results;
  for (size_t i = 0; i < results.size() && i < sig->results.size(); ++i) {
    switch (sig->results[i]) {
      case ValueKind::kScalar:
        results[i].is_bat = Tri::kFalse;
        results[i].card = Interval::Exact(1);
        break;
      case ValueKind::kBat:
        results[i].is_bat = Tri::kTrue;
        break;
      case ValueKind::kAny:
        break;
    }
  }
  return results;
}

std::vector<AbstractValue> EvalWithArgs(const Program& program,
                                        const Instruction& ins,
                                        const std::vector<AbstractValue>& args) {
  const KernelSignature* sig =
      LookupKernelSignature(ins.module, ins.function);
  std::vector<AbstractValue> results = SeedResults(sig, ins);
  if (sig != nullptr && sig->transfer != nullptr) {
    TransferContext ctx{&program, &ins, &args};
    sig->transfer(ctx, &results);
  }
  return results;
}

/// Refines a raw transfer result with the result register's declaration:
/// the declared MAL type fills in facts the transfer left unknown, and a
/// catalog cardinality annotation narrows the interval. The raw value is
/// kept raw elsewhere so the type-flow check can still compare the two.
AbstractValue MergeDeclared(const AbstractValue& raw,
                            const mal::Variable& var) {
  AbstractValue out = raw;
  out.defined = true;
  if (out.is_bat == Tri::kUnknown) {
    out.is_bat = var.type.is_bat ? Tri::kTrue : Tri::kFalse;
  }
  if (!out.elem_known() && var.type.base != storage::DataType::kNull) {
    out.elem = var.type.base;
  }
  if (var.type.is_bat && var.has_cardinality()) {
    Interval annotated = Interval::Range(var.card_lo, var.card_hi);
    // The annotation is catalog ground truth; it wins over a transfer
    // result it contradicts (the checks report the contradiction).
    out.card =
        out.card.Overlaps(annotated) ? out.card.Meet(annotated) : annotated;
  }
  return out;
}

}  // namespace

AbstractValue ArgOperandValue(const AbstractState& state,
                              const Argument& arg) {
  if (arg.kind == Argument::Kind::kConst) {
    return AbstractValue::FromConstant(arg.constant);
  }
  if (arg.var < 0 || static_cast<size_t>(arg.var) >= state.vars.size()) {
    return AbstractValue{};  // bottom: malformed reference
  }
  return state.vars[static_cast<size_t>(arg.var)];
}

std::vector<AbstractValue> EvalInstruction(const Program& program,
                                           const Instruction& ins,
                                           const AbstractState& state) {
  std::vector<AbstractValue> args;
  args.reserve(ins.args.size());
  for (const Argument& a : ins.args) {
    args.push_back(ArgOperandValue(state, a));
  }
  return EvalWithArgs(program, ins, args);
}

AbstractState AnalyzeProgram(const Program& program,
                             const InstructionVisitor& visit) {
  AbstractState state;
  state.vars.resize(program.num_variables());
  // Straight-line SSA: every argument's producer precedes its use, so one
  // forward pass in pc order is the fixpoint.
  for (const Instruction& ins : program.instructions()) {
    InstructionFacts facts;
    facts.args.reserve(ins.args.size());
    for (const Argument& a : ins.args) {
      facts.args.push_back(ArgOperandValue(state, a));
    }
    facts.raw_results = EvalWithArgs(program, ins, facts.args);
    facts.merged_results = facts.raw_results;
    for (size_t i = 0; i < ins.results.size(); ++i) {
      int r = ins.results[i];
      if (r < 0 || static_cast<size_t>(r) >= state.vars.size()) continue;
      facts.merged_results[i] =
          MergeDeclared(facts.raw_results[i], program.variable(r));
      state.vars[static_cast<size_t>(r)] = facts.merged_results[i];
    }
    if (visit) visit(ins, facts);
  }
  return state;
}

PlanSummary SummarizeObservable(const Program& program) {
  PlanSummary summary;
  AnalyzeProgram(program, [&summary](const Instruction& ins,
                                     const InstructionFacts& facts) {
    const KernelSignature* sig =
        LookupKernelSignature(ins.module, ins.function);
    bool is_sink = sig != nullptr
                       ? sig->is_sink
                       : LooksLikeResultSink(ins.module, ins.function);
    if (!is_sink) return;
    for (size_t i = 0; i < facts.args.size(); ++i) {
      summary.columns.push_back(
          SinkColumn{ins.pc, ins.FullName(), i, facts.args[i]});
    }
  });
  return summary;
}

Status CheckSummaryEquivalence(const PlanSummary& before,
                               const PlanSummary& after,
                               const std::string& label) {
  if (before.columns.size() != after.columns.size()) {
    return Status::Internal(StrFormat(
        "%s changed the observable sink columns: %zu before, %zu after",
        label.c_str(), before.columns.size(), after.columns.size()));
  }
  for (size_t i = 0; i < before.columns.size(); ++i) {
    const SinkColumn& b = before.columns[i];
    const SinkColumn& a = after.columns[i];
    // Positional identity: passes renumber pcs, but they may not reorder,
    // retarget, or retype what the plan outputs.
    if (b.op != a.op || b.arg_index != a.arg_index) {
      return Status::Internal(StrFormat(
          "%s rewired sink column %zu: %s arg %zu became %s arg %zu",
          label.c_str(), i, b.op.c_str(), b.arg_index, a.op.c_str(),
          a.arg_index));
    }
    if (!b.value.CompatibleWith(a.value)) {
      return Status::Internal(StrFormat(
          "%s changed observable semantics of %s (pc=%d) arg %zu: "
          "before = %s, after = %s",
          label.c_str(), a.op.c_str(), a.pc, a.arg_index,
          b.value.ToString().c_str(), a.value.ToString().c_str()));
    }
  }
  return Status::OK();
}

}  // namespace stetho::analysis
