#ifndef STETHO_ANALYSIS_CHECKS_H_
#define STETHO_ANALYSIS_CHECKS_H_

#include <memory>
#include <vector>

#include "analysis/check.h"

namespace stetho::analysis {

/// --- The built-in check suite ---
///
/// Plan checks (need a mal::Program):
///   ssa-def-before-use      arguments reference in-range, already-defined vars
///   ssa-single-assignment   every variable has at most one defining pc
///   dead-instruction        pure instruction whose results are never read
///   kernel-signature        op exists; arity and BAT/scalar shapes match the
///                           kernel table (and the ModuleRegistry when given)
///   bat-lifetime            BAT registers produced by effectful instructions
///                           are consumed by someone (plan-only; the trace
///                           ordering half lives in
///                           trace-dependency-violation)
///   sink-order-key          result sinks carry a well-defined
///                           engine::ResultColumn::order key
///
/// Artifact checks:
///   dot-contract            pc N ↔ node "nN", statement text ↔ label, edges
///                           match dataflow dependencies (graph [+ program])
///   trace-conformance       one start/done pair per pc, monotonic clock,
///                           pc in range, stmt matches plan (trace [+ both])
///   trace-span-conformance  every profiler start/done pc pair is covered by
///                           exactly one kernel span in an exported platform
///                           trace, with matching thread id (trace + spans)
///   trace-sequence-gap      event sequence numbers are contiguous (holes =
///                           transport loss, warning), unique (repeats =
///                           duplicates, error), and monotone in file order
///                           (regressions = reordered delivery, note); the
///                           offline twin of net::StreamHealth (trace)
///
/// Happens-before schedule checks (analysis/hb.h replay of the trace
/// against the SSA def/use DAG; see checks_hb.cc):
///   trace-dependency-violation  no start event precedes any producer's done
///                               event; also flags inverted intervals and
///                               surplus start/done pairs (program + trace)
///   trace-write-race            no two HB-unordered instructions touch one
///                               BAT variable with a writer among them
///                               (program + trace)
///   span-interleaving           kernel spans sharing one query-local tid
///                               nest; partial overlap means broken slot
///                               accounting (spans)
///   trace-clock-monotonicity    per-thread timestamps never regress in
///                               emission order (trace)
///   schedule-serialization      note: plan admits width >= 2 and dop >= 2
///                               was configured, yet the observed schedule
///                               is fully serial (program + trace)
///
/// Abstract-interpretation checks (analysis/absint.h over the transfer
/// functions in analysis/signatures.cc; all need a mal::Program):
///   type-flow                   computed element types match declarations
///                               and per-slot type constraints (strings,
///                               booleans, append/pack homogeneity)
///   cardinality-contradiction   equal-cardinality argument pairs and
///                               candidate⊆column relations admit at least
///                               one common row count
///   guaranteed-empty            a BAT register is provably always empty
///   missed-constant-fold        a pure calc.* over constant operands that
///                               MakeConstantFoldingPass would remove
///   order-key-propagation       candidate-list slots receive ascending,
///                               NULL-free bat[:oid] values
///
/// Memory-lifetime checks (analysis/liveness.h liveness + footprint model;
/// see checks_memory.cc):
///   memory-blowup               predicted sequential peak exceeds
///                               STETHO_MEM_BUDGET, or blows up relative to
///                               the bytes bound from base tables (program)
///   live-range-bloat            a heavy BAT stays live far past the point
///                               where its last consumer could legally run
///                               (program)
///   footprint-conformance       the static peak bound dominates the
///                               engine-recorded rss peak and stays within
///                               2x of it (program + trace)
///
/// Cross-run performance checks (analysis/perfdiff.h alignment against an
/// obs::ProfileStore baseline; see checks_perf.cc):
///   trace-perf-regression       a recorded trace's per-pc durations (and
///                               end-to-end makespan) regress against the
///                               stored baseline profile of the same plan
///                               shape: >= 2x median is an error, >= 1.5x a
///                               warning, both gated on the delta clearing
///                               max(4*MAD, 10us); a missing baseline for
///                               the shape is a note (trace + profile)

std::unique_ptr<Check> MakeDefBeforeUseCheck();
std::unique_ptr<Check> MakeSingleAssignmentCheck();
std::unique_ptr<Check> MakeDeadInstructionCheck();
std::unique_ptr<Check> MakeKernelSignatureCheck();
std::unique_ptr<Check> MakeBatLifetimeCheck();
std::unique_ptr<Check> MakeSinkOrderKeyCheck();
std::unique_ptr<Check> MakeDotContractCheck();
std::unique_ptr<Check> MakeTraceConformanceCheck();
std::unique_ptr<Check> MakeTraceSpanConformanceCheck();
std::unique_ptr<Check> MakeTraceSequenceGapCheck();
std::unique_ptr<Check> MakeTraceDependencyViolationCheck();
std::unique_ptr<Check> MakeTraceWriteRaceCheck();
std::unique_ptr<Check> MakeSpanInterleavingCheck();
std::unique_ptr<Check> MakeTraceClockMonotonicityCheck();
std::unique_ptr<Check> MakeScheduleSerializationCheck();
std::unique_ptr<Check> MakeTypeFlowCheck();
std::unique_ptr<Check> MakeCardinalityContradictionCheck();
std::unique_ptr<Check> MakeGuaranteedEmptyCheck();
std::unique_ptr<Check> MakeMissedConstantFoldCheck();
std::unique_ptr<Check> MakeOrderKeyPropagationCheck();
std::unique_ptr<Check> MakeMemoryBlowupCheck();
std::unique_ptr<Check> MakeLiveRangeBloatCheck();
std::unique_ptr<Check> MakeFootprintConformanceCheck();
std::unique_ptr<Check> MakeTracePerfRegressionCheck();

/// All built-in checks, in the order listed above.
std::vector<std::unique_ptr<Check>> AllChecks();

}  // namespace stetho::analysis

#endif  // STETHO_ANALYSIS_CHECKS_H_
