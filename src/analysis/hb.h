#ifndef STETHO_ANALYSIS_HB_H_
#define STETHO_ANALYSIS_HB_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "mal/program.h"
#include "profiler/event.h"

namespace stetho::analysis {

/// Happens-before analysis over one executed plan: the static SSA def/use
/// DAG joined with the observed profiler trace. The trace is replayed
/// through per-thread vector clocks (FastTrack-style, applied at the
/// dataflow-plan level instead of the memory level): an event's clock
/// captures everything that provably happened before it under
///   (a) admission-slot order — events stamped with the same trace thread
///       id (the query-local admission slot) are totally ordered by the
///       profiler's global sequence number, and
///   (b) dependency edges — a producer's done event synchronizes with each
///       consumer's start event, but ONLY when the trace actually shows the
///       done preceding the start; an edge the observed schedule violated
///       contributes no ordering (it did not synchronize), which is exactly
///       what lets the write-race check see the two accesses as concurrent.
///
/// The same replay extracts the DAG critical path weighted by observed
/// kernel durations, so one pass yields both the correctness findings
/// (checks_hb.cc) and the makespan-vs-critical-path accounting surfaced by
/// `mal_lint --schedule` and the `stetho_hb_*` metrics.

/// Vector clock over the dense thread index space of one trace. Component
/// `t` counts events replayed on thread index `t`.
class VectorClock {
 public:
  VectorClock() = default;
  explicit VectorClock(size_t num_threads) : ticks_(num_threads, 0) {}

  void Tick(size_t t) { ++ticks_[t]; }
  /// Componentwise max: after Join(o), *this dominates both inputs.
  void Join(const VectorClock& other);
  /// True when every component of *this is <= the matching component of
  /// `other` — the "happened before or equals" test. Clocks of different
  /// width compare as if padded with zeros.
  bool LessEq(const VectorClock& other) const;

  int64_t tick(size_t t) const {
    return t < ticks_.size() ? ticks_[t] : 0;
  }
  size_t size() const { return ticks_.size(); }
  bool empty() const { return ticks_.empty(); }

 private:
  std::vector<int64_t> ticks_;
};

/// Observed execution interval of one pc, joined from its first start/done
/// event pair. Indexes are positions in the event-sequence order (the
/// profiler's global `event` number restores emission order after UDP
/// reordering); -1 means the event was never seen.
struct PcExecution {
  int pc = -1;
  int start_thread = -1;
  int done_thread = -1;
  int64_t start_index = -1;
  int64_t done_index = -1;
  int64_t start_us = 0;
  int64_t done_us = 0;
  int64_t usec = 0;  ///< duration reported by the done event
  VectorClock start_vc;
  VectorClock done_vc;

  bool started() const { return start_index >= 0; }
  bool completed() const { return done_index >= 0; }
};

/// One dependency edge the observed schedule did not respect: consumer `pc`
/// started although producer `producer` had not finished (or never finished
/// at all — `producer_done_missing`).
struct DependencyViolation {
  int pc = -1;
  int producer = -1;
  bool producer_done_missing = false;
};

struct CriticalPathStep {
  int pc = -1;
  int64_t usec = 0;
};

/// Everything one replay learns about the schedule.
struct ScheduleReport {
  /// Per-pc observed intervals, indexed by pc (size == program size).
  std::vector<PcExecution> executions;
  /// Dependency edges violated by the observed event order.
  std::vector<DependencyViolation> violations;
  /// Pcs whose first done event precedes their first start event — an
  /// interval running backwards (swapped or duplicated events).
  std::vector<int> inverted;
  /// Pcs with surplus start or done events (each listed once). The replay
  /// models the first pair only; extra executions break the one-pair
  /// contract the happens-before model is built on.
  std::vector<int> duplicates;
  /// Distinct trace thread ids, in dense-index order (vector clock space).
  std::vector<int> threads;

  int64_t events = 0;          ///< trace events replayed
  double avg_indegree = 0;     ///< dependency edges per instruction
  /// Width of the largest longest-path layer of the DAG — the number of
  /// instructions the plan admits running concurrently.
  int plan_width = 0;
  /// Max pcs simultaneously open (started, not done) in event order.
  int max_observed_concurrency = 0;
  int completed_executions = 0;

  /// Critical path through the def/use DAG, each node weighted by its
  /// observed duration (0 for instructions the trace never completed),
  /// rendered source-to-sink. Empty for an empty plan.
  std::vector<CriticalPathStep> critical_path;
  int64_t critical_path_usec = 0;
  /// Last done timestamp minus first start timestamp (0 when nothing ran).
  int64_t makespan_usec = 0;
  /// makespan - critical path: scheduling headroom the run left on the
  /// table. Negative slack means the trace clock and durations disagree.
  int64_t slack_usec = 0;
};

/// Replays `trace` against `program` and returns the schedule report. Cost
/// is O(events * avg-indegree): one pass over the sorted events, each start
/// joining its producers' clocks. Also updates the `stetho_hb_*` metrics in
/// obs::Registry::Default() (replays/events/violations counters plus
/// critical-path, makespan, and slack gauges).
ScheduleReport AnalyzeSchedule(const mal::Program& program,
                               const std::vector<profiler::TraceEvent>& trace);

/// True when `a`'s completion happens-before `b`'s start under the replayed
/// relation. Incomplete executions are unordered against everything.
bool HappensBefore(const PcExecution& a, const PcExecution& b);

/// Human-readable schedule report (mal_lint --schedule): makespan, critical
/// path with per-step durations and statements, slack, plan width vs
/// observed concurrency.
std::string FormatScheduleReport(const ScheduleReport& report,
                                 const mal::Program& program);

}  // namespace stetho::analysis

#endif  // STETHO_ANALYSIS_HB_H_
