#include <algorithm>
#include <map>
#include <vector>

#include "analysis/checks.h"
#include "analysis/emitter.h"
#include "common/string_util.h"

namespace stetho::analysis {

using profiler::TraceEvent;

namespace {

/// How many individual findings a single run reports before collapsing the
/// rest into one summary diagnostic (a badly torn trace should not produce
/// thousands of lines).
constexpr int kMaxDetailed = 8;

// ---------------------------------------------------------------------------
// trace-sequence-gap
// ---------------------------------------------------------------------------

/// The profiler numbers delivered events contiguously (profiler/event.h):
/// a recorded trace with holes lost events in transport or capture, one
/// with repeats ingested duplicates, and one whose file order regresses
/// was reordered in flight (legitimate for UDP captures, hence a note).
/// This is the offline twin of the live net::StreamHealth accountant.
class TraceSequenceGapCheck final : public Check {
 public:
  const char* id() const override { return "trace-sequence-gap"; }
  const char* description() const override {
    return "recorded event sequence numbers are contiguous, unique, and "
           "monotone (holes = transport loss, repeats = duplicates)";
  }
  unsigned needs() const override { return kNeedsTrace; }

  void Run(const CheckContext& ctx,
           std::vector<Diagnostic>* out) const override {
    Emitter emit(id(), out);
    const std::vector<TraceEvent>& events = *ctx.trace;
    if (events.empty()) return;

    // Duplicates: every sequence number appears exactly once.
    std::map<int64_t, int> count;
    int64_t min_seq = events.front().event;
    int64_t max_seq = events.front().event;
    int64_t regressions = 0;
    int64_t prev_max = events.front().event;
    for (size_t i = 0; i < events.size(); ++i) {
      const TraceEvent& e = events[i];
      ++count[e.event];
      min_seq = std::min(min_seq, e.event);
      max_seq = std::max(max_seq, e.event);
      if (i > 0) {
        if (e.event < prev_max) ++regressions;
        prev_max = std::max(prev_max, e.event);
      }
    }
    int dup_reported = 0;
    int64_t dup_total = 0;
    for (const auto& [seq, n] : count) {
      if (n <= 1) continue;
      dup_total += n - 1;
      if (dup_reported < kMaxDetailed) {
        ++dup_reported;
        emit.Emit(Severity::kError, -1, -1,
                  StrFormat("sequence number %lld appears %d times",
                            static_cast<long long>(seq), n),
                  "duplicated delivery or a trace file merged with itself; "
                  "the profiler assigns each delivered event a unique "
                  "sequence number");
      }
    }
    if (dup_total > dup_reported) {
      emit.Emit(Severity::kError, -1, -1,
                StrFormat("%lld duplicated sequence numbers in total (first "
                          "%d reported individually)",
                          static_cast<long long>(dup_total), dup_reported),
                "");
    }

    // Gaps: the span [min, max] should be fully populated.
    const int64_t expected = max_seq - min_seq + 1;
    const int64_t missing = expected - static_cast<int64_t>(count.size());
    if (missing > 0) {
      std::string holes;
      int listed = 0;
      for (int64_t q = min_seq; q <= max_seq && listed < kMaxDetailed; ++q) {
        if (count.find(q) != count.end()) continue;
        holes += holes.empty() ? "" : ", ";
        holes += StrFormat("%lld", static_cast<long long>(q));
        ++listed;
      }
      emit.Emit(
          Severity::kWarning, -1, -1,
          StrFormat("%lld of %lld sequence numbers missing (first holes: "
                    "%s)",
                    static_cast<long long>(missing),
                    static_cast<long long>(expected), holes.c_str()),
          "events were lost between profiler emission and this capture "
          "(UDP drop, sink overflow, or a truncated file); per-pc pairing "
          "and byte accounting downstream run on partial data");
    }

    // Regressions in file order: reordered delivery. Legitimate for a raw
    // UDP capture, so a note — but replays that assume emission order
    // (pair-sequence coloring, HB clocks) should sort by `event` first.
    if (regressions > 0) {
      emit.Emit(Severity::kNote, -1, -1,
                StrFormat("%lld events recorded out of emission order",
                          static_cast<long long>(regressions)),
                "sort by the event field before order-sensitive analysis, "
                "or record via a sink that restores order");
    }
  }
};

}  // namespace

std::unique_ptr<Check> MakeTraceSequenceGapCheck() {
  return std::make_unique<TraceSequenceGapCheck>();
}

}  // namespace stetho::analysis
