#ifndef STETHO_ANALYSIS_RUNNER_H_
#define STETHO_ANALYSIS_RUNNER_H_

#include <memory>
#include <string>
#include <vector>

#include "analysis/check.h"
#include "common/status.h"

namespace stetho::analysis {

/// Runs a suite of checks over one CheckContext and aggregates their
/// diagnostics. A Runner is immutable after construction and its checks are
/// stateless, so one instance (Runner::Default()) is shared by the optimizer
/// pipeline, mal_lint, and the tests.
class Runner {
 public:
  Runner() = default;
  Runner(Runner&&) = default;
  Runner& operator=(Runner&&) = default;

  void Add(std::unique_ptr<Check> check);

  size_t size() const { return checks_.size(); }
  const std::vector<std::unique_ptr<Check>>& checks() const { return checks_; }

  /// Runs every check whose needs() are satisfied by `context`; checks with
  /// missing inputs are skipped, not failed. Diagnostics come back sorted:
  /// errors first, then by pc, check id, and variable.
  std::vector<Diagnostic> Run(const CheckContext& context) const;

  /// A Runner loaded with AllChecks().
  static Runner MakeDefault();

  /// Shared process-wide default suite.
  static const Runner& Default();

 private:
  std::vector<std::unique_ptr<Check>> checks_;
};

/// Renders diagnostics one per line for terminals; "" for an empty list.
std::string FormatDiagnostics(const std::vector<Diagnostic>& diagnostics);

/// Renders diagnostics as a JSON array of objects with keys `severity`,
/// `check`, `pc`, `var`, `message`, `fix_hint` (mal_lint --json).
std::string DiagnosticsToJson(const std::vector<Diagnostic>& diagnostics);

/// Renders diagnostics as a SARIF 2.1.0 log (mal_lint --sarif) so editors
/// and CI annotators can ingest lint findings. One run with driver
/// "mal_lint"; each unique check id becomes a rule (described from the
/// default suite when known) and every result's `ruleIndex` points at its
/// rule's position in that array. Regions are 1-based per §3.30: pc N
/// renders as startLine N + 1 (plans are one statement per line) with
/// startColumn 1. `artifact_uri` names the analyzed file ("" for in-memory
/// plans). Output is deterministic for golden-file comparison.
std::string DiagnosticsToSarif(const std::vector<Diagnostic>& diagnostics,
                               const std::string& artifact_uri);

/// Stable fingerprint for baseline suppression (mal_lint --baseline):
/// check id + pc + the message with every digit run collapsed to "#", so a
/// finding keeps its identity when counts, timestamps, or variable numbers
/// in the message drift between runs.
std::string DiagnosticFingerprint(const Diagnostic& diagnostic);

/// Renders diagnostics as a baseline file: one fingerprint per line,
/// deduplicated, sorted (mal_lint --write-baseline).
std::string FormatBaseline(const std::vector<Diagnostic>& diagnostics);

/// Parses a baseline file: one fingerprint per line; blank lines and
/// '#'-prefixed comment lines are ignored.
std::vector<std::string> ParseBaseline(const std::string& text);

/// Removes diagnostics whose fingerprint appears in `baseline`, so CI gates
/// on new findings only.
std::vector<Diagnostic> ApplyBaseline(std::vector<Diagnostic> diagnostics,
                                      const std::vector<std::string>& baseline);

/// True when any diagnostic is at or above `threshold` — the
/// mal_lint --fail-on exit-code test.
bool AnyAtOrAbove(const std::vector<Diagnostic>& diagnostics,
                  Severity threshold);

/// OkStatus when no diagnostic is an error; otherwise an Internal status
/// naming `context`, the first error, and how many findings follow. This is
/// what the optimizer pipeline returns when a pass corrupts the plan.
Status DiagnosticsToStatus(const std::vector<Diagnostic>& diagnostics,
                           const std::string& context);

}  // namespace stetho::analysis

#endif  // STETHO_ANALYSIS_RUNNER_H_
