#ifndef STETHO_ANALYSIS_DOMAIN_H_
#define STETHO_ANALYSIS_DOMAIN_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "mal/program.h"
#include "storage/value.h"

namespace stetho::analysis {

/// Closed integer interval [lo, hi]; hi == kUnbounded means "no upper
/// bound". Used for BAT cardinalities: every transfer function keeps the
/// invariant that the runtime row count lies inside the interval, so two
/// disjoint intervals for the same value are a provable contradiction.
struct Interval {
  /// Sentinel upper bound (int64 max); never a real row count.
  static constexpr int64_t kUnbounded = 0x7fffffffffffffff;

  int64_t lo = 0;
  int64_t hi = kUnbounded;

  static Interval Exact(int64_t n) { return Interval{n, n}; }
  static Interval Range(int64_t lo, int64_t hi) { return Interval{lo, hi}; }
  static Interval Unknown() { return Interval{0, kUnbounded}; }

  bool is_exact() const { return lo == hi; }
  bool is_unknown() const { return lo == 0 && hi == kUnbounded; }
  bool Contains(int64_t n) const { return lo <= n && n <= hi; }
  bool Overlaps(const Interval& other) const {
    return lo <= other.hi && other.lo <= hi;
  }

  /// Union hull (lattice join).
  Interval Join(const Interval& other) const;
  /// Intersection (lattice meet); empty results are returned as an inverted
  /// interval — test with Overlaps() before calling when that matters.
  Interval Meet(const Interval& other) const;

  /// [a.lo + b.lo, a.hi + b.hi] with saturation at kUnbounded.
  static Interval SaturatingAdd(const Interval& a, const Interval& b);
  /// [0, a.hi * b.hi] with saturation (join fan-out bound).
  static Interval SaturatingMulUpper(const Interval& a, const Interval& b);

  /// "[3, 3]", "[0, 16]", "[0, *]".
  std::string ToString() const;

  bool operator==(const Interval& other) const = default;
};

/// Three-valued logic for per-register facts the analysis may or may not be
/// able to prove (NULL-freedom, ascending order).
enum class Tri {
  kUnknown = 0,
  kFalse,
  kTrue,
};

const char* TriName(Tri t);

/// Three-valued OR: kTrue wins, then kUnknown, then kFalse.
Tri TriOr(Tri a, Tri b);

/// One point in the abstract lattice tracked per SSA register: shape,
/// element type, cardinality, NULL-freedom, ascending order, and (for
/// scalars) a known constant value. The default-constructed value is bottom
/// ("never assigned"); Top() is the all-unknown element.
struct AbstractValue {
  /// False until a producing instruction has been evaluated.
  bool defined = false;
  /// Scalar register vs BAT register.
  Tri is_bat = Tri::kUnknown;
  /// Element type of a BAT / type of a scalar; kNull means unknown.
  storage::DataType elem = storage::DataType::kNull;
  /// BAT row count (scalars use [1, 1]).
  Interval card = Interval::Unknown();
  /// kFalse: provably NULL-free. kTrue: provably contains a NULL.
  Tri nullable = Tri::kUnknown;
  /// kTrue: provably ascending (candidate-list order). kFalse: provably not.
  Tri sorted = Tri::kUnknown;
  /// Known constant value (scalar registers only).
  std::optional<storage::Value> constant;

  static AbstractValue Top();
  /// Abstraction of an inline constant operand.
  static AbstractValue FromConstant(const storage::Value& v);
  /// Abstraction of a variable's declared MAL type (plus its optional
  /// cardinality annotation).
  static AbstractValue FromDeclared(const mal::Variable& var);

  bool elem_known() const { return elem != storage::DataType::kNull; }

  /// Lattice join (least upper bound): keeps only facts both sides agree on.
  AbstractValue Join(const AbstractValue& other) const;

  /// Non-empty meet: false means no runtime value satisfies both
  /// descriptions — the two CANNOT describe the same register. This is the
  /// pass-equivalence test: an optimizer pass that turns a sink operand's
  /// abstract value into something incompatible changed observable
  /// semantics.
  bool CompatibleWith(const AbstractValue& other) const;

  /// "bat[:lng] card=[0, 16] null=no sorted=yes" / "const 5:lng".
  std::string ToString() const;

  bool operator==(const AbstractValue& other) const = default;
};

/// Inputs handed to a kernel transfer function (see
/// KernelSignature::transfer): the instruction plus the abstract value of
/// every argument, in order. All pointers are borrowed.
struct TransferContext {
  const mal::Program* program = nullptr;
  const mal::Instruction* ins = nullptr;
  const std::vector<AbstractValue>* args = nullptr;
};

/// Refines the per-result abstract values (pre-seeded with the signature's
/// generic shape defaults) for one kernel. Registered alongside the shape
/// entries in analysis/signatures.cc so the shape table and the transfer
/// table stay one table.
using AbstractTransferFn = void (*)(const TransferContext& ctx,
                                    std::vector<AbstractValue>* results);

}  // namespace stetho::analysis

#endif  // STETHO_ANALYSIS_DOMAIN_H_
