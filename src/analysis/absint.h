#ifndef STETHO_ANALYSIS_ABSINT_H_
#define STETHO_ANALYSIS_ABSINT_H_

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "analysis/domain.h"
#include "analysis/signatures.h"
#include "common/status.h"
#include "mal/program.h"

namespace stetho::analysis {

/// Abstract interpreter over MAL plans: assigns every SSA register an
/// AbstractValue (analysis/domain.h) by running the per-kernel transfer
/// functions registered in the signature table (analysis/signatures.cc) over
/// the plan in pc order. Plans are straight-line SSA, so one forward pass
/// reaches the fixpoint. The results feed the absint-based lint checks
/// (checks_absint.cc) and the optimizer's pass-equivalence differ.

/// One abstract value per program variable, indexed by variable id.
/// Registers no instruction assigns stay bottom (defined == false).
struct AbstractState {
  std::vector<AbstractValue> vars;
};

/// Abstract value of one instruction operand: constants are abstracted
/// exactly, variables read the current state (bottom when out of range or
/// not yet assigned — malformed plans analyze without crashing).
AbstractValue ArgOperandValue(const AbstractState& state,
                              const mal::Argument& arg);

/// Raw transfer result for one instruction: per-result values seeded from
/// the signature's shape kinds and refined by its transfer function, WITHOUT
/// folding in the results' declared MAL types. The type-flow check compares
/// this raw view against the declarations; AnalyzeProgram merges the two.
std::vector<AbstractValue> EvalInstruction(const mal::Program& program,
                                           const mal::Instruction& ins,
                                           const AbstractState& state);

/// Everything known about one instruction as the analysis steps over it.
/// `merged_results` is what the state records: the raw transfer result
/// refined by each result's declared type and cardinality annotation.
struct InstructionFacts {
  std::vector<AbstractValue> args;
  std::vector<AbstractValue> raw_results;
  std::vector<AbstractValue> merged_results;
};

using InstructionVisitor =
    std::function<void(const mal::Instruction&, const InstructionFacts&)>;

/// Runs the analysis over the whole plan, invoking `visit` (when non-null)
/// on every instruction with its facts, and returns the final state.
AbstractState AnalyzeProgram(const mal::Program& program,
                             const InstructionVisitor& visit = nullptr);

/// One observable output slot: argument `arg_index` of the result-sink
/// instruction at `pc`. Identity across optimizer passes is positional
/// (op + arg_index in sink order) because passes renumber pcs.
struct SinkColumn {
  int pc = -1;
  std::string op;        ///< "module.function" of the sink
  size_t arg_index = 0;  ///< operand position within the sink
  AbstractValue value;
};

/// Abstract summary of everything a plan makes observable: the values
/// reaching result-sink operands, in plan order.
struct PlanSummary {
  std::vector<SinkColumn> columns;
};

PlanSummary SummarizeObservable(const mal::Program& program);

/// Pass-equivalence test: OkStatus when `after` is a plausible rewrite of
/// `before` (same sink columns, each column's abstract values compatible —
/// AbstractValue::CompatibleWith). Otherwise an Internal status naming
/// `label` (the pass), the column, and both abstract summaries. The
/// optimizer Pipeline calls this around every pass; a pass that narrows a
/// column to a DIFFERENT value than before provably changed query results.
Status CheckSummaryEquivalence(const PlanSummary& before,
                               const PlanSummary& after,
                               const std::string& label);

}  // namespace stetho::analysis

#endif  // STETHO_ANALYSIS_ABSINT_H_
