#include "analysis/perfdiff.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "analysis/hb.h"
#include "common/string_util.h"

namespace stetho::analysis {
namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

void MixString(uint64_t* h, const std::string& s) {
  for (char c : s) {
    *h ^= static_cast<unsigned char>(c);
    *h *= kFnvPrime;
  }
  *h ^= '\n';
  *h *= kFnvPrime;
}

/// Per-pc digest of one trace: first start/done pair plus statement text.
struct PcDigest {
  int64_t start_us = -1;
  int64_t done_us = -1;
  int64_t usec = -1;  ///< first done event's duration; -1 = never completed
  int64_t rss_bytes = 0;
  std::string stmt;
};

std::map<int, PcDigest> DigestTrace(
    const std::vector<profiler::TraceEvent>& trace) {
  std::map<int, PcDigest> digests;
  for (const profiler::TraceEvent& event : trace) {
    if (event.pc < 0) continue;
    PcDigest& digest = digests[event.pc];
    if (digest.stmt.empty() && !event.stmt.empty()) digest.stmt = event.stmt;
    if (event.state == profiler::EventState::kStart) {
      if (digest.start_us < 0) digest.start_us = event.time_us;
    } else if (event.state == profiler::EventState::kDone) {
      if (digest.done_us < 0) {
        digest.done_us = event.time_us;
        digest.usec = std::max<int64_t>(0, event.usec);
        digest.rss_bytes = event.rss_bytes;
      }
    }
  }
  return digests;
}

int64_t Makespan(const std::map<int, PcDigest>& digests) {
  int64_t first = -1;
  int64_t last = -1;
  for (const auto& [pc, digest] : digests) {
    if (digest.start_us >= 0 && (first < 0 || digest.start_us < first)) {
      first = digest.start_us;
    }
    if (digest.done_us >= 0 && digest.done_us > last) last = digest.done_us;
  }
  return first >= 0 && last >= first ? last - first : 0;
}

std::string Truncate(const std::string& s, size_t max) {
  if (s.size() <= max) return s;
  return s.substr(0, max - 3) + "...";
}

}  // namespace

uint64_t PlanShapeHash(const mal::Program& program) {
  uint64_t h = kFnvOffset;
  for (const mal::Instruction& ins : program.instructions()) {
    MixString(&h, program.InstructionToString(ins));
  }
  return h;
}

uint64_t TraceShapeHash(const std::vector<profiler::TraceEvent>& trace) {
  std::map<int, std::string> stmts;  // pc-ascending
  for (const profiler::TraceEvent& event : trace) {
    if (event.pc < 0 || event.stmt.empty()) continue;
    stmts.emplace(event.pc, event.stmt);  // first text per pc wins
  }
  uint64_t h = kFnvOffset;
  for (const auto& [pc, stmt] : stmts) MixString(&h, stmt);
  return h;
}

obs::QueryObservation ObservationFromTrace(
    const std::vector<profiler::TraceEvent>& trace) {
  obs::QueryObservation observation;
  observation.shape_hash = TraceShapeHash(trace);

  std::map<int, PcDigest> digests = DigestTrace(trace);
  observation.total_usec = Makespan(digests);
  if (!digests.empty()) {
    observation.plan_size =
        static_cast<size_t>(digests.rbegin()->first) + 1;
  }

  // Observed concurrency: sweep the first start/done interval of every pc
  // in time order and record, at each start, how many intervals are open
  // (the starting one included). Ties break start-before-done so two
  // instructions meeting at one timestamp count as overlapped — the
  // generous reading a skew detector wants.
  struct Edge {
    int64_t time_us;
    int kind;  // 0 = start, 1 = done
    int pc;
  };
  std::vector<Edge> edges;
  for (const auto& [pc, digest] : digests) {
    if (digest.start_us < 0) continue;
    edges.push_back({digest.start_us, 0, pc});
    if (digest.done_us >= digest.start_us) {
      edges.push_back({digest.done_us, 1, pc});
    }
  }
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    if (a.time_us != b.time_us) return a.time_us < b.time_us;
    if (a.kind != b.kind) return a.kind < b.kind;
    return a.pc < b.pc;
  });
  std::map<int, int> concurrency;
  int open = 0;
  for (const Edge& edge : edges) {
    if (edge.kind == 0) {
      ++open;
      concurrency[edge.pc] = open;
    } else {
      open = std::max(0, open - 1);
    }
  }

  for (const auto& [pc, digest] : digests) {
    if (digest.usec < 0) continue;  // never completed: nothing to fold
    obs::PcSample sample;
    sample.pc = pc;
    sample.usec = digest.usec;
    sample.bytes = std::max<int64_t>(0, digest.rss_bytes);
    auto it = concurrency.find(pc);
    sample.concurrency = it != concurrency.end() ? it->second : 1;
    observation.pcs.push_back(sample);
  }
  return observation;
}

TraceDiff DiffTraces(const std::vector<profiler::TraceEvent>& a,
                     const std::vector<profiler::TraceEvent>& b,
                     const mal::Program* plan) {
  TraceDiff diff;
  diff.a_hash = TraceShapeHash(a);
  diff.b_hash = TraceShapeHash(b);
  diff.shapes_match = diff.a_hash == diff.b_hash;

  std::map<int, PcDigest> da = DigestTrace(a);
  std::map<int, PcDigest> db = DigestTrace(b);
  diff.a_makespan_usec = Makespan(da);
  diff.b_makespan_usec = Makespan(db);

  std::vector<bool> critical_a;
  std::vector<bool> critical_b;
  if (plan != nullptr) {
    ScheduleReport ra = AnalyzeSchedule(*plan, a);
    ScheduleReport rb = AnalyzeSchedule(*plan, b);
    diff.a_critical_usec = ra.critical_path_usec;
    diff.b_critical_usec = rb.critical_path_usec;
    critical_a.assign(plan->size(), false);
    critical_b.assign(plan->size(), false);
    for (const CriticalPathStep& step : ra.critical_path) {
      if (step.pc >= 0 && static_cast<size_t>(step.pc) < critical_a.size()) {
        critical_a[static_cast<size_t>(step.pc)] = true;
      }
    }
    for (const CriticalPathStep& step : rb.critical_path) {
      if (step.pc >= 0 && static_cast<size_t>(step.pc) < critical_b.size()) {
        critical_b[static_cast<size_t>(step.pc)] = true;
      }
    }
  }

  for (const auto& [pc, digest_a] : da) {
    auto it = db.find(pc);
    if (it == db.end() || it->second.usec < 0 || digest_a.usec < 0) {
      if (digest_a.usec >= 0 && (it == db.end() || it->second.usec < 0)) {
        diff.only_a.push_back(pc);
      }
      continue;
    }
    const PcDigest& digest_b = it->second;
    PcDelta delta;
    delta.pc = pc;
    delta.stmt = !digest_b.stmt.empty() ? digest_b.stmt : digest_a.stmt;
    delta.a_usec = digest_a.usec;
    delta.b_usec = digest_b.usec;
    delta.delta_usec = digest_b.usec - digest_a.usec;
    delta.ratio = static_cast<double>(digest_b.usec) /
                  static_cast<double>(std::max<int64_t>(1, digest_a.usec));
    if (static_cast<size_t>(pc) < critical_a.size()) {
      delta.critical_a = critical_a[static_cast<size_t>(pc)];
      delta.critical_b = critical_b[static_cast<size_t>(pc)];
    }
    diff.deltas.push_back(std::move(delta));
  }
  for (const auto& [pc, digest_b] : db) {
    if (digest_b.usec < 0) continue;
    auto it = da.find(pc);
    if (it == da.end() || it->second.usec < 0) diff.only_b.push_back(pc);
  }
  std::sort(diff.deltas.begin(), diff.deltas.end(),
            [](const PcDelta& x, const PcDelta& y) {
              const int64_t ax = std::abs(x.delta_usec);
              const int64_t ay = std::abs(y.delta_usec);
              if (ax != ay) return ax > ay;
              return x.pc < y.pc;
            });
  return diff;
}

std::string FormatTraceDiff(const TraceDiff& diff) {
  std::string out = "== trace diff ==\n";
  if (diff.shapes_match) {
    out += StrFormat("plan shape: match (%016llx)\n",
                     static_cast<unsigned long long>(diff.a_hash));
  } else {
    out += StrFormat(
        "plan shape: MISMATCH (a=%016llx b=%016llx) — per-pc alignment is "
        "best-effort\n",
        static_cast<unsigned long long>(diff.a_hash),
        static_cast<unsigned long long>(diff.b_hash));
  }
  const int64_t makespan_delta = diff.b_makespan_usec - diff.a_makespan_usec;
  out += StrFormat(
      "makespan: %lldus -> %lldus  (%+lldus, %.2fx)\n",
      static_cast<long long>(diff.a_makespan_usec),
      static_cast<long long>(diff.b_makespan_usec),
      static_cast<long long>(makespan_delta),
      static_cast<double>(diff.b_makespan_usec) /
          static_cast<double>(std::max<int64_t>(1, diff.a_makespan_usec)));
  if (diff.a_critical_usec >= 0 && diff.b_critical_usec >= 0) {
    out += StrFormat(
        "critical path: %lldus -> %lldus  (%+lldus, %.2fx)\n",
        static_cast<long long>(diff.a_critical_usec),
        static_cast<long long>(diff.b_critical_usec),
        static_cast<long long>(diff.b_critical_usec - diff.a_critical_usec),
        static_cast<double>(diff.b_critical_usec) /
            static_cast<double>(std::max<int64_t>(1, diff.a_critical_usec)));
  }
  constexpr size_t kTop = 16;
  out += StrFormat("matched pcs: %zu (top %zu by |delta|)\n",
                   diff.deltas.size(), std::min(kTop, diff.deltas.size()));
  for (size_t i = 0; i < diff.deltas.size() && i < kTop; ++i) {
    const PcDelta& d = diff.deltas[i];
    out += StrFormat("  pc %-4d %8lldus -> %8lldus  (%+lldus, %.2fx)",
                     d.pc, static_cast<long long>(d.a_usec),
                     static_cast<long long>(d.b_usec),
                     static_cast<long long>(d.delta_usec), d.ratio);
    if (d.critical_a || d.critical_b) {
      out += StrFormat(" [critical:%s%s]", d.critical_a ? "a" : "",
                       d.critical_b ? "b" : "");
    }
    if (!d.stmt.empty()) out += "  " + Truncate(d.stmt, 56);
    out += '\n';
  }
  auto list_pcs = [&out](const char* label, const std::vector<int>& pcs) {
    out += label;
    if (pcs.empty()) {
      out += " none\n";
      return;
    }
    for (size_t i = 0; i < pcs.size() && i < 32; ++i) {
      out += StrFormat(" %d", pcs[i]);
    }
    if (pcs.size() > 32) out += StrFormat(" ... (%zu total)", pcs.size());
    out += '\n';
  };
  list_pcs("pcs only in a:", diff.only_a);
  list_pcs("pcs only in b:", diff.only_b);
  return out;
}

}  // namespace stetho::analysis
