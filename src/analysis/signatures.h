#ifndef STETHO_ANALYSIS_SIGNATURES_H_
#define STETHO_ANALYSIS_SIGNATURES_H_

#include <string>
#include <utility>
#include <vector>

#include "analysis/domain.h"
#include "storage/value.h"

namespace stetho::analysis {

/// Static shape of one MAL register (engine::RegisterValue is either a
/// scalar or a BAT; kAny admits both).
enum class ValueKind {
  kAny = 0,
  kScalar,
  kBat,
};

const char* ValueKindName(ValueKind kind);

/// Declared shape of one built-in kernel, mirroring the ExpectArity /
/// ArgBat / ArgScalar contract its implementation enforces at run time
/// (src/engine/kernels_*.cc). The lint checks plans against this table so
/// shape bugs surface before execution.
struct KernelSignature {
  /// Kind constraint per positional argument (size == arity) for
  /// fixed-arity kernels. Empty for variadic kernels.
  std::vector<ValueKind> args;
  /// Kind constraint per result register.
  std::vector<ValueKind> results;
  /// Variadic kernels (io.print, mat.pack): minimum argument count, and the
  /// kind every argument must satisfy. variadic == false means arity is
  /// exactly args.size().
  bool variadic = false;
  int min_args = 0;
  ValueKind variadic_kind = ValueKind::kAny;
  /// At least one argument must be a BAT (batcalc broadcast semantics).
  bool needs_bat_arg = false;
  /// Produces engine::ResultColumn entries keyed by (pc << 8) | arg-index.
  bool is_sink = false;
  /// Only observable effect is the result value (same notion as
  /// optimizer::IsPureOperation; kept separate so the analysis library does
  /// not depend on the optimizer it validates).
  bool side_effect_free = true;

  /// --- Abstract-interpretation metadata (analysis/absint.h) ---

  /// Required element type per argument slot; kNull = unconstrained. Only
  /// slots without a runtime coercion are constrained (strings, booleans),
  /// so a violation is a guaranteed kernel error, not a style issue.
  std::vector<storage::DataType> arg_elem;
  /// Argument index pairs that must hold equal-cardinality BATs at run time
  /// (batcalc zip semantics, selectmask, grouped aggregates). Disjoint
  /// abstract cardinalities are a provable contradiction.
  std::vector<std::pair<int, int>> equal_card_args;
  /// Argument slots that must carry a candidate list: an ascending,
  /// NULL-free bat[:oid]. Feeding a value-domain BAT here silently
  /// misinterprets values as row ids.
  std::vector<int> candidate_args;
  /// Kernel-specific transfer function refining the generic result shapes;
  /// nullptr falls back to the shape defaults alone.
  AbstractTransferFn transfer = nullptr;
};

/// Signature of "module.function", or nullptr for kernels the table does not
/// cover (user extensions).
const KernelSignature* LookupKernelSignature(const std::string& module,
                                             const std::string& function);

/// Heuristic: the operation name suggests it emits result columns
/// (print/result/output/export). Used to flag sinks that are NOT in the
/// signature table — such kernels have no defined ResultColumn::order key,
/// so their output order under the dataflow scheduler is nondeterministic.
bool LooksLikeResultSink(const std::string& module,
                         const std::string& function);

}  // namespace stetho::analysis

#endif  // STETHO_ANALYSIS_SIGNATURES_H_
