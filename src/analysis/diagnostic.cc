#include "analysis/diagnostic.h"

#include "common/string_util.h"

namespace stetho::analysis {

const char* SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "unknown";
}

std::string Diagnostic::ToString() const {
  std::string out = StrFormat("%s[%s]", SeverityName(severity), check_id.c_str());
  if (pc >= 0) out += StrFormat(" pc=%d", pc);
  if (var >= 0) out += StrFormat(" var=%d", var);
  out += ": ";
  out += message;
  if (!fix_hint.empty()) {
    out += " (hint: ";
    out += fix_hint;
    out += ")";
  }
  return out;
}

bool HasErrors(const std::vector<Diagnostic>& diagnostics) {
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == Severity::kError) return true;
  }
  return false;
}

size_t CountSeverity(const std::vector<Diagnostic>& diagnostics,
                     Severity severity) {
  size_t n = 0;
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == severity) ++n;
  }
  return n;
}

}  // namespace stetho::analysis
