// The happens-before check family: schedule/trace race detection built on
// analysis/hb.h. Three checks replay the profiler trace against the plan's
// dependency DAG (trace-dependency-violation, trace-write-race,
// schedule-serialization), one audits the platform span export
// (span-interleaving), and one audits per-thread clocks (trace-clock-
// monotonicity). Together they make the scheduler's ordering contract a
// deterministic post-hoc lint instead of a TSan-needs-the-bad-interleaving
// hope.

#include <algorithm>
#include <map>
#include <vector>

#include "analysis/checks.h"
#include "analysis/emitter.h"
#include "analysis/hb.h"
#include "common/string_util.h"

namespace stetho::analysis {
namespace {

using mal::Argument;
using mal::Instruction;
using mal::Program;
using profiler::EventState;
using profiler::TraceEvent;

// ---------------------------------------------------------------------------
// trace-dependency-violation
// ---------------------------------------------------------------------------

class TraceDependencyViolationCheck final : public Check {
 public:
  const char* id() const override { return "trace-dependency-violation"; }
  const char* description() const override {
    return "no instruction's start event precedes any of its producers' "
           "done events in the observed schedule";
  }
  unsigned needs() const override { return kNeedsProgram | kNeedsTrace; }

  void Run(const CheckContext& ctx, std::vector<Diagnostic>* out) const override {
    Emitter emit(id(), out);
    ScheduleReport report = AnalyzeSchedule(*ctx.program, *ctx.trace);
    for (const DependencyViolation& v : report.violations) {
      emit.Emit(Severity::kError, v.pc, -1,
                v.producer_done_missing
                    ? StrFormat("started although producer pc=%d never "
                                "finished — the register it reads was never "
                                "published",
                                v.producer)
                    : StrFormat("started before producer pc=%d finished — "
                                "the scheduler dispatched a consumer past an "
                                "unfinished dependency",
                                v.producer),
                "happens-before violation; check the dataflow dependency "
                "edges and the admission accounting");
    }
    for (int pc : report.inverted) {
      emit.Emit(Severity::kError, pc, -1,
                "interval runs backwards: the done event precedes the start "
                "event in emission order",
                "start/done events were swapped or mis-sequenced");
    }
    for (int pc : report.duplicates) {
      emit.Emit(Severity::kError, pc, -1,
                "surplus start/done events — the happens-before model is "
                "built on exactly one pair per executed instruction",
                "a duplicated execution makes every ordering conclusion for "
                "this pc unreliable");
    }
  }
};

// ---------------------------------------------------------------------------
// trace-write-race
// ---------------------------------------------------------------------------

class TraceWriteRaceCheck final : public Check {
 public:
  const char* id() const override { return "trace-write-race"; }
  const char* description() const override {
    return "no two happens-before-unordered instructions touch the same BAT "
           "variable when at least one of them writes it";
  }
  unsigned needs() const override { return kNeedsProgram | kNeedsTrace; }

  void Run(const CheckContext& ctx, std::vector<Diagnostic>* out) const override {
    const Program& p = *ctx.program;
    Emitter emit(id(), out);
    ScheduleReport report = AnalyzeSchedule(p, *ctx.trace);

    // Access sets per BAT variable: the defining instruction writes, every
    // argument reference reads. (SSA means one writer per variable in a
    // well-formed plan; duplicated executions and double assignments show
    // up as extra writers.)
    struct Accesses {
      std::vector<int> writers;
      std::vector<int> readers;
    };
    std::map<int, Accesses> per_var;
    for (const Instruction& ins : p.instructions()) {
      for (int r : ins.results) {
        if (r < 0 || static_cast<size_t>(r) >= p.num_variables()) continue;
        if (!p.variable(r).type.is_bat) continue;
        per_var[r].writers.push_back(ins.pc);
      }
      for (const Argument& arg : ins.args) {
        if (arg.kind != Argument::Kind::kVar) continue;
        if (arg.var < 0 || static_cast<size_t>(arg.var) >= p.num_variables()) {
          continue;
        }
        if (!p.variable(arg.var).type.is_bat) continue;
        per_var[arg.var].readers.push_back(ins.pc);
      }
    }

    auto unordered = [&report](int a, int b) {
      const PcExecution& ea = report.executions[static_cast<size_t>(a)];
      const PcExecution& eb = report.executions[static_cast<size_t>(b)];
      if (!ea.started() || !eb.started()) return false;  // never overlapped
      return !HappensBefore(ea, eb) && !HappensBefore(eb, ea);
    };

    for (const auto& [var, acc] : per_var) {
      for (size_t i = 0; i < acc.writers.size(); ++i) {
        int w = acc.writers[i];
        // Writer vs writer (double definition executed concurrently).
        for (size_t j = i + 1; j < acc.writers.size(); ++j) {
          if (unordered(w, acc.writers[j])) {
            emit.Emit(Severity::kError, std::min(w, acc.writers[j]), var,
                      StrFormat("write-write race on %s: pc=%d and pc=%d "
                                "are not happens-before ordered",
                                VarName(p, var).c_str(), w, acc.writers[j]),
                      "two unordered definitions of one register corrupt "
                      "whichever consumer reads it");
          }
        }
        // Writer vs reader.
        for (int r : acc.readers) {
          if (r == w) continue;
          if (unordered(w, r)) {
            emit.Emit(Severity::kError, r, var,
                      StrFormat("write-read race on %s: reader pc=%d is not "
                                "ordered against writer pc=%d",
                                VarName(p, var).c_str(), r, w),
                      "the reader may observe a half-built or released BAT");
          }
        }
      }
    }
  }
};

// ---------------------------------------------------------------------------
// span-interleaving
// ---------------------------------------------------------------------------

class SpanInterleavingCheck final : public Check {
 public:
  const char* id() const override { return "span-interleaving"; }
  const char* description() const override {
    return "kernel spans sharing one query-local tid nest properly (no "
           "partial overlap), matching the trace thread contract";
  }
  unsigned needs() const override { return kNeedsSpans; }

  void Run(const CheckContext& ctx, std::vector<Diagnostic>* out) const override {
    Emitter emit(id(), out);
    std::map<int, std::vector<const obs::SpanRecord*>> by_tid;
    for (const obs::SpanRecord& span : *ctx.spans) {
      if (span.cat != "kernel") continue;
      by_tid[span.tid].push_back(&span);
    }
    for (auto& [tid, spans] : by_tid) {
      std::stable_sort(spans.begin(), spans.end(),
                       [](const obs::SpanRecord* a, const obs::SpanRecord* b) {
                         if (a->start_us != b->start_us) {
                           return a->start_us < b->start_us;
                         }
                         return a->dur_us > b->dur_us;  // enclosing span first
                       });
      // Sweep: a span beginning inside an open span must also end inside it.
      const obs::SpanRecord* open = nullptr;
      for (const obs::SpanRecord* span : spans) {
        int64_t end = span->start_us + span->dur_us;
        if (open != nullptr) {
          int64_t open_end = open->start_us + open->dur_us;
          if (span->start_us < open_end && end > open_end) {
            emit.Emit(Severity::kError, span->pc, -1,
                      StrFormat("kernel span \"%s\" [%lld..%lld us] partially "
                                "overlaps \"%s\" (pc=%d) [%lld..%lld us] on "
                                "tid %d — spans on one admission slot must "
                                "nest",
                                span->name.c_str(),
                                static_cast<long long>(span->start_us),
                                static_cast<long long>(end),
                                open->name.c_str(), open->pc,
                                static_cast<long long>(open->start_us),
                                static_cast<long long>(open_end), tid),
                      "two kernels were simultaneously live on one "
                      "query-local slot; the slot accounting is broken");
          }
        }
        if (open == nullptr ||
            span->start_us + span->dur_us > open->start_us + open->dur_us) {
          open = span;
        }
      }
    }
  }
};

// ---------------------------------------------------------------------------
// trace-clock-monotonicity
// ---------------------------------------------------------------------------

class TraceClockMonotonicityCheck final : public Check {
 public:
  const char* id() const override { return "trace-clock-monotonicity"; }
  const char* description() const override {
    return "per-thread event timestamps never regress in emission order";
  }
  unsigned needs() const override { return kNeedsTrace; }

  void Run(const CheckContext& ctx, std::vector<Diagnostic>* out) const override {
    Emitter emit(id(), out);
    std::vector<TraceEvent> events = *ctx.trace;
    std::stable_sort(events.begin(), events.end(),
                     [](const TraceEvent& a, const TraceEvent& b) {
                       return a.event < b.event;
                     });
    struct Last {
      int64_t time_us = 0;
      int64_t event = -1;
      bool reported = false;
    };
    std::map<int, Last> per_thread;
    for (const TraceEvent& e : events) {
      Last& last = per_thread[e.thread];
      if (last.event >= 0 && e.time_us < last.time_us && !last.reported) {
        emit.Emit(Severity::kError, e.pc, -1,
                  StrFormat("thread %d clock regresses: event %lld at %lld "
                            "us after event %lld at %lld us",
                            e.thread, static_cast<long long>(e.event),
                            static_cast<long long>(e.time_us),
                            static_cast<long long>(last.event),
                            static_cast<long long>(last.time_us)),
                  "per-thread emission order and timestamps must agree; the "
                  "profiler stamps both under one lock");
        last.reported = true;  // later events on this thread usually cascade
      }
      last.time_us = std::max(last.time_us, e.time_us);
      last.event = e.event;
    }
  }
};

// ---------------------------------------------------------------------------
// schedule-serialization
// ---------------------------------------------------------------------------

class ScheduleSerializationCheck final : public Check {
 public:
  const char* id() const override { return "schedule-serialization"; }
  const char* description() const override {
    return "a plan that admits parallel execution did not run fully "
           "serially (the lost-concurrency anomaly, paper section 5)";
  }
  unsigned needs() const override { return kNeedsProgram | kNeedsTrace; }

  void Run(const CheckContext& ctx, std::vector<Diagnostic>* out) const override {
    Emitter emit(id(), out);
    ScheduleReport report = AnalyzeSchedule(*ctx.program, *ctx.trace);
    if (report.plan_width < 2) return;            // nothing to parallelize
    if (report.completed_executions < 2) return;  // too little evidence
    // A single admission slot in the trace means dop=1 was configured —
    // serial execution is then expected, not an anomaly.
    if (report.threads.size() < 2) return;
    if (report.max_observed_concurrency > 1) return;
    emit.Emit(Severity::kNote, -1, -1,
              StrFormat("plan admits %d-wide parallelism but the observed "
                        "schedule is fully serial (%zu thread(s), peak "
                        "concurrency 1) — sequential execution where "
                        "multithreading was expected",
                        report.plan_width, report.threads.size()),
              "check dop/num_threads and the dataflow flag; "
              "mal_lint --schedule shows the critical-path slack");
  }
};

}  // namespace

std::unique_ptr<Check> MakeTraceDependencyViolationCheck() {
  return std::make_unique<TraceDependencyViolationCheck>();
}
std::unique_ptr<Check> MakeTraceWriteRaceCheck() {
  return std::make_unique<TraceWriteRaceCheck>();
}
std::unique_ptr<Check> MakeSpanInterleavingCheck() {
  return std::make_unique<SpanInterleavingCheck>();
}
std::unique_ptr<Check> MakeTraceClockMonotonicityCheck() {
  return std::make_unique<TraceClockMonotonicityCheck>();
}
std::unique_ptr<Check> MakeScheduleSerializationCheck() {
  return std::make_unique<ScheduleSerializationCheck>();
}

}  // namespace stetho::analysis
