#include "analysis/domain.h"

#include <algorithm>

#include "common/string_util.h"

namespace stetho::analysis {

using storage::DataType;
using storage::Value;

Interval Interval::Join(const Interval& other) const {
  return Interval{std::min(lo, other.lo), std::max(hi, other.hi)};
}

Interval Interval::Meet(const Interval& other) const {
  return Interval{std::max(lo, other.lo), std::min(hi, other.hi)};
}

Interval Interval::SaturatingAdd(const Interval& a, const Interval& b) {
  auto add = [](int64_t x, int64_t y) {
    if (x >= kUnbounded - y) return kUnbounded;
    return x + y;
  };
  return Interval{add(a.lo, b.lo), add(a.hi, b.hi)};
}

Interval Interval::SaturatingMulUpper(const Interval& a, const Interval& b) {
  int64_t hi;
  if (a.hi == 0 || b.hi == 0) {
    hi = 0;
  } else if (a.hi >= kUnbounded / b.hi) {
    hi = kUnbounded;
  } else {
    hi = a.hi * b.hi;
  }
  return Interval{0, hi};
}

std::string Interval::ToString() const {
  if (hi == kUnbounded) {
    return StrFormat("[%lld, *]", static_cast<long long>(lo));
  }
  return StrFormat("[%lld, %lld]", static_cast<long long>(lo),
                   static_cast<long long>(hi));
}

const char* TriName(Tri t) {
  switch (t) {
    case Tri::kUnknown:
      return "?";
    case Tri::kFalse:
      return "no";
    case Tri::kTrue:
      return "yes";
  }
  return "?";
}

Tri TriOr(Tri a, Tri b) {
  if (a == Tri::kTrue || b == Tri::kTrue) return Tri::kTrue;
  if (a == Tri::kUnknown || b == Tri::kUnknown) return Tri::kUnknown;
  return Tri::kFalse;
}

AbstractValue AbstractValue::Top() {
  AbstractValue v;
  v.defined = true;
  return v;
}

AbstractValue AbstractValue::FromConstant(const Value& value) {
  AbstractValue v;
  v.defined = true;
  v.is_bat = Tri::kFalse;
  v.elem = value.type();  // kNull for a NULL literal = unknown type
  v.card = Interval::Exact(1);
  v.nullable = value.is_null() ? Tri::kTrue : Tri::kFalse;
  v.constant = value;
  return v;
}

AbstractValue AbstractValue::FromDeclared(const mal::Variable& var) {
  AbstractValue v;
  v.defined = true;
  v.is_bat = var.type.is_bat ? Tri::kTrue : Tri::kFalse;
  v.elem = var.type.base;
  if (var.type.is_bat) {
    v.card = var.has_cardinality() ? Interval::Range(var.card_lo, var.card_hi)
                                   : Interval::Unknown();
  } else {
    v.card = Interval::Exact(1);
  }
  return v;
}

AbstractValue AbstractValue::Join(const AbstractValue& other) const {
  if (!defined) return other;
  if (!other.defined) return *this;
  AbstractValue out;
  out.defined = true;
  out.is_bat = is_bat == other.is_bat ? is_bat : Tri::kUnknown;
  out.elem = elem == other.elem ? elem : DataType::kNull;
  out.card = card.Join(other.card);
  out.nullable = nullable == other.nullable ? nullable : Tri::kUnknown;
  out.sorted = sorted == other.sorted ? sorted : Tri::kUnknown;
  if (constant.has_value() && other.constant.has_value() &&
      *constant == *other.constant) {
    out.constant = constant;
  }
  return out;
}

bool AbstractValue::CompatibleWith(const AbstractValue& other) const {
  if (!defined || !other.defined) return true;
  auto tri_conflict = [](Tri a, Tri b) {
    return (a == Tri::kTrue && b == Tri::kFalse) ||
           (a == Tri::kFalse && b == Tri::kTrue);
  };
  if (tri_conflict(is_bat, other.is_bat)) return false;
  if (elem_known() && other.elem_known() && elem != other.elem) return false;
  if (!card.Overlaps(other.card)) return false;
  if (tri_conflict(nullable, other.nullable)) return false;
  if (tri_conflict(sorted, other.sorted)) return false;
  if (constant.has_value() && other.constant.has_value() &&
      *constant != *other.constant) {
    return false;
  }
  return true;
}

std::string AbstractValue::ToString() const {
  if (!defined) return "<undefined>";
  if (constant.has_value()) {
    return StrFormat("const %s%s", constant->ToString().c_str(),
                     DataTypeName(elem));
  }
  std::string shape = is_bat == Tri::kTrue    ? "bat["
                      : is_bat == Tri::kFalse ? ""
                                              : "?[";
  std::string out = shape;
  out += elem_known() ? DataTypeName(elem) : ":?";
  if (is_bat != Tri::kFalse) out += "]";
  out += " card=" + card.ToString();
  out += StrFormat(" null=%s sorted=%s", TriName(nullable), TriName(sorted));
  return out;
}

}  // namespace stetho::analysis
