#ifndef STETHO_ANALYSIS_PERFDIFF_H_
#define STETHO_ANALYSIS_PERFDIFF_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "mal/program.h"
#include "obs/profile_store.h"
#include "profiler/event.h"

namespace stetho::analysis {

/// --- Cross-run trace comparison (the analysis half of the profile store) ---
///
/// obs::ProfileStore keeps baselines keyed by plain uint64 shape hashes;
/// this header owns everything that needs MAL or profiler types: hashing a
/// plan or trace into that key, extracting a QueryObservation from a
/// recorded trace, and diffing two traces of the same shape per pc.

/// FNV-1a over the rendered instructions (the function-name header is
/// deliberately excluded: "user.s0" and "user.s17" with identical bodies
/// are one plan shape). The key ProgressModelCache and ProfileStore share.
uint64_t PlanShapeHash(const mal::Program& program);

/// The same hash computed from a recorded trace: the statement text of
/// each pc's first event, mixed in ascending pc order. Equal to
/// PlanShapeHash of the plan that produced the trace whenever the trace
/// covers every pc (the one-start/one-done contract), because the profiler
/// stamps events with the rendered instruction text.
uint64_t TraceShapeHash(const std::vector<profiler::TraceEvent>& trace);

/// Folds a recorded trace into a single-query observation: per-pc duration
/// (first done event's usec), engine live bytes at completion, observed
/// concurrency (open start/done intervals when the pc started, itself
/// included), and the trace makespan as total_usec. shape_hash is set from
/// TraceShapeHash; callers holding the plan should overwrite it with
/// PlanShapeHash to key consistently with the server's fold path.
obs::QueryObservation ObservationFromTrace(
    const std::vector<profiler::TraceEvent>& trace);

/// One matched pc in a two-trace comparison.
struct PcDelta {
  int pc = -1;
  std::string stmt;          ///< statement text (from trace b, else a)
  int64_t a_usec = 0;
  int64_t b_usec = 0;
  int64_t delta_usec = 0;    ///< b - a
  double ratio = 1.0;        ///< b / max(a, 1)
  bool critical_a = false;   ///< pc on trace a's critical path (plan given)
  bool critical_b = false;
};

/// Per-pc aligned comparison of two traces.
struct TraceDiff {
  uint64_t a_hash = 0;
  uint64_t b_hash = 0;
  bool shapes_match = false;
  int64_t a_makespan_usec = 0;
  int64_t b_makespan_usec = 0;
  /// Duration-weighted critical path per trace; -1 without a plan.
  int64_t a_critical_usec = -1;
  int64_t b_critical_usec = -1;
  std::vector<PcDelta> deltas;  ///< matched pcs, |delta| descending
  std::vector<int> only_a;      ///< pcs only trace a executed
  std::vector<int> only_b;
};

/// Aligns two traces by pc (statement text is cross-checked when both
/// sides carry it) and reports per-pc deltas sorted by absolute change.
/// With a plan, each trace is replayed through the happens-before model so
/// the critical-path delta can be called out — the plan must match the
/// traces' shape.
TraceDiff DiffTraces(const std::vector<profiler::TraceEvent>& a,
                     const std::vector<profiler::TraceEvent>& b,
                     const mal::Program* plan);

/// Human-readable diff report (`stethoscope diff`).
std::string FormatTraceDiff(const TraceDiff& diff);

}  // namespace stetho::analysis

#endif  // STETHO_ANALYSIS_PERFDIFF_H_
