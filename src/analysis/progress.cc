#include "analysis/progress.h"

#include <algorithm>

#include "analysis/liveness.h"
#include "analysis/perfdiff.h"
#include "common/string_util.h"
#include "obs/metrics.h"

namespace stetho::analysis {
namespace {

/// Per-value clamp on the byte model feeding the weights: a single
/// unbounded (or astronomically-bounded) register must slow the plan's
/// progress bar, not freeze it at 0% until that one instruction lands.
constexpr int64_t kWeightByteCap = int64_t{1} << 30;  // 1 GiB

obs::Gauge* ProgressGauge() {
  static obs::Gauge* g = obs::Registry::Default()->GetOrCreateGauge(
      "stetho_query_progress_ratio",
      "Completion ratio of the most recently updated query, in millionths "
      "(gauges are integral); 1000000 = done");
  return g;
}

obs::Counter* CacheHitCounter() {
  static obs::Counter* c = obs::Registry::Default()->GetOrCreateCounter(
      "stetho_progress_model_cache_hits_total",
      "Progress-model cache lookups served from the LRU");
  return c;
}

obs::Counter* CacheMissCounter() {
  static obs::Counter* c = obs::Registry::Default()->GetOrCreateCounter(
      "stetho_progress_model_cache_misses_total",
      "Progress-model cache lookups that rebuilt the model");
  return c;
}

int64_t CapBytes(int64_t bytes) {
  if (bytes < 0) return 0;
  return std::min(bytes, kWeightByteCap);
}

/// Calibrated per-kernel cost factor over the modeled bytes. Kernels differ
/// sharply in work per byte touched on this engine: sql/bat/language
/// kernels return views or metadata (near-zero per byte — sql.bind hands
/// out the stored column, bat.partition slices it), projection and sort
/// are memory-bound gathers, partial aggregates touch mostly group ids,
/// while select/group/arith/pack do per-value work. Without the factor the
/// progress bar jumps to ~50% while the binds land and the ETA collapses
/// (measured 3x under on examples/c4_q1); with it the weight tracks
/// wall-clock within the 2x acceptance band (EXPERIMENTS § PIPE). The
/// ~100x spread between view and compute kernels matters, the exact
/// constants do not.
double KernelCostFactor(const mal::Instruction& ins) {
  if (ins.module == "sql" || ins.module == "bat" ||
      ins.module == "language") {
    return 0.01;
  }
  if (ins.module == "algebra" &&
      (ins.function == "projection" || ins.function == "sort")) {
    return 0.05;
  }
  if (ins.module == "aggr") return 0.2;
  return 1.0;
}

/// "815us" / "1.2ms" / "3.4s" — scoreboard-sized durations.
std::string FormatUsec(int64_t usec) {
  if (usec < 1000) return StrFormat("%lldus", static_cast<long long>(usec));
  if (usec < 1000000) return StrFormat("%.1fms", usec / 1000.0);
  return StrFormat("%.1fs", usec / 1000000.0);
}

}  // namespace

std::shared_ptr<const ProgressModel> ProgressModel::Build(
    const mal::Program& program) {
  auto model = std::shared_ptr<ProgressModel>(new ProgressModel());
  const size_t n = program.size();
  model->weight_.assign(n, 1.0);
  model->deps_ = program.BuildDependencies();

  MemoryReport report = AnalyzeMemory(program);
  std::vector<int64_t> var_bytes(program.num_variables(), 0);
  for (const LiveRange& range : report.ranges) {
    if (range.var >= 0 &&
        range.var < static_cast<int>(var_bytes.size())) {
      var_bytes[static_cast<size_t>(range.var)] = CapBytes(range.bytes);
    }
  }
  for (size_t pc = 0; pc < n; ++pc) {
    const mal::Instruction& ins = program.instruction(static_cast<int>(pc));
    int64_t bytes = pc < report.result_bytes.size()
                        ? CapBytes(report.result_bytes[pc])
                        : 0;
    for (const mal::Argument& arg : ins.args) {
      if (arg.kind == mal::Argument::Kind::kVar) {
        bytes += var_bytes[static_cast<size_t>(arg.var)];
      }
    }
    // 1 KiB of modeled traffic ~ one unit of per-value work (scaled by the
    // kernel's calibrated cost factor); the +1 keeps metadata-only
    // instructions visible in the denominator.
    model->weight_[pc] = 1.0 + static_cast<double>(bytes) / 1024.0 *
                                   KernelCostFactor(ins);
    model->total_weight_ += model->weight_[pc];
  }

  // Longest path over the SSA dependency DAG (pcs are topologically
  // ordered by construction — producers precede consumers).
  std::vector<double> chain(n, 0.0);
  for (size_t pc = 0; pc < n; ++pc) {
    double longest = 0;
    for (int dep : model->deps_[pc]) {
      longest = std::max(longest, chain[static_cast<size_t>(dep)]);
    }
    chain[pc] = longest + model->weight_[pc];
    model->critical_weight_ = std::max(model->critical_weight_, chain[pc]);
  }
  return model;
}

double ProgressModel::RemainingCriticalWeight(
    const std::vector<bool>& done) const {
  const size_t n = weight_.size();
  std::vector<double> chain(n, 0.0);
  double best = 0;
  for (size_t pc = 0; pc < n; ++pc) {
    double longest = 0;
    for (int dep : deps_[pc]) {
      longest = std::max(longest, chain[static_cast<size_t>(dep)]);
    }
    const bool is_done = pc < done.size() && done[pc];
    chain[pc] = longest + (is_done ? 0.0 : weight_[pc]);
    best = std::max(best, chain[pc]);
  }
  return best;
}

std::shared_ptr<const ProgressModel> ProgressModelCache::GetOrBuild(
    const mal::Program& program) {
  // The same function-name-blind content hash the profile store keys
  // baselines by (analysis/perfdiff.h).
  const uint64_t key = PlanShapeHash(program);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = models_.find(key);
    if (it != models_.end()) {
      ++hits_;
      CacheHitCounter()->Increment();
      lru_.remove(key);
      lru_.push_front(key);
      return it->second;
    }
  }
  // Build outside the lock (absint + liveness are the expensive part);
  // a concurrent duplicate build is wasted work, not a correctness issue.
  std::shared_ptr<const ProgressModel> model = ProgressModel::Build(program);
  std::lock_guard<std::mutex> lock(mu_);
  ++misses_;
  CacheMissCounter()->Increment();
  if (models_.emplace(key, model).second) {
    lru_.push_front(key);
    while (capacity_ > 0 && lru_.size() > capacity_) {
      models_.erase(lru_.back());
      lru_.pop_back();
    }
  }
  return model;
}

int64_t ProgressModelCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

int64_t ProgressModelCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

ProgressModelCache* ProgressModelCache::Default() {
  static ProgressModelCache* cache = new ProgressModelCache(32);
  return cache;
}

ProgressEstimator::ProgressEstimator(
    std::shared_ptr<const ProgressModel> model)
    : model_(std::move(model)),
      done_(model_->plan_size(), false),
      pc_usec_(model_->plan_size(), -1),
      pc_end_us_(model_->plan_size(), 0),
      pc_rss_(model_->plan_size(), 0) {}

double ProgressEstimator::RatioLocked() const {
  if (finished_) return 1.0;
  double r = model_->total_weight() > 0
                 ? done_weight_ / model_->total_weight()
                 : (done_.empty() ? 1.0 : 0.0);
  max_ratio_ = std::min(1.0, std::max(max_ratio_, r));
  return max_ratio_;
}

void ProgressEstimator::OnInstructionDone(int pc, int64_t usec,
                                          int64_t now_us, int64_t rss_bytes) {
  double published;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (pc < 0 || pc >= static_cast<int>(done_.size()) ||
        done_[static_cast<size_t>(pc)]) {
      return;  // duplicate delivery or foreign pc: already accounted
    }
    done_[static_cast<size_t>(pc)] = true;
    pc_usec_[static_cast<size_t>(pc)] = std::max<int64_t>(0, usec);
    pc_end_us_[static_cast<size_t>(pc)] = now_us;
    pc_rss_[static_cast<size_t>(pc)] = std::max<int64_t>(0, rss_bytes);
    ++done_count_;
    done_weight_ += model_->weight(pc);
    busy_usec_ += static_cast<double>(std::max<int64_t>(0, usec));
    if (first_us_ < 0) first_us_ = now_us - std::max<int64_t>(0, usec);
    newest_us_ = std::max(newest_us_, now_us);
    published = RatioLocked();
  }
  ProgressGauge()->Set(static_cast<int64_t>(published * 1e6));
}

void ProgressEstimator::ObserveEvent(const profiler::TraceEvent& event) {
  if (event.state != profiler::EventState::kDone) return;
  OnInstructionDone(event.pc, event.usec, event.time_us, event.rss_bytes);
}

void ProgressEstimator::MarkFinished() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    finished_ = true;
    max_ratio_ = 1.0;
  }
  ProgressGauge()->Set(1000000);
}

double ProgressEstimator::ratio() const {
  std::lock_guard<std::mutex> lock(mu_);
  return RatioLocked();
}

bool ProgressEstimator::finished() const {
  std::lock_guard<std::mutex> lock(mu_);
  return finished_;
}

int ProgressEstimator::done_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return done_count_;
}

int64_t ProgressEstimator::elapsed_usec() const {
  std::lock_guard<std::mutex> lock(mu_);
  return first_us_ >= 0 ? newest_us_ - first_us_ : 0;
}

int64_t ProgressEstimator::EtaUsec() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (finished_) return 0;
  if (done_count_ == 0 || done_weight_ <= 0) return -1;
  const double remaining_weight = model_->total_weight() - done_weight_;
  if (remaining_weight <= 0) return 0;
  // Throughput extrapolation: the observed event-time span bought
  // done_weight_ units, remaining units cost proportionally.
  const double elapsed =
      static_cast<double>(std::max<int64_t>(1, newest_us_ - first_us_));
  const double by_rate = elapsed * remaining_weight / done_weight_;
  // Critical-path floor: the heaviest incomplete chain cannot run in
  // parallel with itself; price it at the observed serial cost per unit.
  const double usec_per_weight = busy_usec_ / done_weight_;
  const double by_path =
      model_->RemainingCriticalWeight(done_) * usec_per_weight;
  return static_cast<int64_t>(std::max(by_rate, by_path));
}

obs::QueryObservation ProgressEstimator::ToObservation(
    uint64_t shape_hash) const {
  std::lock_guard<std::mutex> lock(mu_);
  obs::QueryObservation observation;
  observation.shape_hash = shape_hash;
  observation.plan_size = done_.size();
  observation.total_usec =
      first_us_ >= 0 ? std::max<int64_t>(0, newest_us_ - first_us_) : 0;

  // Observed concurrency by interval sweep: each completed pc occupied
  // (end - usec, end]; at every interval start count how many intervals are
  // open (the starting one included). Ties break start-before-done so
  // back-to-back completions at one timestamp read as overlapped.
  struct Edge {
    int64_t time_us;
    int kind;  // 0 = start, 1 = done
    int pc;
  };
  std::vector<Edge> edges;
  for (size_t pc = 0; pc < done_.size(); ++pc) {
    if (pc_usec_[pc] < 0) continue;
    const int64_t end = pc_end_us_[pc];
    edges.push_back({end - pc_usec_[pc], 0, static_cast<int>(pc)});
    edges.push_back({end, 1, static_cast<int>(pc)});
  }
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    if (a.time_us != b.time_us) return a.time_us < b.time_us;
    if (a.kind != b.kind) return a.kind < b.kind;
    return a.pc < b.pc;
  });
  std::vector<int> concurrency(done_.size(), 1);
  int open = 0;
  for (const Edge& edge : edges) {
    if (edge.kind == 0) {
      ++open;
      concurrency[static_cast<size_t>(edge.pc)] = open;
    } else {
      open = std::max(0, open - 1);
    }
  }

  for (size_t pc = 0; pc < done_.size(); ++pc) {
    if (pc_usec_[pc] < 0) continue;
    obs::PcSample sample;
    sample.pc = static_cast<int>(pc);
    sample.usec = pc_usec_[pc];
    sample.bytes = pc_rss_[pc];
    sample.concurrency = concurrency[pc];
    observation.pcs.push_back(sample);
  }
  return observation;
}

int64_t ProgressEstimator::PcUsec(int pc) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (pc < 0 || pc >= static_cast<int>(pc_usec_.size())) return -1;
  return pc_usec_[static_cast<size_t>(pc)];
}

std::string ProgressEstimator::ScoreboardLine(const std::string& name) const {
  double r;
  int done;
  size_t total;
  bool fin;
  {
    std::lock_guard<std::mutex> lock(mu_);
    r = RatioLocked();
    done = done_count_;
    total = done_.size();
    fin = finished_;
  }
  const int64_t eta = EtaUsec();
  std::string line =
      StrFormat("%-6s %5.1f%%  %d/%d done", name.c_str(), 100.0 * r, done,
                static_cast<int>(total));
  if (fin) {
    line += StrFormat("  elapsed %s", FormatUsec(elapsed_usec()).c_str());
  } else if (eta >= 0) {
    line += StrFormat("  eta %s", FormatUsec(eta).c_str());
  }
  return line;
}

}  // namespace stetho::analysis
