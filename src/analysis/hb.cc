#include "analysis/hb.h"

#include <algorithm>
#include <map>

#include "common/string_util.h"
#include "obs/metrics.h"

namespace stetho::analysis {
namespace {

using profiler::EventState;
using profiler::TraceEvent;

/// Restores emission order (UDP transport may reorder datagrams).
std::vector<TraceEvent> SortedByEventId(const std::vector<TraceEvent>& events) {
  std::vector<TraceEvent> sorted = events;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.event < b.event;
                   });
  return sorted;
}

struct HbMetrics {
  obs::Counter* replays;
  obs::Counter* events;
  obs::Counter* violations;
  obs::Gauge* critical_path_usec;
  obs::Gauge* makespan_usec;
  obs::Gauge* slack_usec;
};

/// Resolved once; the registry returns stable pointers for the process
/// lifetime. Plain counters/gauges stay live even with obs disabled — they
/// cost one relaxed store and never read the clock.
const HbMetrics& Metrics() {
  static const HbMetrics m = [] {
    obs::Registry* r = obs::Registry::Default();
    HbMetrics out;
    out.replays = r->GetOrCreateCounter(
        "stetho_hb_replays_total",
        "Happens-before schedule replays (AnalyzeSchedule calls)");
    out.events = r->GetOrCreateCounter(
        "stetho_hb_events_replayed_total",
        "Trace events replayed through the happens-before vector clocks");
    out.violations = r->GetOrCreateCounter(
        "stetho_hb_violations_total",
        "Dependency edges the observed schedule violated");
    out.critical_path_usec = r->GetOrCreateGauge(
        "stetho_hb_critical_path_usec",
        "Critical path of the last replayed schedule, observed-duration "
        "weighted, microseconds");
    out.makespan_usec = r->GetOrCreateGauge(
        "stetho_hb_makespan_usec",
        "Makespan (last done - first start) of the last replayed schedule, "
        "microseconds");
    out.slack_usec = r->GetOrCreateGauge(
        "stetho_hb_slack_usec",
        "Makespan minus critical path of the last replayed schedule, "
        "microseconds");
    return out;
  }();
  return m;
}

/// Longest-path layering of the dependency DAG; returns the size of the
/// largest layer. Only well-ordered edges (producer pc < consumer pc) are
/// followed so malformed plans cannot cycle.
int PlanWidth(const std::vector<std::vector<int>>& deps) {
  std::vector<int> level(deps.size(), 0);
  std::map<int, int> layer_sizes;
  int width = deps.empty() ? 0 : 1;
  for (size_t pc = 0; pc < deps.size(); ++pc) {
    int lvl = 0;
    for (int q : deps[pc]) {
      if (q >= 0 && static_cast<size_t>(q) < pc) {
        lvl = std::max(lvl, level[static_cast<size_t>(q)] + 1);
      }
    }
    level[pc] = lvl;
    width = std::max(width, ++layer_sizes[lvl]);
  }
  return width;
}

}  // namespace

void VectorClock::Join(const VectorClock& other) {
  if (other.ticks_.size() > ticks_.size()) {
    ticks_.resize(other.ticks_.size(), 0);
  }
  for (size_t t = 0; t < other.ticks_.size(); ++t) {
    ticks_[t] = std::max(ticks_[t], other.ticks_[t]);
  }
}

bool VectorClock::LessEq(const VectorClock& other) const {
  for (size_t t = 0; t < ticks_.size(); ++t) {
    if (ticks_[t] > other.tick(t)) return false;
  }
  return true;
}

bool HappensBefore(const PcExecution& a, const PcExecution& b) {
  if (!a.completed() || !b.started()) return false;
  return a.done_vc.LessEq(b.start_vc);
}

ScheduleReport AnalyzeSchedule(const mal::Program& program,
                               const std::vector<TraceEvent>& trace) {
  ScheduleReport report;
  report.executions.resize(program.size());
  for (size_t pc = 0; pc < program.size(); ++pc) {
    report.executions[pc].pc = static_cast<int>(pc);
  }

  std::vector<std::vector<int>> deps = program.BuildDependencies();
  size_t dep_edges = 0;
  for (const std::vector<int>& d : deps) dep_edges += d.size();
  report.avg_indegree =
      program.size() == 0
          ? 0.0
          : static_cast<double>(dep_edges) / static_cast<double>(program.size());
  report.plan_width = PlanWidth(deps);

  std::vector<TraceEvent> events = SortedByEventId(trace);
  report.events = static_cast<int64_t>(events.size());

  // Dense thread index space for the vector clocks.
  std::map<int, size_t> thread_index;
  for (const TraceEvent& e : events) {
    if (thread_index.emplace(e.thread, thread_index.size()).second) {
      report.threads.push_back(e.thread);
    }
  }
  size_t num_threads = thread_index.size();

  // Replay: per-thread clocks advance on every event; a start joins the done
  // clocks of the producers the schedule actually respected.
  std::vector<VectorClock> thread_clock(num_threads,
                                        VectorClock(num_threads));
  int open = 0;
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    if (e.pc < 0 || static_cast<size_t>(e.pc) >= program.size()) continue;
    PcExecution& exec = report.executions[static_cast<size_t>(e.pc)];
    size_t t = thread_index[e.thread];
    VectorClock& clock = thread_clock[t];
    bool duplicate = e.state == EventState::kStart ? exec.started()
                                                   : exec.completed();
    if (duplicate) {
      if (report.duplicates.empty() || report.duplicates.back() != e.pc) {
        report.duplicates.push_back(e.pc);
      }
      continue;
    }
    if (e.state == EventState::kStart) {
      for (int q : deps[static_cast<size_t>(e.pc)]) {
        if (q < 0 || static_cast<size_t>(q) >= program.size()) continue;
        const PcExecution& producer =
            report.executions[static_cast<size_t>(q)];
        if (producer.completed() &&
            producer.done_index < static_cast<int64_t>(i)) {
          clock.Join(producer.done_vc);  // the edge synchronized
        } else {
          DependencyViolation v;
          v.pc = e.pc;
          v.producer = q;
          v.producer_done_missing = true;  // not done yet at this start
          report.violations.push_back(v);
        }
      }
      clock.Tick(t);
      exec.start_thread = e.thread;
      exec.start_index = static_cast<int64_t>(i);
      exec.start_us = e.time_us;
      exec.start_vc = clock;
      ++open;
      report.max_observed_concurrency =
          std::max(report.max_observed_concurrency, open);
    } else {
      if (!exec.started()) report.inverted.push_back(e.pc);
      clock.Tick(t);
      exec.done_thread = e.thread;
      exec.done_index = static_cast<int64_t>(i);
      exec.done_us = e.time_us;
      exec.usec = e.usec;
      exec.done_vc = clock;
      if (exec.started()) --open;
      ++report.completed_executions;
    }
  }
  // A producer whose done never arrived: every consumer start that ran is a
  // violation recorded above (producer.completed() was false at join time),
  // so nothing more to scan here. Distinguish the never-finished case in the
  // records for better messages.
  for (DependencyViolation& v : report.violations) {
    const PcExecution& producer =
        report.executions[static_cast<size_t>(v.producer)];
    v.producer_done_missing = !producer.completed();
  }

  // Critical path: longest observed-duration path through the DAG. Only
  // well-ordered edges (producer < consumer) participate, so the single
  // forward pass is a topological sweep even over malformed plans.
  std::vector<int64_t> path_usec(program.size(), 0);
  std::vector<int> best_pred(program.size(), -1);
  int tail = -1;
  int64_t best_total = 0;
  for (size_t pc = 0; pc < program.size(); ++pc) {
    int64_t longest_in = 0;
    int pred = -1;
    for (int q : deps[pc]) {
      if (q < 0 || static_cast<size_t>(q) >= pc) continue;
      if (path_usec[static_cast<size_t>(q)] > longest_in) {
        longest_in = path_usec[static_cast<size_t>(q)];
        pred = q;
      }
    }
    path_usec[pc] = longest_in + report.executions[pc].usec;
    best_pred[pc] = pred;
    if (path_usec[pc] >= best_total) {
      best_total = path_usec[pc];
      tail = static_cast<int>(pc);
    }
  }
  for (int pc = tail; pc >= 0; pc = best_pred[static_cast<size_t>(pc)]) {
    CriticalPathStep step;
    step.pc = pc;
    step.usec = report.executions[static_cast<size_t>(pc)].usec;
    report.critical_path.push_back(step);
  }
  std::reverse(report.critical_path.begin(), report.critical_path.end());
  report.critical_path_usec = best_total;

  int64_t first_start = 0, last_done = 0;
  bool any = false;
  for (const PcExecution& exec : report.executions) {
    if (!exec.started() || !exec.completed()) continue;
    if (!any) {
      first_start = exec.start_us;
      last_done = exec.done_us;
      any = true;
    } else {
      first_start = std::min(first_start, exec.start_us);
      last_done = std::max(last_done, exec.done_us);
    }
  }
  report.makespan_usec = any ? last_done - first_start : 0;
  report.slack_usec = report.makespan_usec - report.critical_path_usec;

  const HbMetrics& metrics = Metrics();
  metrics.replays->Increment();
  metrics.events->Increment(report.events);
  metrics.violations->Increment(
      static_cast<int64_t>(report.violations.size()));
  metrics.critical_path_usec->Set(report.critical_path_usec);
  metrics.makespan_usec->Set(report.makespan_usec);
  metrics.slack_usec->Set(report.slack_usec);
  return report;
}

std::string FormatScheduleReport(const ScheduleReport& report,
                                 const mal::Program& program) {
  std::string out;
  out += StrFormat(
      "schedule: %lld events, %d/%zu instructions completed, %zu thread(s)\n",
      static_cast<long long>(report.events), report.completed_executions,
      program.size(), report.threads.size());
  out += StrFormat(
      "width: plan admits %d, observed peak concurrency %d\n",
      report.plan_width, report.max_observed_concurrency);
  out += StrFormat(
      "makespan: %lld us, critical path %lld us, slack %lld us (%.1f%% of "
      "makespan)\n",
      static_cast<long long>(report.makespan_usec),
      static_cast<long long>(report.critical_path_usec),
      static_cast<long long>(report.slack_usec),
      report.makespan_usec > 0
          ? 100.0 * static_cast<double>(report.slack_usec) /
                static_cast<double>(report.makespan_usec)
          : 0.0);
  if (!report.violations.empty()) {
    out += StrFormat("violations: %zu dependency edge(s) not respected\n",
                     report.violations.size());
  }
  out += "critical path:\n";
  for (const CriticalPathStep& step : report.critical_path) {
    std::string stmt =
        step.pc >= 0 && static_cast<size_t>(step.pc) < program.size()
            ? program.InstructionToString(program.instruction(step.pc))
            : "<out of range>";
    out += StrFormat("  pc=%-4d %8lld us  %s\n", step.pc,
                     static_cast<long long>(step.usec), stmt.c_str());
  }
  return out;
}

}  // namespace stetho::analysis
