#ifndef STETHO_ANALYSIS_PROGRESS_H_
#define STETHO_ANALYSIS_PROGRESS_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "engine/interpreter.h"
#include "mal/program.h"
#include "obs/profile_store.h"
#include "profiler/event.h"

namespace stetho::analysis {

/// --- Live query progress / ETA ---
///
/// Turns the static analyses already in-tree into a runtime signal: the
/// liveness byte model (liveness.h, itself fed by absint cardinalities)
/// prices each instruction's work, the SSA dependency DAG gives the
/// critical path, and the observed done-events (engine hook or received
/// trace stream) fill in what actually completed. The ISSUE names this
/// layer scope::ProgressEstimator; it lives in analysis because both the
/// server (Mserver::ProgressText) and the scope monitor consume it, and
/// scope already depends on server.

/// Immutable per-plan work model shared by every run of the same plan
/// shape. Each instruction's weight is 1 + the KiB it touches (argument
/// bytes + modeled result bytes, both from AnalyzeMemory, clamped so an
/// unbounded cardinality cannot drown the rest of the plan); kernel time
/// is roughly linear in bytes moved, so weight is a time proxy good enough
/// for ratios. Thread-safe by construction (no mutable state).
class ProgressModel {
 public:
  /// Builds the model: one absint + liveness sweep plus a longest-path DP
  /// over BuildDependencies(). Cost is O(plan size) on top of
  /// AnalyzeMemory — use ProgressModelCache to pay it once per plan shape.
  static std::shared_ptr<const ProgressModel> Build(
      const mal::Program& program);

  size_t plan_size() const { return weight_.size(); }
  double weight(int pc) const { return weight_[static_cast<size_t>(pc)]; }
  double total_weight() const { return total_weight_; }
  /// Weight of the heaviest dependency chain — the work that cannot be
  /// parallelized away, the ETA's floor.
  double critical_path_weight() const { return critical_weight_; }

  /// Heaviest dependency chain counting only not-yet-done instructions
  /// (`done[pc]` true = completed). O(V + E).
  double RemainingCriticalWeight(const std::vector<bool>& done) const;

 private:
  ProgressModel() = default;

  std::vector<double> weight_;
  std::vector<std::vector<int>> deps_;  // producers per pc
  double total_weight_ = 0;
  double critical_weight_ = 0;
};

/// Content-hash LRU over ProgressModel, keyed on the plan's instruction
/// text (the function name is excluded — the server renames each query
/// "user.sN", and identical plan shapes must share one model). Mirrors
/// layout::LayoutCache's role for the front end. Thread-safe.
class ProgressModelCache {
 public:
  explicit ProgressModelCache(size_t capacity = 32) : capacity_(capacity) {}

  /// Returns the cached model for `program`'s shape, building it on miss.
  std::shared_ptr<const ProgressModel> GetOrBuild(const mal::Program& program);

  int64_t hits() const;
  int64_t misses() const;

  /// Process-wide instance the server and monitor share.
  static ProgressModelCache* Default();

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::list<uint64_t> lru_;  // most recent first
  std::map<uint64_t, std::shared_ptr<const ProgressModel>> models_;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
};

/// Live progress/ETA for one query run, combining a ProgressModel with
/// observed done-events — either in-process (engine::ProgressListener,
/// wired via ExecOptions::progress) or from a received trace stream
/// (ObserveEvent). Publishes stetho_query_progress_ratio (millionths;
/// gauges are integral) on every update.
///
/// The ratio is completed weight / total weight, clamped monotone: under
/// a lossy stream, done-events may vanish, so the published series never
/// regresses and MarkFinished() pins it at 1.0 when the query is known
/// complete. Thread-safe; O(1) per done-event.
class ProgressEstimator : public engine::ProgressListener {
 public:
  explicit ProgressEstimator(std::shared_ptr<const ProgressModel> model);

  /// engine::ProgressListener — fed by the interpreter with the clock
  /// reads it already pays for its stats.
  void OnInstructionDone(int pc, int64_t usec, int64_t now_us,
                         int64_t rss_bytes) override;

  /// Receiver-side feed: accounts a trace event (done-state events only;
  /// start events and out-of-range pcs are ignored).
  void ObserveEvent(const profiler::TraceEvent& event);

  /// The query completed: progress becomes exactly 1.0 regardless of how
  /// many done-events the transport delivered.
  void MarkFinished();

  /// Monotone completion ratio in [0, 1].
  double ratio() const;
  bool finished() const;
  /// Done-events observed (distinct pcs).
  int done_count() const;
  /// Observed event-time span between the first and the newest done-event.
  int64_t elapsed_usec() const;

  /// Estimated microseconds to completion: the larger of
  ///  - throughput extrapolation (elapsed x remaining/completed weight) and
  ///  - the remaining critical path priced at the observed cost per unit
  ///    weight (the floor no parallelism can beat).
  /// -1 until the first done-event; 0 once finished.
  int64_t EtaUsec() const;

  /// One scoreboard line: "s0  42.3%  131/260 done  eta 1.2ms  ...".
  std::string ScoreboardLine(const std::string& name) const;

  /// Everything this run contributed, packaged for the profile store:
  /// per-pc duration/bytes plus observed concurrency (a sweep over the
  /// recorded completion intervals). total_usec is the observed event-time
  /// span; callers who know the true end-to-end time should overwrite it.
  /// The estimator keeps accepting events afterwards — this is a snapshot.
  obs::QueryObservation ToObservation(uint64_t shape_hash) const;

  /// Duration of `pc`'s completion (-1 = not yet observed).
  int64_t PcUsec(int pc) const;

 private:
  double RatioLocked() const;

  const std::shared_ptr<const ProgressModel> model_;
  mutable std::mutex mu_;
  std::vector<bool> done_;
  std::vector<int64_t> pc_usec_;    // per-pc durations; -1 = unseen
  std::vector<int64_t> pc_end_us_;  // per-pc completion event time
  std::vector<int64_t> pc_rss_;     // per-pc live bytes at completion
  int done_count_ = 0;
  double done_weight_ = 0;
  double busy_usec_ = 0;     // sum of observed instruction durations
  int64_t first_us_ = -1;    // event time of the first observed done
  int64_t newest_us_ = 0;    // event time of the newest observed done
  mutable double max_ratio_ = 0;  // monotonicity clamp
  bool finished_ = false;
};

}  // namespace stetho::analysis

#endif  // STETHO_ANALYSIS_PROGRESS_H_
