#include "analysis/checks.h"

#include <algorithm>
#include <map>
#include <set>
#include <utility>

#include "analysis/emitter.h"
#include "analysis/signatures.h"
#include "common/string_util.h"

namespace stetho::analysis {
namespace {

using mal::Argument;
using mal::Instruction;
using mal::Program;
using profiler::EventState;
using profiler::TraceEvent;

/// Static shape of one argument: constants are always scalars; variables
/// follow their declared MAL type.
ValueKind ArgKind(const Program& p, const Argument& arg) {
  if (arg.kind == Argument::Kind::kConst) return ValueKind::kScalar;
  if (arg.var < 0 || static_cast<size_t>(arg.var) >= p.num_variables()) {
    return ValueKind::kAny;
  }
  return p.variable(arg.var).type.is_bat ? ValueKind::kBat : ValueKind::kScalar;
}

ValueKind ResultKind(const Program& p, int var) {
  if (var < 0 || static_cast<size_t>(var) >= p.num_variables()) {
    return ValueKind::kAny;
  }
  return p.variable(var).type.is_bat ? ValueKind::kBat : ValueKind::kScalar;
}

bool Satisfies(ValueKind actual, ValueKind constraint) {
  return constraint == ValueKind::kAny || actual == ValueKind::kAny ||
         actual == constraint;
}

bool VarInRange(const Program& p, int var) {
  return var >= 0 && static_cast<size_t>(var) < p.num_variables();
}

/// Parses the dot naming convention "n<pc>"; returns -1 on mismatch.
int PcFromNodeId(const std::string& id) {
  if (id.size() < 2 || id[0] != 'n') return -1;
  int pc = 0;
  for (size_t i = 1; i < id.size(); ++i) {
    if (id[i] < '0' || id[i] > '9') return -1;
    if (pc > 100000000) return -1;  // overflow guard; no plan is this large
    pc = pc * 10 + (id[i] - '0');
  }
  return pc;
}

std::string Ellipsize(const std::string& s, size_t limit = 96) {
  if (s.size() <= limit) return s;
  return s.substr(0, limit) + "...";
}

/// Number of instructions reading each variable (the interpreter's
/// reference-count initialization).
std::vector<int> ConsumerCounts(const Program& p) {
  std::vector<int> consumers(p.num_variables(), 0);
  for (const Instruction& ins : p.instructions()) {
    for (const Argument& arg : ins.args) {
      if (arg.kind == Argument::Kind::kVar && VarInRange(p, arg.var)) {
        ++consumers[static_cast<size_t>(arg.var)];
      }
    }
  }
  return consumers;
}

/// Trace events of one plan, sorted back into emission order (UDP transport
/// may reorder datagrams).
std::vector<TraceEvent> SortedByEventId(const std::vector<TraceEvent>& events) {
  std::vector<TraceEvent> sorted = events;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.event < b.event;
                   });
  return sorted;
}

// ---------------------------------------------------------------------------
// ssa-def-before-use
// ---------------------------------------------------------------------------

class DefBeforeUseCheck final : public Check {
 public:
  const char* id() const override { return "ssa-def-before-use"; }
  const char* description() const override {
    return "every variable argument is in range and defined by an earlier "
           "instruction";
  }
  unsigned needs() const override { return kNeedsProgram; }

  void Run(const CheckContext& ctx, std::vector<Diagnostic>* out) const override {
    const Program& p = *ctx.program;
    Emitter emit(id(), out);
    std::vector<bool> defined(p.num_variables(), false);
    for (const Instruction& ins : p.instructions()) {
      for (size_t i = 0; i < ins.args.size(); ++i) {
        const Argument& arg = ins.args[i];
        if (arg.kind != Argument::Kind::kVar) continue;
        if (!VarInRange(p, arg.var)) {
          emit.Emit(Severity::kError, ins.pc, arg.var,
                    StrFormat("argument %zu references out-of-range variable "
                              "id %d (program has %zu variables)",
                              i, arg.var, p.num_variables()));
          continue;
        }
        if (!defined[static_cast<size_t>(arg.var)]) {
          emit.Emit(Severity::kError, ins.pc, arg.var,
                    StrFormat("argument %zu uses %s before its definition", i,
                              VarName(p, arg.var).c_str()),
                    "reorder the plan so the producing instruction precedes "
                    "this consumer");
        }
      }
      for (int r : ins.results) {
        if (VarInRange(p, r)) defined[static_cast<size_t>(r)] = true;
      }
    }
  }
};

// ---------------------------------------------------------------------------
// ssa-single-assignment
// ---------------------------------------------------------------------------

class SingleAssignmentCheck final : public Check {
 public:
  const char* id() const override { return "ssa-single-assignment"; }
  const char* description() const override {
    return "every variable has exactly one defining instruction (SSA)";
  }
  unsigned needs() const override { return kNeedsProgram; }

  void Run(const CheckContext& ctx, std::vector<Diagnostic>* out) const override {
    const Program& p = *ctx.program;
    Emitter emit(id(), out);
    std::vector<int> writer(p.num_variables(), -1);
    for (const Instruction& ins : p.instructions()) {
      for (int r : ins.results) {
        if (!VarInRange(p, r)) {
          emit.Emit(Severity::kError, ins.pc, r,
                    StrFormat("result references out-of-range variable id %d "
                              "(program has %zu variables)",
                              r, p.num_variables()));
          continue;
        }
        int& w = writer[static_cast<size_t>(r)];
        if (w >= 0) {
          emit.Emit(Severity::kError, ins.pc, r,
                    StrFormat("%s assigned a second time (first assignment at "
                              "pc=%d)",
                              VarName(p, r).c_str(), w),
                    "introduce a fresh variable for the second definition");
        } else {
          w = ins.pc;
        }
      }
    }
  }
};

// ---------------------------------------------------------------------------
// dead-instruction
// ---------------------------------------------------------------------------

class DeadInstructionCheck final : public Check {
 public:
  const char* id() const override { return "dead-instruction"; }
  const char* description() const override {
    return "side-effect-free instruction whose results are never consumed";
  }
  unsigned needs() const override { return kNeedsProgram; }

  void Run(const CheckContext& ctx, std::vector<Diagnostic>* out) const override {
    const Program& p = *ctx.program;
    Emitter emit(id(), out);
    std::vector<int> consumers = ConsumerCounts(p);
    for (const Instruction& ins : p.instructions()) {
      if (ins.results.empty()) continue;  // sinks and markers are effects
      const KernelSignature* sig =
          LookupKernelSignature(ins.module, ins.function);
      if (sig == nullptr || !sig->side_effect_free) continue;
      bool any_used = false;
      for (int r : ins.results) {
        if (VarInRange(p, r) && consumers[static_cast<size_t>(r)] > 0) {
          any_used = true;
          break;
        }
      }
      if (any_used) continue;
      // Mid-pipeline dead code is routine — an earlier pass just orphaned
      // the instruction and a later MakeDeadCodePass cleans it up — so it is
      // only worth a note there. From the CLI it is a real hazard.
      Severity severity =
          ctx.in_pipeline ? Severity::kNote : Severity::kWarning;
      emit.Emit(severity, ins.pc,
                ins.results.empty() ? -1 : ins.results[0],
                StrFormat("%s result is never consumed — the instruction is "
                          "dead",
                          ins.FullName().c_str()),
                "optimizer::MakeDeadCodePass removes it");
    }
  }
};

// ---------------------------------------------------------------------------
// kernel-signature
// ---------------------------------------------------------------------------

class KernelSignatureCheck final : public Check {
 public:
  const char* id() const override { return "kernel-signature"; }
  const char* description() const override {
    return "operations resolve to registered kernels and match their "
           "arity and BAT/scalar register shapes";
  }
  unsigned needs() const override { return kNeedsProgram; }

  void Run(const CheckContext& ctx, std::vector<Diagnostic>* out) const override {
    const Program& p = *ctx.program;
    Emitter emit(id(), out);
    for (const Instruction& ins : p.instructions()) {
      if (ctx.registry != nullptr &&
          !ctx.registry->Lookup(ins.module, ins.function).ok()) {
        emit.Emit(Severity::kError, ins.pc, -1,
                  StrFormat("unknown kernel %s — not in the module registry",
                            ins.FullName().c_str()),
                  "register the kernel or fix the operation name");
        continue;
      }
      const KernelSignature* sig =
          LookupKernelSignature(ins.module, ins.function);
      if (sig == nullptr) continue;  // extension kernel; no shape info

      // Arity.
      if (sig->variadic) {
        if (ins.args.size() < static_cast<size_t>(sig->min_args)) {
          emit.Emit(Severity::kError, ins.pc, -1,
                    StrFormat("%s needs at least %d arguments, got %zu",
                              ins.FullName().c_str(), sig->min_args,
                              ins.args.size()));
          continue;
        }
      } else if (ins.args.size() != sig->args.size()) {
        emit.Emit(Severity::kError, ins.pc, -1,
                  StrFormat("%s takes %zu arguments, got %zu",
                            ins.FullName().c_str(), sig->args.size(),
                            ins.args.size()));
        continue;
      }
      if (ins.results.size() != sig->results.size()) {
        emit.Emit(Severity::kError, ins.pc, -1,
                  StrFormat("%s produces %zu results, got %zu",
                            ins.FullName().c_str(), sig->results.size(),
                            ins.results.size()));
        continue;
      }

      // Argument shapes.
      bool saw_bat_arg = false;
      for (size_t i = 0; i < ins.args.size(); ++i) {
        ValueKind want = sig->variadic ? sig->variadic_kind : sig->args[i];
        ValueKind got = ArgKind(p, ins.args[i]);
        if (got == ValueKind::kBat) saw_bat_arg = true;
        if (!Satisfies(got, want)) {
          int var = ins.args[i].kind == Argument::Kind::kVar ? ins.args[i].var
                                                             : -1;
          emit.Emit(Severity::kError, ins.pc, var,
                    StrFormat("argument %zu of %s must be a %s, got %s%s", i,
                              ins.FullName().c_str(), ValueKindName(want),
                              ValueKindName(got),
                              var >= 0
                                  ? (" (" + VarName(p, var) + ")").c_str()
                                  : ""));
        }
      }
      if (sig->needs_bat_arg && !ins.args.empty() && !saw_bat_arg) {
        emit.Emit(Severity::kError, ins.pc, -1,
                  StrFormat("%s needs at least one BAT argument (all "
                            "arguments are scalars)",
                            ins.FullName().c_str()),
                  "use the calc.* scalar variant instead");
      }

      // Result shapes, against the declared variable types.
      for (size_t i = 0; i < ins.results.size(); ++i) {
        if (!VarInRange(p, ins.results[i])) continue;  // ssa checks flag it
        ValueKind want = sig->results[i];
        ValueKind got = ResultKind(p, ins.results[i]);
        if (!Satisfies(got, want)) {
          emit.Emit(Severity::kError, ins.pc, ins.results[i],
                    StrFormat("result %zu of %s is a %s but %s is declared "
                              "%s",
                              i, ins.FullName().c_str(), ValueKindName(want),
                              VarName(p, ins.results[i]).c_str(),
                              p.variable(ins.results[i]).type.ToString().c_str()),
                    "fix the declared variable type");
        }
      }
    }
  }
};

// ---------------------------------------------------------------------------
// bat-lifetime
// ---------------------------------------------------------------------------

class BatLifetimeCheck final : public Check {
 public:
  const char* id() const override { return "bat-lifetime"; }
  const char* description() const override {
    return "BAT registers produced by effectful instructions are consumed "
           "by someone (plan-only; the trace-side producer/consumer "
           "ordering lives in trace-dependency-violation)";
  }
  unsigned needs() const override { return kNeedsProgram; }

  void Run(const CheckContext& ctx, std::vector<Diagnostic>* out) const override {
    const Program& p = *ctx.program;
    Emitter emit(id(), out);
    std::vector<int> consumers = ConsumerCounts(p);

    // A BAT produced by an effectful instruction that nobody reads is
    // allocated, charged to the memory accountant, and released without
    // ever being used. (Pure producers are the dead-instruction check's
    // territory; unused side results of pure ops are normal MAL — the
    // interpreter releases them immediately.) The trace-side half this
    // check used to carry — consumers starting before their producer's
    // done event — re-reported what the happens-before replay proves
    // properly; trace-dependency-violation (checks_hb.cc) is the single
    // source of truth for that now, and the baseline loader aliases old
    // bat-lifetime fingerprints onto it so recorded baselines stay valid.
    for (const Instruction& ins : p.instructions()) {
      const KernelSignature* sig =
          LookupKernelSignature(ins.module, ins.function);
      if (sig != nullptr && sig->side_effect_free) continue;
      for (int r : ins.results) {
        if (!VarInRange(p, r)) continue;
        if (!p.variable(r).type.is_bat) continue;
        if (consumers[static_cast<size_t>(r)] == 0) {
          emit.Emit(Severity::kWarning, ins.pc, r,
                    StrFormat("BAT %s is defined but never consumed — it is "
                              "released without a reader",
                              VarName(p, r).c_str()),
                    "drop the unused result or add its consumer");
        }
      }
    }
  }
};

// ---------------------------------------------------------------------------
// sink-order-key
// ---------------------------------------------------------------------------

class SinkOrderKeyCheck final : public Check {
 public:
  const char* id() const override { return "sink-order-key"; }
  const char* description() const override {
    return "result sinks carry a well-defined ResultColumn::order key so "
           "parallel sink execution keeps columns in statement order";
  }
  unsigned needs() const override { return kNeedsProgram; }

  void Run(const CheckContext& ctx, std::vector<Diagnostic>* out) const override {
    const Program& p = *ctx.program;
    Emitter emit(id(), out);
    size_t sinks = 0;
    for (const Instruction& ins : p.instructions()) {
      const KernelSignature* sig =
          LookupKernelSignature(ins.module, ins.function);
      if (sig != nullptr && sig->is_sink) {
        ++sinks;
        // The order key is engine::ResultOrderKey(pc, arg-index); more
        // arguments than its per-pc key space would collide with the next
        // pc's keys.
        constexpr size_t kKeysPerPc = size_t{1}
                                      << engine::kResultOrderArgBits;
        if (ins.args.size() > kKeysPerPc) {
          emit.Emit(Severity::kError, ins.pc, -1,
                    StrFormat("%s emits %zu result columns but the order key "
                              "only encodes %zu per instruction — output "
                              "order would collide with pc=%d",
                              ins.FullName().c_str(), ins.args.size(),
                              kKeysPerPc, ins.pc + 1),
                    "split the sink into several instructions");
        }
      } else if (sig == nullptr &&
                 LooksLikeResultSink(ins.module, ins.function)) {
        ++sinks;  // intended as a sink, however broken
        emit.Emit(Severity::kError, ins.pc, -1,
                  StrFormat("%s looks like a result sink but carries no "
                            "ResultColumn::order key — sinks run in parallel "
                            "under the dataflow scheduler, so its output "
                            "column order is nondeterministic",
                            ins.FullName().c_str()),
                  "emit through sql.resultSet / io.print, or register the "
                  "kernel with an order key");
      }
    }
    if (sinks == 0 && p.size() > 0) {
      emit.Emit(Severity::kNote, -1, -1,
                "plan has no result sink — execution produces no output");
    }
  }
};

// ---------------------------------------------------------------------------
// dot-contract
// ---------------------------------------------------------------------------

class DotContractCheck final : public Check {
 public:
  const char* id() const override { return "dot-contract"; }
  const char* description() const override {
    return "dot nodes follow the pc N <-> \"nN\" <-> label contract and "
           "edges match the plan's dataflow dependencies";
  }
  unsigned needs() const override { return kNeedsGraph; }

  void Run(const CheckContext& ctx, std::vector<Diagnostic>* out) const override {
    const dot::Graph& g = *ctx.graph;
    Emitter emit(id(), out);

    // Node ids must follow the "n<pc>" convention regardless of whether we
    // have the plan; the trace↔graph join is impossible otherwise.
    for (const dot::GraphNode& node : g.nodes()) {
      int pc = PcFromNodeId(node.id);
      if (pc < 0) {
        emit.Emit(Severity::kError, -1, -1,
                  StrFormat("node \"%s\" does not follow the \"n<pc>\" naming "
                            "convention — trace events cannot be joined to it",
                            Ellipsize(node.id).c_str()));
        continue;
      }
      if (node.attrs.find("label") == node.attrs.end()) {
        emit.Emit(Severity::kWarning, pc, -1,
                  StrFormat("node \"n%d\" has no label attribute — the "
                            "statement text is lost",
                            pc));
      }
      if (ctx.program != nullptr &&
          static_cast<size_t>(pc) >= ctx.program->size()) {
        emit.Emit(Severity::kError, pc, -1,
                  StrFormat("node \"n%d\" is beyond the plan (size %zu)", pc,
                            ctx.program->size()));
      }
    }
    if (ctx.program == nullptr) return;
    const Program& p = *ctx.program;

    // Every pc renders as node "nN" carrying the statement as its label.
    for (const Instruction& ins : p.instructions()) {
      int node_index = g.FindNode(StrFormat("n%d", ins.pc));
      if (node_index < 0) {
        emit.Emit(Severity::kError, ins.pc, -1,
                  StrFormat("plan instruction pc=%d has no dot node \"n%d\"",
                            ins.pc, ins.pc));
        continue;
      }
      const std::string& label = g.node(static_cast<size_t>(node_index)).label();
      std::string stmt = p.InstructionToString(ins);
      if (label != stmt) {
        emit.Emit(Severity::kError, ins.pc, -1,
                  StrFormat("label mismatch: dot says \"%s\" but the plan "
                            "says \"%s\"",
                            Ellipsize(label).c_str(), Ellipsize(stmt).c_str()),
                  "re-emit the dot file from the executed plan");
      }
    }

    // Edges must be exactly the dataflow dependencies (producer -> consumer).
    std::set<std::pair<int, int>> expected;
    std::vector<std::vector<int>> deps = p.BuildDependencies();
    for (size_t pc = 0; pc < deps.size(); ++pc) {
      for (int producer : deps[pc]) {
        expected.emplace(producer, static_cast<int>(pc));
      }
    }
    std::set<std::pair<int, int>> actual;
    for (const dot::GraphEdge& edge : g.edges()) {
      int from = PcFromNodeId(edge.from);
      int to = PcFromNodeId(edge.to);
      if (from < 0 || to < 0) continue;  // ids already flagged above
      actual.emplace(from, to);
    }
    for (const auto& [from, to] : expected) {
      if (actual.find({from, to}) == actual.end()) {
        emit.Emit(Severity::kError, to, -1,
                  StrFormat("dependency edge n%d -> n%d is missing from the "
                            "dot file",
                            from, to));
      }
    }
    for (const auto& [from, to] : actual) {
      if (expected.find({from, to}) == expected.end()) {
        emit.Emit(Severity::kWarning, to, -1,
                  StrFormat("dot edge n%d -> n%d has no matching dataflow "
                            "dependency in the plan",
                            from, to));
      }
    }
  }
};

// ---------------------------------------------------------------------------
// trace-conformance
// ---------------------------------------------------------------------------

class TraceConformanceCheck final : public Check {
 public:
  const char* id() const override { return "trace-conformance"; }
  const char* description() const override {
    return "each executed pc emits exactly one start and one done event, "
           "clocks are monotonic, pcs are in range, statements match";
  }
  unsigned needs() const override { return kNeedsTrace; }

  void Run(const CheckContext& ctx, std::vector<Diagnostic>* out) const override {
    Emitter emit(id(), out);
    std::vector<TraceEvent> events = SortedByEventId(*ctx.trace);

    struct PcInfo {
      int starts = 0;
      int dones = 0;
      bool done_before_start = false;
      bool stmt_mismatch = false;
      std::string stmt;
    };
    std::map<int, PcInfo> per_pc;

    int64_t prev_time = 0;
    bool reported_clock = false;
    for (const TraceEvent& e : events) {
      if (e.time_us < prev_time && !reported_clock) {
        emit.Emit(Severity::kError, e.pc, -1,
                  StrFormat("event %lld timestamp runs backwards (%lld us "
                            "after %lld us) — emission order is broken",
                            static_cast<long long>(e.event),
                            static_cast<long long>(e.time_us),
                            static_cast<long long>(prev_time)),
                  "sort the trace by event sequence number before analysis");
        reported_clock = true;  // one report; later events usually cascade
      }
      prev_time = std::max(prev_time, e.time_us);

      if (e.pc < 0) {
        emit.Emit(Severity::kError, e.pc, -1,
                  StrFormat("event %lld carries negative pc",
                            static_cast<long long>(e.event)));
        continue;
      }
      if (ctx.program != nullptr &&
          static_cast<size_t>(e.pc) >= ctx.program->size()) {
        emit.Emit(Severity::kError, e.pc, -1,
                  StrFormat("event %lld references pc=%d outside the plan "
                            "(size %zu)",
                            static_cast<long long>(e.event), e.pc,
                            ctx.program->size()));
        continue;
      }
      if (ctx.graph != nullptr &&
          ctx.graph->FindNode(StrFormat("n%d", e.pc)) < 0) {
        emit.Emit(Severity::kError, e.pc, -1,
                  StrFormat("event %lld references pc=%d but the dot file "
                            "has no node \"n%d\"",
                            static_cast<long long>(e.event), e.pc, e.pc));
      }

      PcInfo& info = per_pc[e.pc];
      if (e.state == EventState::kStart) {
        ++info.starts;
        info.stmt = e.stmt;
      } else {
        if (info.starts == 0) info.done_before_start = true;
        ++info.dones;
        if (e.usec < 0) {
          emit.Emit(Severity::kError, e.pc, -1,
                    StrFormat("done event %lld reports negative duration "
                              "%lld us",
                              static_cast<long long>(e.event),
                              static_cast<long long>(e.usec)));
        }
      }
      if (ctx.program != nullptr && !info.stmt_mismatch) {
        std::string stmt = ctx.program->InstructionToString(
            ctx.program->instruction(e.pc));
        if (e.stmt != stmt) {
          info.stmt_mismatch = true;
          emit.Emit(Severity::kError, e.pc, -1,
                    StrFormat("statement text diverges from the plan: trace "
                              "says \"%s\", plan says \"%s\"",
                              Ellipsize(e.stmt).c_str(),
                              Ellipsize(stmt).c_str()),
                    "trace and plan come from different compilations");
        }
      }
    }

    for (const auto& [pc, info] : per_pc) {
      if (info.starts == info.dones && info.starts == 1 &&
          !info.done_before_start) {
        continue;
      }
      if (info.done_before_start) {
        emit.Emit(Severity::kError, pc, -1,
                  "done event precedes its start event");
      }
      if (info.starts != info.dones) {
        emit.Emit(Severity::kError, pc, -1,
                  StrFormat("unpaired events: %d start vs %d done — every "
                            "executed instruction emits exactly one of each",
                            info.starts, info.dones),
                  info.dones < info.starts
                      ? "the query may have aborted mid-instruction"
                      : "duplicate done events suggest a double release");
      } else if (info.starts > 1) {
        emit.Emit(Severity::kError, pc, -1,
                  StrFormat("pc executed %d times — the contract is one "
                            "start/done pair per instruction",
                            info.starts));
      }
    }
  }
};

// ---------------------------------------------------------------------------
// trace-span-conformance
// ---------------------------------------------------------------------------

/// Cross-validates the profiler's event stream against the platform's own
/// span tracer: an instruction that emitted a start/done pair must appear as
/// exactly one "kernel" span (same pc, same logical thread id) in the
/// exported platform trace. A mismatch means one of the two observability
/// channels lost or duplicated work — precisely the silent divergence a
/// debugging session must not build on.
class TraceSpanConformanceCheck final : public Check {
 public:
  const char* id() const override { return "trace-span-conformance"; }
  const char* description() const override {
    return "every profiler start/done pc pair is covered by exactly one "
           "kernel span with a matching thread id";
  }
  unsigned needs() const override { return kNeedsTrace | kNeedsSpans; }

  void Run(const CheckContext& ctx, std::vector<Diagnostic>* out) const override {
    Emitter emit(id(), out);

    // Executed instructions according to the profiler: pcs with a done
    // event, keyed to the thread that ran them. (Unpaired events are
    // trace-conformance's findings, not duplicated here.)
    struct PcTrace {
      int dones = 0;
      int thread = 0;
    };
    std::map<int, PcTrace> executed;
    // First start event per pc: the thread contract stamps start and done
    // with the same query-local admission slot, even when work stealing
    // moves the instruction between pool workers.
    std::map<int, int> start_thread;
    for (const TraceEvent& e : *ctx.trace) {
      if (e.pc < 0) continue;
      if (e.state != EventState::kDone) {
        start_thread.emplace(e.pc, e.thread);
        continue;
      }
      PcTrace& t = executed[e.pc];
      ++t.dones;
      t.thread = e.thread;
    }

    struct PcSpans {
      int count = 0;
      int tid = 0;
    };
    std::map<int, PcSpans> kernel_spans;
    for (const obs::SpanRecord& span : *ctx.spans) {
      if (span.cat != "kernel") continue;  // phases/passes have no pc pairing
      if (span.pc < 0) {
        emit.Emit(Severity::kError, -1, -1,
                  StrFormat("kernel span \"%s\" carries no pc — it cannot be "
                            "matched to a profiler event pair",
                            Ellipsize(span.name).c_str()));
        continue;
      }
      PcSpans& s = kernel_spans[span.pc];
      ++s.count;
      s.tid = span.tid;
    }

    for (const auto& [pc, traced] : executed) {
      auto started = start_thread.find(pc);
      if (started != start_thread.end() && started->second != traced.thread) {
        emit.Emit(Severity::kError, pc, -1,
                  StrFormat("start and done events disagree on the thread id "
                            "(%d vs %d) — both must carry the query-local "
                            "admission slot",
                            started->second, traced.thread),
                  "the emitter must stamp the pair with one slot even when "
                  "a stolen task runs on another pool worker");
      }
      auto it = kernel_spans.find(pc);
      int spans = it == kernel_spans.end() ? 0 : it->second.count;
      if (spans != traced.dones) {
        emit.Emit(Severity::kError, pc, -1,
                  StrFormat("profiler saw %d execution(s) but the platform "
                            "trace has %d kernel span(s)",
                            traced.dones, spans),
                  spans < traced.dones
                      ? "the span ring may have overflowed (Tracer::dropped())"
                      : "trace and spans come from different runs");
        continue;
      }
      if (it != kernel_spans.end() && it->second.tid != traced.thread) {
        emit.Emit(Severity::kError, pc, -1,
                  StrFormat("thread id diverges: profiler event says %d, "
                            "kernel span says %d — the span tracer must "
                            "preserve the trace thread contract",
                            traced.thread, it->second.tid));
      }
    }
    // Spans with no profiler pair: the profiler filter may legitimately have
    // suppressed those events, so this direction is only a warning.
    for (const auto& [pc, spans] : kernel_spans) {
      if (executed.find(pc) == executed.end()) {
        emit.Emit(Severity::kWarning, pc, -1,
                  StrFormat("%d kernel span(s) have no profiler start/done "
                            "pair",
                            spans.count),
                  "a profiler filter may have dropped the events");
      }
    }
  }
};

}  // namespace

std::unique_ptr<Check> MakeDefBeforeUseCheck() {
  return std::make_unique<DefBeforeUseCheck>();
}
std::unique_ptr<Check> MakeSingleAssignmentCheck() {
  return std::make_unique<SingleAssignmentCheck>();
}
std::unique_ptr<Check> MakeDeadInstructionCheck() {
  return std::make_unique<DeadInstructionCheck>();
}
std::unique_ptr<Check> MakeKernelSignatureCheck() {
  return std::make_unique<KernelSignatureCheck>();
}
std::unique_ptr<Check> MakeBatLifetimeCheck() {
  return std::make_unique<BatLifetimeCheck>();
}
std::unique_ptr<Check> MakeSinkOrderKeyCheck() {
  return std::make_unique<SinkOrderKeyCheck>();
}
std::unique_ptr<Check> MakeDotContractCheck() {
  return std::make_unique<DotContractCheck>();
}
std::unique_ptr<Check> MakeTraceConformanceCheck() {
  return std::make_unique<TraceConformanceCheck>();
}
std::unique_ptr<Check> MakeTraceSpanConformanceCheck() {
  return std::make_unique<TraceSpanConformanceCheck>();
}

std::vector<std::unique_ptr<Check>> AllChecks() {
  std::vector<std::unique_ptr<Check>> checks;
  checks.push_back(MakeDefBeforeUseCheck());
  checks.push_back(MakeSingleAssignmentCheck());
  checks.push_back(MakeDeadInstructionCheck());
  checks.push_back(MakeKernelSignatureCheck());
  checks.push_back(MakeBatLifetimeCheck());
  checks.push_back(MakeSinkOrderKeyCheck());
  checks.push_back(MakeDotContractCheck());
  checks.push_back(MakeTraceConformanceCheck());
  checks.push_back(MakeTraceSpanConformanceCheck());
  // Pipeline-delivery check (checks_pipe.cc).
  checks.push_back(MakeTraceSequenceGapCheck());
  // Happens-before schedule checks (checks_hb.cc).
  checks.push_back(MakeTraceDependencyViolationCheck());
  checks.push_back(MakeTraceWriteRaceCheck());
  checks.push_back(MakeSpanInterleavingCheck());
  checks.push_back(MakeTraceClockMonotonicityCheck());
  checks.push_back(MakeScheduleSerializationCheck());
  // Abstract-interpretation checks (checks_absint.cc).
  checks.push_back(MakeTypeFlowCheck());
  checks.push_back(MakeCardinalityContradictionCheck());
  checks.push_back(MakeGuaranteedEmptyCheck());
  checks.push_back(MakeMissedConstantFoldCheck());
  checks.push_back(MakeOrderKeyPropagationCheck());
  // Memory-lifetime checks (checks_memory.cc).
  checks.push_back(MakeMemoryBlowupCheck());
  checks.push_back(MakeLiveRangeBloatCheck());
  checks.push_back(MakeFootprintConformanceCheck());
  // Cross-run performance checks (checks_perf.cc).
  checks.push_back(MakeTracePerfRegressionCheck());
  return checks;
}

}  // namespace stetho::analysis
