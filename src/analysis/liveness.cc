#include "analysis/liveness.h"

#include <algorithm>
#include <cstdlib>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "storage/value.h"

namespace stetho::analysis {

namespace {

using storage::DataType;

/// Per-row cost of a string element as Column::MemoryBytes() counts it:
/// sizeof(std::string) + capacity. Short strings sit in the SSO buffer
/// (capacity 15 on libstdc++, 47 B/row total); longer values carry their
/// heap capacity, so 64 covers strings up to 32 chars — the longest the
/// TPC-H text columns produce (p_type tops out around 25). A plan that
/// materializes longer strings can exceed this width; the
/// footprint-conformance check is the empirical guard for that.
constexpr int64_t kStringBytesPerRow = 64;

/// Smallest power of two >= n — the capacity a vector reaches when a
/// kernel appends n rows without calling Reserve first.
int64_t NextPow2(int64_t n) {
  if (n <= 1) return n;
  int64_t c = 1;
  while (c < n) {
    if (c > (kUnboundedBytes >> 1)) return kUnboundedBytes;
    c <<= 1;
  }
  return c;
}

/// Kernels whose output column capacity equals its size: they either
/// Reserve the exact row count up front (projection/sort/pack/batcalc/
/// group/aggr) or build via Slice / MakeOidRange, which size exactly.
/// Everything else (selects, joins, bat.append, unknown extensions) is
/// modeled with power-of-two append growth.
bool HasExactCapacity(const mal::Instruction& ins) {
  if (ins.module == "batcalc" || ins.module == "group" ||
      ins.module == "aggr" || ins.module == "mat") {
    return true;
  }
  if (ins.module == "sql") return ins.function == "tid" || ins.function == "bind";
  if (ins.module == "bat") {
    return ins.function == "mirror" || ins.function == "densebat" ||
           ins.function == "partition";
  }
  if (ins.module == "algebra") {
    return ins.function == "projection" || ins.function == "sort" ||
           ins.function == "slice" || ins.function == "firstn";
  }
  return false;
}

/// Constant int64 operand value, or nullopt.
std::optional<int64_t> ConstIntArg(const mal::Instruction& ins, size_t idx) {
  if (idx >= ins.args.size()) return std::nullopt;
  const mal::Argument& a = ins.args[idx];
  if (a.kind != mal::Argument::Kind::kConst) return std::nullopt;
  auto v = a.constant.ToInt();
  if (!v.ok()) return std::nullopt;
  return v.value();
}

/// Dinic max-flow over a small static graph. Capacities are byte counts;
/// kFlowInf plays infinity (far above any feasible flow, far below int64
/// overflow even after residual updates).
class MaxFlow {
 public:
  static constexpr int64_t kFlowInf = int64_t{1} << 60;

  explicit MaxFlow(int num_nodes) : head_(static_cast<size_t>(num_nodes), -1) {}

  /// Adds edge u->v with capacity `cap`; returns the edge id (its residual
  /// twin is id^1).
  int AddEdge(int u, int v, int64_t cap) {
    int id = static_cast<int>(to_.size());
    to_.push_back(v);
    cap_.push_back(cap);
    next_.push_back(head_[static_cast<size_t>(u)]);
    head_[static_cast<size_t>(u)] = id;
    to_.push_back(u);
    cap_.push_back(0);
    next_.push_back(head_[static_cast<size_t>(v)]);
    head_[static_cast<size_t>(v)] = id + 1;
    return id;
  }

  int64_t cap(int edge) const { return cap_[static_cast<size_t>(edge)]; }
  void set_cap(int edge, int64_t c) { cap_[static_cast<size_t>(edge)] = c; }

  int64_t Run(int s, int t) {
    int64_t flow = 0;
    while (Bfs(s, t)) {
      iter_ = head_;
      int64_t pushed;
      while ((pushed = Dfs(s, t, kFlowInf)) > 0) flow += pushed;
    }
    return flow;
  }

 private:
  bool Bfs(int s, int t) {
    level_.assign(head_.size(), -1);
    std::vector<int> queue{s};
    level_[static_cast<size_t>(s)] = 0;
    for (size_t qi = 0; qi < queue.size(); ++qi) {
      int u = queue[qi];
      for (int e = head_[static_cast<size_t>(u)]; e >= 0;
           e = next_[static_cast<size_t>(e)]) {
        int v = to_[static_cast<size_t>(e)];
        if (cap_[static_cast<size_t>(e)] > 0 && level_[static_cast<size_t>(v)] < 0) {
          level_[static_cast<size_t>(v)] = level_[static_cast<size_t>(u)] + 1;
          queue.push_back(v);
        }
      }
    }
    return level_[static_cast<size_t>(t)] >= 0;
  }

  int64_t Dfs(int u, int t, int64_t limit) {
    if (u == t) return limit;
    for (int& e = iter_[static_cast<size_t>(u)]; e >= 0;
         e = next_[static_cast<size_t>(e)]) {
      int v = to_[static_cast<size_t>(e)];
      if (cap_[static_cast<size_t>(e)] <= 0 ||
          level_[static_cast<size_t>(v)] != level_[static_cast<size_t>(u)] + 1) {
        continue;
      }
      int64_t pushed =
          Dfs(v, t, std::min(limit, cap_[static_cast<size_t>(e)]));
      if (pushed > 0) {
        cap_[static_cast<size_t>(e)] -= pushed;
        cap_[static_cast<size_t>(e ^ 1)] += pushed;
        return pushed;
      }
    }
    return 0;
  }

  std::vector<int> head_, to_, next_, iter_, level_;
  std::vector<int64_t> cap_;
};

}  // namespace

int64_t SaturatingAddBytes(int64_t a, int64_t b) {
  if (a >= kUnboundedBytes - b) return kUnboundedBytes;
  return a + b;
}

int64_t EstimateResultBytes(const mal::Instruction& ins,
                            const std::vector<AbstractValue>& args,
                            const AbstractValue& value) {
  if (value.is_bat != Tri::kTrue) return 0;  // scalars are negligible
  int64_t hi = value.card.hi;
  // bat.partition deliberately keeps the whole-input interval in the
  // abstract domain (signatures.cc); for bytes the ceil(|input|/pieces)
  // slice is what the kernel materializes, and without it every mitosis
  // piece would be charged the full table.
  if (ins.module == "bat" && ins.function == "partition") {
    std::optional<int64_t> pieces = ConstIntArg(ins, 1);
    int64_t in_hi =
        args.empty() ? Interval::kUnbounded : args[0].card.hi;
    if (pieces && *pieces > 0 && in_hi != Interval::kUnbounded) {
      hi = (in_hi + *pieces - 1) / *pieces;
    } else {
      hi = in_hi;
    }
  }
  if (hi == Interval::kUnbounded) return kUnboundedBytes;
  if (hi < 0) hi = 0;
  int64_t capacity = HasExactCapacity(ins) ? hi : NextPow2(hi);
  int64_t bytes = 0;
  if (value.elem == DataType::kString) {
    // Element costs are per stored row (size), the null mask per capacity.
    bytes = SaturatingAddBytes(hi * kStringBytesPerRow, capacity);
  } else {
    // kInt64/kOid/kBool share the int64 backing array; kDouble is 8 B too.
    // Unknown element types get the numeric width — every storable
    // non-string element is 8 B/row. Null mask: 1 B per reserved row.
    bytes = SaturatingAddBytes(capacity * 8, capacity);
  }
  return bytes;
}

MemoryReport AnalyzeMemory(const mal::Program& program) {
  const size_t n = program.size();
  const size_t nvars = program.num_variables();
  MemoryReport report;
  report.result_bytes.assign(n, 0);
  report.live_after.assign(n, 0);

  std::vector<int64_t> var_bytes(nvars, 0);
  std::vector<int64_t> var_card(nvars, 0);
  std::vector<char> var_exact(nvars, 0);
  std::vector<int> def_pc(nvars, -1);
  std::vector<int> last_use(nvars, -1);
  std::vector<int> consumers(nvars, 0);

  // Forward absint sweep: footprint of every result register.
  AnalyzeProgram(
      program, [&](const mal::Instruction& ins, const InstructionFacts& facts) {
        int64_t total = 0;
        for (size_t k = 0; k < ins.results.size(); ++k) {
          int v = ins.results[k];
          if (v < 0 || static_cast<size_t>(v) >= nvars) continue;
          const AbstractValue& val = k < facts.merged_results.size()
                                         ? facts.merged_results[k]
                                         : AbstractValue::Top();
          int64_t bytes = EstimateResultBytes(ins, facts.args, val);
          var_bytes[static_cast<size_t>(v)] = bytes;
          var_card[static_cast<size_t>(v)] =
              val.card.hi == Interval::kUnbounded ? Interval::kUnbounded
                                                  : val.card.hi;
          var_exact[static_cast<size_t>(v)] =
              val.is_bat == Tri::kTrue && val.card.is_exact() ? 1 : 0;
          def_pc[static_cast<size_t>(v)] = ins.pc;
          total = SaturatingAddBytes(total, bytes);
        }
        if (static_cast<size_t>(ins.pc) < n) {
          report.result_bytes[static_cast<size_t>(ins.pc)] = total;
          if (ins.module == "sql" &&
              (ins.function == "bind" || ins.function == "tid")) {
            report.input_bytes = SaturatingAddBytes(report.input_bytes, total);
          }
        }
      });

  // Backward liveness (straight-line SSA: one reverse scan suffices).
  for (size_t pc = 0; pc < n; ++pc) {
    for (const mal::Argument& a : program.instruction(static_cast<int>(pc)).args) {
      if (a.kind != mal::Argument::Kind::kVar) continue;
      if (a.var < 0 || static_cast<size_t>(a.var) >= nvars) continue;
      consumers[static_cast<size_t>(a.var)]++;
      last_use[static_cast<size_t>(a.var)] = static_cast<int>(pc);
    }
  }

  for (size_t v = 0; v < nvars; ++v) {
    if (def_pc[v] < 0 || var_bytes[v] == 0) continue;
    LiveRange r;
    r.var = static_cast<int>(v);
    r.def_pc = def_pc[v];
    r.last_use_pc = last_use[v];
    r.num_consumers = consumers[v];
    r.bytes = var_bytes[v];
    r.card_hi = var_card[v];
    r.exact = var_exact[v] != 0;
    report.ranges.push_back(r);
  }
  std::sort(report.ranges.begin(), report.ranges.end(),
            [](const LiveRange& a, const LiveRange& b) {
              return a.def_pc < b.def_pc;
            });

  // Sequential accountant simulation, mirroring engine RunInstruction:
  // result bytes land (peak candidate), then fully-consumed arguments are
  // released, then consumer-less results are dropped. Unbounded registers
  // are tracked by count so releases stay exact for the bounded part.
  std::vector<int> remaining = consumers;
  int64_t live = 0;
  int unbounded_live = 0;
  auto display = [&]() {
    return unbounded_live > 0 ? kUnboundedBytes : live;
  };
  for (size_t pc = 0; pc < n; ++pc) {
    const mal::Instruction& ins = program.instruction(static_cast<int>(pc));
    for (int v : ins.results) {
      if (v < 0 || static_cast<size_t>(v) >= nvars) continue;
      if (var_bytes[static_cast<size_t>(v)] == kUnboundedBytes) {
        unbounded_live++;
        report.bounded = false;
      } else {
        live = SaturatingAddBytes(live, var_bytes[static_cast<size_t>(v)]);
      }
    }
    if (display() > report.seq_peak_bytes) {
      report.seq_peak_bytes = display();
      report.seq_peak_pc = static_cast<int>(pc);
    }
    for (const mal::Argument& a : ins.args) {
      if (a.kind != mal::Argument::Kind::kVar) continue;
      if (a.var < 0 || static_cast<size_t>(a.var) >= nvars) continue;
      size_t v = static_cast<size_t>(a.var);
      if (remaining[v] > 0 && --remaining[v] == 0) {
        if (var_bytes[v] == kUnboundedBytes) {
          unbounded_live--;
        } else {
          live -= var_bytes[v];
        }
      }
    }
    for (int rv : ins.results) {
      if (rv < 0 || static_cast<size_t>(rv) >= nvars) continue;
      size_t v = static_cast<size_t>(rv);
      if (consumers[v] == 0) {
        if (var_bytes[v] == kUnboundedBytes) {
          unbounded_live--;
        } else {
          live -= var_bytes[v];
        }
      }
    }
    report.live_after[pc] = display();
  }
  return report;
}

int64_t ParallelPeakBound(const mal::Program& program,
                          const MemoryReport& report, int dop) {
  if (dop < 1) dop = 1;
  if (!report.bounded) return kUnboundedBytes;
  const size_t n = program.size();
  if (n == 0) return 0;

  // Forward reachability over the dependency DAG as bitsets. Edges run
  // producer -> consumer, and SSA def-before-use makes every edge go from
  // a lower pc to a higher one, so one reverse scan closes the relation.
  std::vector<std::vector<int>> deps = program.BuildDependencies();
  const size_t words = (n + 63) / 64;
  std::vector<uint64_t> reach(n * words, 0);
  std::vector<std::vector<int>> succ(n);
  for (size_t c = 0; c < deps.size() && c < n; ++c) {
    for (int p : deps[c]) {
      if (p >= 0 && static_cast<size_t>(p) < n) succ[static_cast<size_t>(p)].push_back(static_cast<int>(c));
    }
  }
  for (size_t pc = n; pc-- > 0;) {
    uint64_t* row = &reach[pc * words];
    row[pc / 64] |= uint64_t{1} << (pc % 64);
    for (int s : succ[pc]) {
      const uint64_t* srow = &reach[static_cast<size_t>(s) * words];
      for (size_t w = 0; w < words; ++w) row[w] |= srow[w];
    }
  }
  auto reaches = [&](int from, int to) {
    return (reach[static_cast<size_t>(from) * words + static_cast<size_t>(to) / 64] >>
            (static_cast<size_t>(to) % 64)) & 1;
  };

  // Consumer pcs per variable (only for the consumed heavy ranges).
  std::vector<std::vector<int>> use_pcs(program.num_variables());
  for (size_t pc = 0; pc < n; ++pc) {
    for (const mal::Argument& a : program.instruction(static_cast<int>(pc)).args) {
      if (a.kind == mal::Argument::Kind::kVar && a.var >= 0 &&
          static_cast<size_t>(a.var) < use_pcs.size()) {
        use_pcs[static_cast<size_t>(a.var)].push_back(static_cast<int>(pc));
      }
    }
  }

  // Lifetime poset over consumed ranges: v < w iff every consumer of v
  // strictly reaches def(w) — then v is provably released before w is
  // allocated, under ANY schedule. The registers simultaneously live at
  // any instant form an antichain, so a chain cover bounds the retained
  // peak: an antichain takes at most one element (hence at most the
  // maximum) from each chain.
  std::vector<const LiveRange*> rs;
  for (const LiveRange& r : report.ranges) {
    if (r.num_consumers > 0 && r.bytes > 0) rs.push_back(&r);
  }
  auto precedes = [&](const LiveRange* a, const LiveRange* b) {
    for (int c : use_pcs[static_cast<size_t>(a->var)]) {
      if (c == b->def_pc || !reaches(c, b->def_pc)) return false;
    }
    return true;
  };
  // The exact maximum-weight antichain of this poset bounds the retained
  // bytes: when v < w every consumer of v completed before w was
  // allocated, so the live set at any instant under any schedule is an
  // antichain. The optimum is the LP dual of a fractional chain cover —
  // route bytes(v) units of flow through every element (edge
  // v_in -> v_out with lower bound bytes(v)) along poset relations and
  // minimize total s -> t flow (weighted Dilworth). Min flow with lower
  // bounds: excess transform + saturating super-source/sink max-flow for
  // a feasible circulation, then push back t -> s in the residual.
  int64_t chain_bound = 0;
  int64_t total_weight = 0;
  for (const LiveRange* r : rs) {
    total_weight = SaturatingAddBytes(total_weight, r->bytes);
  }
  if (total_weight < (int64_t{1} << 56)) {
    const int m = static_cast<int>(rs.size());
    // Node ids: 0 = s, 1 = t, 2+2i / 3+2i = element i in/out, then the
    // super source/sink of the lower-bound transform.
    auto in_node = [](int i) { return 2 + 2 * i; };
    auto out_node = [](int i) { return 3 + 2 * i; };
    const int super_s = 2 + 2 * m;
    const int super_t = 3 + 2 * m;
    MaxFlow net(4 + 2 * m);
    const int ts_edge = net.AddEdge(1, 0, MaxFlow::kFlowInf);
    for (int i = 0; i < m; ++i) {
      net.AddEdge(in_node(i), out_node(i), MaxFlow::kFlowInf);
      net.AddEdge(super_s, out_node(i), rs[static_cast<size_t>(i)]->bytes);
      net.AddEdge(in_node(i), super_t, rs[static_cast<size_t>(i)]->bytes);
      net.AddEdge(0, in_node(i), MaxFlow::kFlowInf);
      net.AddEdge(out_node(i), 1, MaxFlow::kFlowInf);
    }
    for (int i = 0; i < m; ++i) {
      for (int j = i + 1; j < m; ++j) {  // def-pc order: only i < j can hold
        if (precedes(rs[static_cast<size_t>(i)], rs[static_cast<size_t>(j)])) {
          net.AddEdge(out_node(i), in_node(j), MaxFlow::kFlowInf);
        }
      }
    }
    net.Run(super_s, super_t);
    int64_t feasible = net.cap(ts_edge ^ 1);  // flow carried by t -> s
    net.set_cap(ts_edge, 0);
    net.set_cap(ts_edge ^ 1, 0);
    chain_bound = feasible - net.Run(1, 0);
  } else {
    // Weights saturate the flow capacities — fall back to a greedy chain
    // partition in def-pc order (sum of per-chain maxima is a valid, if
    // looser, antichain bound).
    std::vector<std::vector<const LiveRange*>> chains;
    for (const LiveRange* r : rs) {
      bool placed = false;
      for (std::vector<const LiveRange*>& chain : chains) {
        if (precedes(chain.back(), r)) {
          chain.push_back(r);
          placed = true;
          break;
        }
      }
      if (!placed) chains.push_back({r});
    }
    for (const std::vector<const LiveRange*>& chain : chains) {
      int64_t heaviest = 0;
      for (const LiveRange* r : chain) heaviest = std::max(heaviest, r->bytes);
      chain_bound = SaturatingAddBytes(chain_bound, heaviest);
    }
  }

  // Consumer-less results live only inside their defining instruction's
  // completion; at most `dop` instructions are in flight, so the dop
  // heaviest such allocations cover every transient.
  std::vector<int64_t> transients(n, 0);
  for (const LiveRange& r : report.ranges) {
    if (r.num_consumers == 0 && r.def_pc >= 0 &&
        static_cast<size_t>(r.def_pc) < n) {
      transients[static_cast<size_t>(r.def_pc)] =
          SaturatingAddBytes(transients[static_cast<size_t>(r.def_pc)], r.bytes);
    }
  }
  std::sort(transients.begin(), transients.end(), std::greater<int64_t>());
  int64_t bound = chain_bound;
  for (size_t k = 0; k < transients.size() && k < static_cast<size_t>(dop); ++k) {
    bound = SaturatingAddBytes(bound, transients[k]);
  }
  return std::max(bound, report.seq_peak_bytes);
}

std::string FormatBytes(int64_t bytes) {
  if (bytes >= kUnboundedBytes) return "unbounded";
  if (bytes < 0) bytes = 0;
  const char* units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double v = static_cast<double>(bytes);
  size_t u = 0;
  while (v >= 1024.0 && u + 1 < sizeof(units) / sizeof(units[0])) {
    v /= 1024.0;
    u++;
  }
  if (u == 0) return StrFormat("%lld B", static_cast<long long>(bytes));
  return StrFormat("%.1f %s", v, units[u]);
}

std::string FormatMemoryReport(const mal::Program& program,
                               const MemoryReport& report, int dop,
                               int top_k) {
  std::string out;
  int64_t par = ParallelPeakBound(program, report, dop);
  out += StrFormat("memory profile: %zu instructions, %zu live ranges\n",
                   program.size(), report.ranges.size());
  out += StrFormat("  input (base columns bound): %s\n",
                   FormatBytes(report.input_bytes).c_str());
  out += StrFormat("  sequential peak: %s at pc %d\n",
                   FormatBytes(report.seq_peak_bytes).c_str(),
                   report.seq_peak_pc);
  out += StrFormat("  parallel bound (dop %d): %s\n", dop,
                   FormatBytes(par).c_str());
  if (!report.bounded) {
    out += "  (some cardinalities are unbounded; peaks saturate)\n";
  }

  // Top-k heaviest live ranges.
  std::vector<LiveRange> heavy = report.ranges;
  std::sort(heavy.begin(), heavy.end(),
            [](const LiveRange& a, const LiveRange& b) {
              return a.bytes > b.bytes;
            });
  if (top_k > 0 && heavy.size() > static_cast<size_t>(top_k)) {
    heavy.resize(static_cast<size_t>(top_k));
  }
  if (!heavy.empty()) out += "  heaviest live ranges:\n";
  for (const LiveRange& r : heavy) {
    const mal::Variable& var = program.variable(r.var);
    const mal::Instruction& def = program.instruction(r.def_pc);
    out += StrFormat(
        "    %-10s %10s  pc %d..%d  %s\n", var.name.c_str(),
        FormatBytes(r.bytes).c_str(), r.def_pc,
        r.last_use_pc < 0 ? r.def_pc : r.last_use_pc, def.FullName().c_str());
  }

  // Per-pc live-byte profile as a coarse sparkline (8 buckets).
  int64_t max_live = 1;
  for (int64_t v : report.live_after) {
    if (v < kUnboundedBytes) max_live = std::max(max_live, v);
  }
  static const char* kBlocks[] = {" ", ".", ":", "-", "=", "+", "*", "#"};
  std::string spark;
  for (int64_t v : report.live_after) {
    size_t idx =
        v >= kUnboundedBytes
            ? 7
            : static_cast<size_t>((v * 7 + max_live - 1) / max_live);
    spark += kBlocks[std::min<size_t>(idx, 7)];
  }
  out += StrFormat("  live bytes by pc (max %s):\n    [%s]\n",
                   FormatBytes(max_live).c_str(), spark.c_str());
  return out;
}

int64_t EnvMemBudgetBytes() {
  const char* env = std::getenv("STETHO_MEM_BUDGET");
  if (env == nullptr || *env == '\0') return 0;
  char* end = nullptr;
  long long v = std::strtoll(env, &end, 10);
  if (end == env || v < 0) return 0;
  int64_t bytes = static_cast<int64_t>(v);
  if (end != nullptr && *end != '\0') {
    switch (*end) {
      case 'k': case 'K': bytes *= int64_t{1} << 10; break;
      case 'm': case 'M': bytes *= int64_t{1} << 20; break;
      case 'g': case 'G': bytes *= int64_t{1} << 30; break;
      default: return 0;
    }
  }
  return bytes;
}

}  // namespace stetho::analysis
