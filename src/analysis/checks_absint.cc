#include <memory>
#include <string>
#include <vector>

#include "analysis/absint.h"
#include "analysis/checks.h"
#include "analysis/emitter.h"
#include "analysis/signatures.h"
#include "common/string_util.h"

namespace stetho::analysis {
namespace {

using mal::Instruction;
using mal::Program;
using storage::DataType;

/// Variable id of result i, or -1 (suits Diagnostic::var).
int ResultVar(const Instruction& ins, size_t i) {
  return i < ins.results.size() ? ins.results[i] : -1;
}

int ArgVar(const Instruction& ins, size_t i) {
  if (i >= ins.args.size()) return -1;
  const mal::Argument& a = ins.args[i];
  return a.kind == mal::Argument::Kind::kVar ? a.var : -1;
}

// ---------------------------------------------------------------------------
// type-flow
// ---------------------------------------------------------------------------

class TypeFlowCheck final : public Check {
 public:
  const char* id() const override { return "type-flow"; }
  const char* description() const override {
    return "element types computed by the kernel transfer functions match "
           "the declared result types and per-argument type constraints";
  }
  unsigned needs() const override { return kNeedsProgram; }

  void Run(const CheckContext& ctx, std::vector<Diagnostic>* out) const override {
    const Program& p = *ctx.program;
    Emitter emit(id(), out);
    AnalyzeProgram(p, [&](const Instruction& ins,
                          const InstructionFacts& facts) {
      const KernelSignature* sig =
          LookupKernelSignature(ins.module, ins.function);

      // Raw transfer result vs declared result type. The raw value is
      // untouched by the declaration, so a disagreement means the plan
      // writer and the kernel disagree about what flows out.
      for (size_t i = 0; i < facts.raw_results.size(); ++i) {
        int r = ResultVar(ins, i);
        if (r < 0 || static_cast<size_t>(r) >= p.num_variables()) continue;
        const mal::MalType& declared = p.variable(r).type;
        const AbstractValue& raw = facts.raw_results[i];
        if (raw.elem_known() && declared.base != DataType::kNull &&
            raw.elem != declared.base) {
          emit.Emit(Severity::kError, ins.pc, r,
                    StrFormat("%s computes %s for result %zu but %s is "
                              "declared %s",
                              ins.FullName().c_str(), DataTypeName(raw.elem),
                              i, VarName(p, r).c_str(),
                              declared.ToString().c_str()),
                    "fix the declared type or the producing operation");
        }
      }
      if (sig == nullptr) return;

      // Per-slot element-type constraints (strings, booleans — slots with
      // no runtime coercion, so a mismatch is a guaranteed kernel error).
      for (size_t i = 0; i < sig->arg_elem.size() && i < facts.args.size();
           ++i) {
        DataType want = sig->arg_elem[i];
        const AbstractValue& got = facts.args[i];
        if (want == DataType::kNull) continue;
        if (got.defined && got.elem_known() && got.elem != want) {
          emit.Emit(Severity::kError, ins.pc, ArgVar(ins, i),
                    StrFormat("argument %zu of %s must be %s, got %s", i,
                              ins.FullName().c_str(), DataTypeName(want),
                              DataTypeName(got.elem)));
        }
      }

      // bat.append / mat.pack concatenate; heterogeneous element types are
      // a runtime TypeError.
      bool concatenates = (ins.module == "bat" && ins.function == "append") ||
                          (ins.module == "mat" && ins.function == "pack");
      if (concatenates && facts.args.size() >= 2) {
        const AbstractValue& first = facts.args[0];
        for (size_t i = 1; i < facts.args.size(); ++i) {
          const AbstractValue& other = facts.args[i];
          if (first.elem_known() && other.elem_known() &&
              first.elem != other.elem) {
            emit.Emit(Severity::kError, ins.pc, ArgVar(ins, i),
                      StrFormat("%s concatenates %s with %s — heterogeneous "
                                "element types fail at run time",
                                ins.FullName().c_str(),
                                DataTypeName(first.elem),
                                DataTypeName(other.elem)));
          }
        }
      }
    });
  }
};

// ---------------------------------------------------------------------------
// cardinality-contradiction
// ---------------------------------------------------------------------------

class CardinalityContradictionCheck final : public Check {
 public:
  const char* id() const override { return "cardinality-contradiction"; }
  const char* description() const override {
    return "argument pairs that must be equal-cardinality BATs (and "
           "candidate-list/column pairs) admit at least one common row count";
  }
  unsigned needs() const override { return kNeedsProgram; }

  void Run(const CheckContext& ctx, std::vector<Diagnostic>* out) const override {
    const Program& p = *ctx.program;
    Emitter emit(id(), out);
    AnalyzeProgram(p, [&](const Instruction& ins,
                          const InstructionFacts& facts) {
      const KernelSignature* sig =
          LookupKernelSignature(ins.module, ins.function);
      if (sig == nullptr) return;

      for (const auto& [ai, bi] : sig->equal_card_args) {
        if (ai < 0 || bi < 0 ||
            static_cast<size_t>(ai) >= facts.args.size() ||
            static_cast<size_t>(bi) >= facts.args.size()) {
          continue;
        }
        const AbstractValue& a = facts.args[static_cast<size_t>(ai)];
        const AbstractValue& b = facts.args[static_cast<size_t>(bi)];
        // Scalars broadcast (batcalc), so only BAT/BAT pairs must zip.
        if (!a.defined || !b.defined || a.is_bat != Tri::kTrue ||
            b.is_bat != Tri::kTrue) {
          continue;
        }
        if (!a.card.Overlaps(b.card)) {
          emit.Emit(Severity::kError, ins.pc, ArgVar(ins, static_cast<size_t>(ai)),
                    StrFormat("%s requires arguments %d and %d to have equal "
                              "cardinality, but their row counts %s and %s "
                              "cannot be equal",
                              ins.FullName().c_str(), ai, bi,
                              a.card.ToString().c_str(),
                              b.card.ToString().c_str()),
                    "one of the two inputs feeds the wrong operation");
        }
      }

      // A candidate list selects positions of a value column, so it can
      // never hold more rows than the column: select/thetaselect/likeselect
      // pair (column 0, candidates 1); projection pairs (candidates 0,
      // column 1).
      int cand = -1;
      int col = -1;
      if (ins.module == "algebra") {
        if (ins.function == "select" || ins.function == "thetaselect" ||
            ins.function == "likeselect") {
          col = 0;
          cand = 1;
        } else if (ins.function == "projection") {
          cand = 0;
          col = 1;
        }
      }
      if (cand >= 0 && static_cast<size_t>(cand) < facts.args.size() &&
          static_cast<size_t>(col) < facts.args.size()) {
        const AbstractValue& c = facts.args[static_cast<size_t>(cand)];
        const AbstractValue& v = facts.args[static_cast<size_t>(col)];
        if (c.defined && v.defined && c.is_bat == Tri::kTrue &&
            v.is_bat == Tri::kTrue && c.card.lo > v.card.hi) {
          emit.Emit(Severity::kError, ins.pc, ArgVar(ins, static_cast<size_t>(cand)),
                    StrFormat("%s candidate list holds at least %lld rows "
                              "but the column it indexes holds at most %lld",
                              ins.FullName().c_str(),
                              static_cast<long long>(c.card.lo),
                              static_cast<long long>(v.card.hi)),
                    "the candidate list belongs to a different column");
        }
      }
    });
  }
};

// ---------------------------------------------------------------------------
// guaranteed-empty
// ---------------------------------------------------------------------------

class GuaranteedEmptyCheck final : public Check {
 public:
  const char* id() const override { return "guaranteed-empty"; }
  const char* description() const override {
    return "a BAT register is provably empty on every execution — the "
           "subplan computing it does no useful work";
  }
  unsigned needs() const override { return kNeedsProgram; }

  void Run(const CheckContext& ctx, std::vector<Diagnostic>* out) const override {
    const Program& p = *ctx.program;
    Emitter emit(id(), out);
    AnalyzeProgram(p, [&](const Instruction& ins,
                          const InstructionFacts& facts) {
      for (size_t i = 0; i < facts.merged_results.size(); ++i) {
        const AbstractValue& v = facts.merged_results[i];
        if (!v.defined || v.is_bat != Tri::kTrue) continue;
        if (v.card.hi != 0) continue;
        emit.Emit(Severity::kWarning, ins.pc, ResultVar(ins, i),
                  StrFormat("%s is empty on every execution (%s produces "
                            "card=%s)",
                            VarName(p, ResultVar(ins, i)).c_str(),
                            ins.FullName().c_str(), v.card.ToString().c_str()),
                  "drop the subplan or fix the predicate/limit producing it");
      }
    });
  }
};

// ---------------------------------------------------------------------------
// missed-constant-fold
// ---------------------------------------------------------------------------

class MissedConstantFoldCheck final : public Check {
 public:
  const char* id() const override { return "missed-constant-fold"; }
  const char* description() const override {
    return "a pure calc.* operation over constant operands survives — "
           "constant folding would remove the instruction";
  }
  unsigned needs() const override { return kNeedsProgram; }

  void Run(const CheckContext& ctx, std::vector<Diagnostic>* out) const override {
    Emitter emit(id(), out);
    AnalyzeProgram(*ctx.program, [&](const Instruction& ins,
                                     const InstructionFacts& facts) {
      if (ins.module != "calc" || ins.results.size() != 1 ||
          ins.args.empty()) {
        return;
      }
      const KernelSignature* sig =
          LookupKernelSignature(ins.module, ins.function);
      if (sig == nullptr || !sig->side_effect_free) return;
      for (const AbstractValue& a : facts.args) {
        if (!a.constant.has_value()) return;
      }
      emit.Emit(Severity::kNote, ins.pc, ResultVar(ins, 0),
                StrFormat("%s has only constant operands — the result is "
                          "compile-time computable",
                          ins.FullName().c_str()),
                "run optimizer::MakeConstantFoldingPass");
    });
  }
};

// ---------------------------------------------------------------------------
// order-key-propagation
// ---------------------------------------------------------------------------

class OrderKeyPropagationCheck final : public Check {
 public:
  const char* id() const override { return "order-key-propagation"; }
  const char* description() const override {
    return "candidate-list argument slots receive ascending, NULL-free "
           "bat[:oid] values (row ids, not data)";
  }
  unsigned needs() const override { return kNeedsProgram; }

  void Run(const CheckContext& ctx, std::vector<Diagnostic>* out) const override {
    const Program& p = *ctx.program;
    Emitter emit(id(), out);
    AnalyzeProgram(p, [&](const Instruction& ins,
                          const InstructionFacts& facts) {
      const KernelSignature* sig =
          LookupKernelSignature(ins.module, ins.function);
      if (sig == nullptr) return;
      for (int slot : sig->candidate_args) {
        if (slot < 0 || static_cast<size_t>(slot) >= facts.args.size()) {
          continue;
        }
        const AbstractValue& v = facts.args[static_cast<size_t>(slot)];
        if (!v.defined || v.is_bat != Tri::kTrue) continue;
        const char* defect = nullptr;
        if (v.elem_known() && v.elem != DataType::kOid) {
          defect = "its element type is not :oid — data values would be "
                   "misread as row ids";
        } else if (v.sorted == Tri::kFalse) {
          defect = "it is provably not ascending";
        } else if (v.nullable == Tri::kTrue) {
          defect = "it provably contains NULLs";
        }
        if (defect == nullptr) continue;
        emit.Emit(Severity::kError, ins.pc, ArgVar(ins, static_cast<size_t>(slot)),
                  StrFormat("argument %d of %s must be a candidate list, but "
                            "%s",
                            slot, ins.FullName().c_str(), defect),
                  "pass the oid selection (sql.tid / algebra.select result) "
                  "instead");
      }
    });
  }
};

}  // namespace

std::unique_ptr<Check> MakeTypeFlowCheck() {
  return std::make_unique<TypeFlowCheck>();
}
std::unique_ptr<Check> MakeCardinalityContradictionCheck() {
  return std::make_unique<CardinalityContradictionCheck>();
}
std::unique_ptr<Check> MakeGuaranteedEmptyCheck() {
  return std::make_unique<GuaranteedEmptyCheck>();
}
std::unique_ptr<Check> MakeMissedConstantFoldCheck() {
  return std::make_unique<MissedConstantFoldCheck>();
}
std::unique_ptr<Check> MakeOrderKeyPropagationCheck() {
  return std::make_unique<OrderKeyPropagationCheck>();
}

}  // namespace stetho::analysis
