// The memory-lifetime check family, built on analysis/liveness.h: the
// static footprint model predicts how many bytes a plan will hold live,
// and these checks turn that prediction into lint findings — a peak that
// exceeds the budget or blows up against the input (memory-blowup), a
// heavy BAT held live long after its last consumer could have run
// (live-range-bloat), and, with a trace, the conformance contract between
// the model and the engine's own live-byte accountant
// (footprint-conformance: the static bounds must dominate the recorded
// peak, and a byte model looser than 2x on the observed schedule is too
// weak to gate admission on).

#include <algorithm>
#include <set>
#include <vector>

#include "analysis/checks.h"
#include "analysis/emitter.h"
#include "analysis/liveness.h"
#include "common/string_util.h"

namespace stetho::analysis {
namespace {

using mal::Program;
using profiler::TraceEvent;

// ---------------------------------------------------------------------------
// memory-blowup
// ---------------------------------------------------------------------------

/// Peaks beyond this multiple of the bytes bound from base tables are a
/// blowup finding even without a configured budget: joins and appends that
/// square the input should be visible before execution.
constexpr int64_t kBlowupFactor = 32;

class MemoryBlowupCheck final : public Check {
 public:
  const char* id() const override { return "memory-blowup"; }
  const char* description() const override {
    return "the predicted sequential memory peak stays within "
           "STETHO_MEM_BUDGET (when set), and no exact-cardinality "
           "register provably costs 32x the bytes bound from base tables";
  }
  unsigned needs() const override { return kNeedsProgram; }

  void Run(const CheckContext& ctx, std::vector<Diagnostic>* out) const override {
    const Program& p = *ctx.program;
    Emitter emit(id(), out);
    MemoryReport report = AnalyzeMemory(p);
    if (!report.bounded) {
      // Name the first unbounded range so the missing annotation is
      // actionable; without a bound, no budget comparison is meaningful.
      for (const LiveRange& r : report.ranges) {
        if (r.bytes == kUnboundedBytes) {
          emit.Emit(Severity::kNote, r.def_pc, r.var,
                    StrFormat("peak footprint is unbounded: %s has no "
                              "cardinality upper bound",
                              VarName(p, r.var).c_str()),
                    "annotate the source cardinality (AnnotateCardinality) "
                    "so the footprint model can bound the plan");
          break;
        }
      }
      return;
    }
    int64_t budget = EnvMemBudgetBytes();
    if (budget > 0 && report.seq_peak_bytes > budget) {
      emit.Emit(Severity::kWarning, report.seq_peak_pc, -1,
                StrFormat("predicted sequential peak %s exceeds the "
                          "STETHO_MEM_BUDGET of %s",
                          FormatBytes(report.seq_peak_bytes).c_str(),
                          FormatBytes(budget).c_str()),
                "run mal_lint --memory for the live-byte profile; the "
                "memory_reorder pass may shrink the peak");
    }
    // Blowup-vs-input only fires on EXACT cardinalities: a worst-case join
    // bound of |L|x|R| is honestly astronomical on any realistic plan, but
    // a register whose interval is a point provably WILL cost its bytes.
    for (const LiveRange& r : report.ranges) {
      if (!r.exact || r.bytes == kUnboundedBytes) continue;
      if (report.input_bytes > 0 &&
          r.bytes / kBlowupFactor > report.input_bytes) {
        emit.Emit(Severity::kWarning, r.def_pc, r.var,
                  StrFormat("%s provably materializes %s (%lld rows) — more "
                            "than %lldx the %s bound from base columns",
                            VarName(p, r.var).c_str(),
                            FormatBytes(r.bytes).c_str(),
                            static_cast<long long>(r.card_hi),
                            static_cast<long long>(kBlowupFactor),
                            FormatBytes(report.input_bytes).c_str()),
                  "look for joins or appends that multiply cardinalities, "
                  "or a wrong cardinality annotation");
      }
    }
  }
};

// ---------------------------------------------------------------------------
// live-range-bloat
// ---------------------------------------------------------------------------

/// Ranges below this footprint are never bloat findings (holding a few KiB
/// longer than necessary is noise, not a hazard).
constexpr int64_t kBloatMinBytes = 64 * 1024;
/// A range must also carry at least 1/kBloatPeakFraction of the sequential
/// peak: plans interleave per-column pipelines in textual order, so small
/// registers routinely outlive their earliest legal release without moving
/// the peak at all. Only ranges that dominate the footprint are findings.
constexpr int64_t kBloatPeakFraction = 8;
/// Minimum number of pcs between where the last consumer could legally run
/// (right after its latest producer other than the bloated register) and
/// where it actually sits.
constexpr int kBloatMinSlack = 8;

class LiveRangeBloatCheck final : public Check {
 public:
  const char* id() const override { return "live-range-bloat"; }
  const char* description() const override {
    return "no heavy BAT stays live far past the point where its last "
           "consumer could legally have run";
  }
  unsigned needs() const override { return kNeedsProgram; }

  void Run(const CheckContext& ctx, std::vector<Diagnostic>* out) const override {
    const Program& p = *ctx.program;
    Emitter emit(id(), out);
    MemoryReport report = AnalyzeMemory(p);
    std::vector<std::vector<int>> deps = p.BuildDependencies();
    // Consumer pcs per variable, to find each register's second-to-last use.
    std::vector<std::vector<int>> use_pcs(p.num_variables());
    for (const mal::Instruction& ins : p.instructions()) {
      for (const mal::Argument& a : ins.args) {
        if (a.kind == mal::Argument::Kind::kVar && a.var >= 0 &&
            static_cast<size_t>(a.var) < use_pcs.size()) {
          use_pcs[static_cast<size_t>(a.var)].push_back(ins.pc);
        }
      }
    }
    for (const LiveRange& r : report.ranges) {
      if (r.bytes == kUnboundedBytes || r.bytes < kBloatMinBytes) continue;
      if (r.bytes < report.seq_peak_bytes / kBloatPeakFraction) continue;
      if (r.last_use_pc < 0) continue;
      if (static_cast<size_t>(r.last_use_pc) >= deps.size()) continue;
      // Earliest pc at which `r` could legally be RELEASED: its last
      // consumer can run no earlier than right after the latest of its
      // other producers, and no earlier than the register's other
      // consumers. Everything between that point and where the last
      // consumer actually sits holds `r` live for no dataflow reason.
      int floor_pc = r.def_pc;
      for (int producer : deps[static_cast<size_t>(r.last_use_pc)]) {
        if (producer != r.def_pc) floor_pc = std::max(floor_pc, producer);
      }
      for (int use : use_pcs[static_cast<size_t>(r.var)]) {
        if (use != r.last_use_pc) floor_pc = std::max(floor_pc, use);
      }
      int earliest = floor_pc + 1;
      int slack = r.last_use_pc - earliest;
      if (slack < kBloatMinSlack) continue;
      // Only a finding when the register is held ACROSS the sequential
      // peak although dataflow would allow releasing it before: that is
      // the case where an earlier last use provably shrinks the peak.
      // Peak-neutral slack is layout noise the optimizer rightly ignores.
      if (!(r.def_pc <= report.seq_peak_pc && earliest < report.seq_peak_pc &&
            report.seq_peak_pc <= r.last_use_pc)) {
        continue;
      }
      // Mid-pipeline the order is transient (memory_reorder has not run
      // yet), so only note it; in a final plan it is a real finding.
      emit.Emit(ctx.in_pipeline ? Severity::kNote : Severity::kWarning,
                r.def_pc, r.var,
                StrFormat("%s (%s) stays live until pc %d but its last "
                          "consumer could run at pc %d — %d instructions "
                          "hold it for no dataflow reason",
                          VarName(p, r.var).c_str(),
                          FormatBytes(r.bytes).c_str(), r.last_use_pc,
                          earliest, slack),
                "let the memory_reorder pass move the consumer next to its "
                "producers");
    }
  }
};

// ---------------------------------------------------------------------------
// footprint-conformance
// ---------------------------------------------------------------------------

/// Replays the byte model over the schedule the trace actually took:
/// result bytes land at each pc's `done` event (the moment the engine's
/// accountant charges them) and a register is released once its last
/// consumer's `done` has passed — exactly the engine's release rule, on
/// the observed completion order instead of program order. Because every
/// per-range bound dominates what the register really cost, this peak
/// dominates the recorded rss peak schedule-for-schedule, and its ratio
/// to the recorded peak measures pure byte-model calibration with no
/// schedule conservatism mixed in.
int64_t ScheduleMatchedPeak(const Program& p, const MemoryReport& report,
                            const std::vector<TraceEvent>& trace) {
  const size_t nvars = p.num_variables();
  std::vector<int64_t> var_bytes(nvars, 0);
  std::vector<int> remaining(nvars, 0);
  std::vector<char> has_range(nvars, 0);
  for (const LiveRange& r : report.ranges) {
    if (r.var < 0 || static_cast<size_t>(r.var) >= nvars) continue;
    var_bytes[static_cast<size_t>(r.var)] = r.bytes;
    remaining[static_cast<size_t>(r.var)] = r.num_consumers;
    has_range[static_cast<size_t>(r.var)] = 1;
  }
  std::vector<const TraceEvent*> dones;
  for (const TraceEvent& e : trace) {
    if (e.state == profiler::EventState::kDone) dones.push_back(&e);
  }
  std::sort(dones.begin(), dones.end(),
            [](const TraceEvent* a, const TraceEvent* b) {
              if (a->time_us != b->time_us) return a->time_us < b->time_us;
              return a->event < b->event;
            });
  int64_t live = 0;
  int64_t peak = 0;
  for (const TraceEvent* e : dones) {
    if (e->pc < 0 || static_cast<size_t>(e->pc) >= p.size()) continue;
    const mal::Instruction& ins = p.instruction(e->pc);
    for (int v : ins.results) {
      if (v >= 0 && static_cast<size_t>(v) < nvars && has_range[static_cast<size_t>(v)]) {
        live = SaturatingAddBytes(live, var_bytes[static_cast<size_t>(v)]);
      }
    }
    peak = std::max(peak, live);
    for (const mal::Argument& a : ins.args) {
      if (a.kind != mal::Argument::Kind::kVar) continue;
      if (a.var < 0 || static_cast<size_t>(a.var) >= nvars) continue;
      size_t v = static_cast<size_t>(a.var);
      if (has_range[v] && remaining[v] > 0 && --remaining[v] == 0) {
        live -= var_bytes[v];
      }
    }
    for (int rv : ins.results) {
      if (rv < 0 || static_cast<size_t>(rv) >= nvars) continue;
      size_t v = static_cast<size_t>(rv);
      if (has_range[v] && remaining[v] == 0) live -= var_bytes[v];
    }
  }
  return peak;
}

class FootprintConformanceCheck final : public Check {
 public:
  const char* id() const override { return "footprint-conformance"; }
  const char* description() const override {
    return "the any-schedule peak bound and the schedule-matched static "
           "peak both dominate the engine-recorded rss peak, and the "
           "schedule-matched peak stays within 2x of it";
  }
  unsigned needs() const override { return kNeedsProgram | kNeedsTrace; }

  void Run(const CheckContext& ctx, std::vector<Diagnostic>* out) const override {
    const Program& p = *ctx.program;
    Emitter emit(id(), out);
    int64_t recorded = 0;
    int recorded_pc = -1;
    std::set<int> threads;
    for (const TraceEvent& e : *ctx.trace) {
      threads.insert(e.thread);
      if (e.rss_bytes > recorded) {
        recorded = e.rss_bytes;
        recorded_pc = e.pc;
      }
    }
    int dop = std::max<int>(1, static_cast<int>(threads.size()));
    MemoryReport report = AnalyzeMemory(p);
    int64_t bound = ParallelPeakBound(p, report, dop);
    if (!report.bounded || bound == kUnboundedBytes) {
      emit.Emit(Severity::kNote, -1, -1,
                "static peak bound is unbounded — conformance against the "
                "recorded rss peak is not checkable",
                "annotate source cardinalities so the model can bound the "
                "plan");
      return;
    }
    if (recorded > bound) {
      // The model claims to dominate every schedule; a recorded peak above
      // it means the byte accounting or the cardinality domain is lying.
      emit.Emit(Severity::kError, recorded_pc, -1,
                StrFormat("engine recorded a live-byte peak of %s but the "
                          "static upper bound (dop %d) is only %s — the "
                          "accountant or the abstract domain is lying",
                          FormatBytes(recorded).c_str(), dop,
                          FormatBytes(bound).c_str()),
                "diff the per-kernel byte model in analysis/liveness.cc "
                "against Column::MemoryBytes()");
      return;
    }
    // Calibration is judged on the schedule the engine actually took —
    // the any-schedule bound must additionally cover adversarial
    // interleavings (all mitosis pieces' intermediates held at once), so
    // its slack against one observed run says nothing about the byte
    // model itself.
    int64_t sched_peak = ScheduleMatchedPeak(p, report, *ctx.trace);
    if (recorded > sched_peak) {
      emit.Emit(Severity::kError, recorded_pc, -1,
                StrFormat("engine recorded a live-byte peak of %s but the "
                          "byte model replayed over the same schedule only "
                          "reaches %s — a per-kernel byte bound is too low",
                          FormatBytes(recorded).c_str(),
                          FormatBytes(sched_peak).c_str()),
                "diff the per-kernel byte model in analysis/liveness.cc "
                "against Column::MemoryBytes()");
    } else if (recorded > 0 && sched_peak / 2 > recorded) {
      // Informational by design: worst-case bounds on selective or
      // join-heavy plans are legitimately loose. CI turns this note into a
      // hard gate on the recorded example artifacts with --fail-on=note,
      // where the schedule-matched peak is expected to stay within 2x.
      emit.Emit(Severity::kNote, report.seq_peak_pc, -1,
                StrFormat("schedule-matched static peak %s is more than 2x "
                          "the recorded peak %s (dop %d) — the byte model "
                          "is too loose to gate admission on",
                          FormatBytes(sched_peak).c_str(),
                          FormatBytes(recorded).c_str(), dop),
                "tighten the cardinality transfer functions or the "
                "capacity model for the kernels in this plan");
    }
  }
};

}  // namespace

std::unique_ptr<Check> MakeMemoryBlowupCheck() {
  return std::make_unique<MemoryBlowupCheck>();
}
std::unique_ptr<Check> MakeLiveRangeBloatCheck() {
  return std::make_unique<LiveRangeBloatCheck>();
}
std::unique_ptr<Check> MakeFootprintConformanceCheck() {
  return std::make_unique<FootprintConformanceCheck>();
}

}  // namespace stetho::analysis
