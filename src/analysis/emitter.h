#ifndef STETHO_ANALYSIS_EMITTER_H_
#define STETHO_ANALYSIS_EMITTER_H_

#include <string>
#include <utility>
#include <vector>

#include "analysis/diagnostic.h"
#include "common/string_util.h"
#include "mal/program.h"

namespace stetho::analysis {

/// Every check stops after this many findings; a closing note records the
/// suppression. Keeps lint output (and pipeline error Statuses) bounded on
/// pathological plans.
inline constexpr size_t kMaxDiagnosticsPerCheck = 64;

/// Bounded diagnostic sink for one check run. Internal to the check
/// implementations (checks.cc, checks_absint.cc).
class Emitter {
 public:
  Emitter(const char* check_id, std::vector<Diagnostic>* out)
      : check_id_(check_id), out_(out) {}

  ~Emitter() {
    if (suppressed_ > 0) {
      Diagnostic d;
      d.severity = Severity::kNote;
      d.check_id = check_id_;
      d.message = StrFormat("%zu further findings suppressed", suppressed_);
      out_->push_back(std::move(d));
    }
  }

  Emitter(const Emitter&) = delete;
  Emitter& operator=(const Emitter&) = delete;

  void Emit(Severity severity, int pc, int var, std::string message,
            std::string fix_hint = "") {
    if (emitted_ >= kMaxDiagnosticsPerCheck) {
      ++suppressed_;
      return;
    }
    ++emitted_;
    Diagnostic d;
    d.severity = severity;
    d.check_id = check_id_;
    d.pc = pc;
    d.var = var;
    d.message = std::move(message);
    d.fix_hint = std::move(fix_hint);
    out_->push_back(std::move(d));
  }

 private:
  const char* check_id_;
  std::vector<Diagnostic>* out_;
  size_t emitted_ = 0;
  size_t suppressed_ = 0;
};

/// Display name of a variable id, tolerating out-of-range ids (malformed
/// plans are exactly what the checks inspect).
inline std::string VarName(const mal::Program& p, int var) {
  if (var < 0 || static_cast<size_t>(var) >= p.num_variables()) {
    return StrFormat("<invalid:%d>", var);
  }
  return p.variable(var).name;
}

}  // namespace stetho::analysis

#endif  // STETHO_ANALYSIS_EMITTER_H_
