#include "analysis/runner.h"

#include <algorithm>
#include <tuple>
#include <utility>

#include "analysis/checks.h"
#include "common/string_util.h"

namespace stetho::analysis {
namespace {

bool NeedsSatisfied(unsigned needs, const CheckContext& ctx) {
  if ((needs & kNeedsProgram) != 0 && ctx.program == nullptr) return false;
  if ((needs & kNeedsGraph) != 0 && ctx.graph == nullptr) return false;
  if ((needs & kNeedsTrace) != 0 && ctx.trace == nullptr) return false;
  if ((needs & kNeedsRegistry) != 0 && ctx.registry == nullptr) return false;
  if ((needs & kNeedsSpans) != 0 && ctx.spans == nullptr) return false;
  if ((needs & kNeedsProfile) != 0 && ctx.profile == nullptr) return false;
  return true;
}

/// Appends a JSON string literal, escaping quotes, backslashes, and control
/// characters (messages can embed statement text).
void AppendJsonString(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\t':
        out->append("\\t");
        break;
      case '\r':
        out->append("\\r");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out->append(StrFormat("\\u%04x", static_cast<unsigned char>(c)));
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

void Runner::Add(std::unique_ptr<Check> check) {
  checks_.push_back(std::move(check));
}

std::vector<Diagnostic> Runner::Run(const CheckContext& context) const {
  std::vector<Diagnostic> diagnostics;
  for (const std::unique_ptr<Check>& check : checks_) {
    if (!NeedsSatisfied(check->needs(), context)) continue;
    check->Run(context, &diagnostics);
  }
  std::stable_sort(diagnostics.begin(), diagnostics.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     return std::make_tuple(-static_cast<int>(a.severity),
                                            a.pc, a.check_id, a.var) <
                            std::make_tuple(-static_cast<int>(b.severity),
                                            b.pc, b.check_id, b.var);
                   });
  return diagnostics;
}

Runner Runner::MakeDefault() {
  Runner runner;
  for (std::unique_ptr<Check>& check : AllChecks()) {
    runner.Add(std::move(check));
  }
  return runner;
}

const Runner& Runner::Default() {
  static const Runner& runner = *new Runner(MakeDefault());
  return runner;
}

std::string FormatDiagnostics(const std::vector<Diagnostic>& diagnostics) {
  std::string out;
  for (const Diagnostic& d : diagnostics) {
    out += d.ToString();
    out += '\n';
  }
  return out;
}

std::string DiagnosticsToJson(const std::vector<Diagnostic>& diagnostics) {
  std::string out = "[";
  for (size_t i = 0; i < diagnostics.size(); ++i) {
    const Diagnostic& d = diagnostics[i];
    if (i > 0) out += ",";
    out += "\n  {\"severity\": ";
    AppendJsonString(SeverityName(d.severity), &out);
    out += ", \"check\": ";
    AppendJsonString(d.check_id, &out);
    out += StrFormat(", \"pc\": %d, \"var\": %d, \"message\": ", d.pc, d.var);
    AppendJsonString(d.message, &out);
    out += ", \"fix_hint\": ";
    AppendJsonString(d.fix_hint, &out);
    out += "}";
  }
  out += diagnostics.empty() ? "]\n" : "\n]\n";
  return out;
}

std::string DiagnosticsToSarif(const std::vector<Diagnostic>& diagnostics,
                               const std::string& artifact_uri) {
  // Rule catalog: unique check ids in first-appearance order, described
  // from the default suite when the id is a built-in check.
  std::vector<std::string> rule_ids;
  for (const Diagnostic& d : diagnostics) {
    if (std::find(rule_ids.begin(), rule_ids.end(), d.check_id) ==
        rule_ids.end()) {
      rule_ids.push_back(d.check_id);
    }
  }
  auto rule_description = [](const std::string& id) -> std::string {
    for (const std::unique_ptr<Check>& check : Runner::Default().checks()) {
      if (id == check->id()) return check->description();
    }
    return "";
  };
  auto rule_index = [&rule_ids](const std::string& id) -> size_t {
    return static_cast<size_t>(
        std::find(rule_ids.begin(), rule_ids.end(), id) - rule_ids.begin());
  };

  std::string out =
      "{\n"
      "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      "  \"version\": \"2.1.0\",\n"
      "  \"runs\": [\n"
      "    {\n"
      "      \"tool\": {\n"
      "        \"driver\": {\n"
      "          \"name\": \"mal_lint\",\n"
      "          \"rules\": [";
  for (size_t i = 0; i < rule_ids.size(); ++i) {
    out += i > 0 ? "," : "";
    out += "\n            {\"id\": ";
    AppendJsonString(rule_ids[i], &out);
    std::string description = rule_description(rule_ids[i]);
    if (!description.empty()) {
      out += ", \"shortDescription\": {\"text\": ";
      AppendJsonString(description, &out);
      out += "}";
    }
    out += "}";
  }
  out += rule_ids.empty() ? "]\n" : "\n          ]\n";
  out +=
      "        }\n"
      "      },\n"
      "      \"results\": [";
  for (size_t i = 0; i < diagnostics.size(); ++i) {
    const Diagnostic& d = diagnostics[i];
    // SARIF levels happen to share our severity names (error/warning/note).
    out += i > 0 ? "," : "";
    out += "\n        {\"ruleId\": ";
    AppendJsonString(d.check_id, &out);
    out += StrFormat(", \"ruleIndex\": %zu, \"level\": ",
                     rule_index(d.check_id));
    AppendJsonString(SeverityName(d.severity), &out);
    out += ", \"message\": {\"text\": ";
    std::string text = d.message;
    if (!d.fix_hint.empty()) text += " (hint: " + d.fix_hint + ")";
    AppendJsonString(text, &out);
    out += "}";
    if (!artifact_uri.empty() || d.pc >= 0) {
      out += ", \"locations\": [{\"physicalLocation\": {";
      bool need_comma = false;
      if (!artifact_uri.empty()) {
        out += "\"artifactLocation\": {\"uri\": ";
        AppendJsonString(artifact_uri, &out);
        out += "}";
        need_comma = true;
      }
      if (d.pc >= 0) {
        if (need_comma) out += ", ";
        // SARIF regions are 1-based (§3.30.5): pc N renders on line N + 1
        // of the plan listing, and statements start in column 1.
        out += StrFormat(
            "\"region\": {\"startLine\": %d, \"startColumn\": 1}", d.pc + 1);
      }
      out += "}}]";
    }
    out += StrFormat(", \"properties\": {\"pc\": %d, \"var\": %d}}", d.pc,
                     d.var);
  }
  out += diagnostics.empty() ? "]\n" : "\n      ]\n";
  out +=
      "    }\n"
      "  ]\n"
      "}\n";
  return out;
}

std::string DiagnosticFingerprint(const Diagnostic& diagnostic) {
  std::string normalized;
  normalized.reserve(diagnostic.message.size());
  bool in_digits = false;
  for (char c : diagnostic.message) {
    if (c >= '0' && c <= '9') {
      if (!in_digits) normalized.push_back('#');
      in_digits = true;
    } else {
      normalized.push_back(c);
      in_digits = false;
    }
  }
  return StrFormat("%s:%d:%s", diagnostic.check_id.c_str(), diagnostic.pc,
                   normalized.c_str());
}

std::string FormatBaseline(const std::vector<Diagnostic>& diagnostics) {
  std::vector<std::string> fingerprints;
  fingerprints.reserve(diagnostics.size());
  for (const Diagnostic& d : diagnostics) {
    fingerprints.push_back(DiagnosticFingerprint(d));
  }
  std::sort(fingerprints.begin(), fingerprints.end());
  fingerprints.erase(std::unique(fingerprints.begin(), fingerprints.end()),
                     fingerprints.end());
  std::string out =
      "# mal_lint baseline: one fingerprint (check:pc:normalized-message) "
      "per line.\n";
  for (const std::string& fp : fingerprints) {
    out += fp;
    out += '\n';
  }
  return out;
}

std::vector<std::string> ParseBaseline(const std::string& text) {
  std::vector<std::string> fingerprints;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) {
      line.pop_back();
    }
    if (line.empty() || line[0] == '#') continue;
    fingerprints.push_back(std::move(line));
    if (eol == text.size()) break;
  }
  return fingerprints;
}

std::vector<Diagnostic> ApplyBaseline(
    std::vector<Diagnostic> diagnostics,
    const std::vector<std::string>& baseline) {
  if (baseline.empty()) return diagnostics;
  auto suppressed = [&baseline](const Diagnostic& d) {
    if (std::find(baseline.begin(), baseline.end(),
                  DiagnosticFingerprint(d)) != baseline.end()) {
      return true;
    }
    // Legacy alias: the trace-side half of bat-lifetime moved into
    // trace-dependency-violation (single source of truth for the
    // happens-before contract). Baselines recorded before the move list
    // the old fingerprint; map today's finding back onto it so those
    // files keep suppressing the same schedule anomaly.
    if (d.check_id == "trace-dependency-violation") {
      Diagnostic legacy = d;
      legacy.check_id = "bat-lifetime";
      legacy.message = StrFormat(
          "started before its producer pc=%d finished — the register it "
          "reads may already be released",
          /*producer=*/0);
      if (std::find(baseline.begin(), baseline.end(),
                    DiagnosticFingerprint(legacy)) != baseline.end()) {
        return true;
      }
    }
    return false;
  };
  diagnostics.erase(
      std::remove_if(diagnostics.begin(), diagnostics.end(), suppressed),
      diagnostics.end());
  return diagnostics;
}

bool AnyAtOrAbove(const std::vector<Diagnostic>& diagnostics,
                  Severity threshold) {
  for (const Diagnostic& d : diagnostics) {
    if (d.severity >= threshold) return true;
  }
  return false;
}

Status DiagnosticsToStatus(const std::vector<Diagnostic>& diagnostics,
                           const std::string& context) {
  size_t errors = CountSeverity(diagnostics, Severity::kError);
  if (errors == 0) return Status::OK();
  // Run() sorts errors first, so front() is the lead finding.
  std::string msg =
      StrFormat("%s: %s", context.c_str(), diagnostics.front().ToString().c_str());
  if (errors > 1) {
    msg += StrFormat(" (+%zu more errors)", errors - 1);
  }
  return Status::Internal(std::move(msg));
}

}  // namespace stetho::analysis
