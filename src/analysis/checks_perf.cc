#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "analysis/checks.h"
#include "analysis/emitter.h"
#include "analysis/perfdiff.h"
#include "common/string_util.h"

namespace stetho::analysis {

using profiler::TraceEvent;

namespace {

/// Individual findings before the rest collapse into one summary line.
constexpr int kMaxDetailed = 8;

// ---------------------------------------------------------------------------
// trace-perf-regression
// ---------------------------------------------------------------------------

/// Compares a recorded trace against the stored cross-run baseline of the
/// same plan shape. A pc regresses when BOTH hold:
///   - ratio: observed / median >= 1.5 (warning) or >= 2.0 (error), and
///   - delta: observed - median >= max(4 * MAD, 10us).
/// The AND keeps the check quiet on re-recordings of an unchanged workload:
/// the store's bucket-center quantiles are within ~4.5%, far below the 1.5x
/// gate, and the MAD/floor term absorbs timer jitter on microsecond-scale
/// kernels. End-to-end makespan gets the same treatment against the
/// total_usec distribution, so a whole-query slowdown with no single guilty
/// pc still fires. No baseline for the shape is a note — a fresh plan shape
/// is information, not a failure.
class TracePerfRegressionCheck final : public Check {
 public:
  const char* id() const override { return "trace-perf-regression"; }
  const char* description() const override {
    return "recorded per-pc durations and makespan stay within "
           "median + max(4*MAD, 10us) and 1.5x/2.0x of the stored cross-run "
           "baseline for this plan shape";
  }
  unsigned needs() const override { return kNeedsTrace | kNeedsProfile; }

  void Run(const CheckContext& ctx,
           std::vector<Diagnostic>* out) const override {
    Emitter emit(id(), out);
    const std::vector<TraceEvent>& trace = *ctx.trace;
    if (trace.empty()) return;

    // Key by the executed plan when we have it (exact contract), else by
    // the trace's own statement text (identical mixing, see perfdiff.h).
    const uint64_t shape_hash = ctx.program != nullptr
                                    ? PlanShapeHash(*ctx.program)
                                    : TraceShapeHash(trace);
    std::shared_ptr<const obs::PlanProfile> baseline =
        ctx.profile->Lookup(shape_hash);
    if (baseline == nullptr || baseline->queries == 0) {
      emit.Emit(Severity::kNote, -1, -1,
                StrFormat("no stored baseline for plan shape %016llx "
                          "(profile holds %zu shapes)",
                          static_cast<unsigned long long>(shape_hash),
                          ctx.profile->size()),
                "record a baseline with `mal_lint --write-profile` or let "
                "the server fold completed runs via STETHO_PROFILE_DIR");
      return;
    }

    const obs::QueryObservation observed = ObservationFromTrace(trace);

    int flagged = 0;
    int64_t worst_delta = 0;
    for (const obs::PcSample& sample : observed.pcs) {
      if (sample.pc < 0 ||
          static_cast<size_t>(sample.pc) >= baseline->pcs.size()) {
        continue;  // shape drift; the hash key normally prevents this
      }
      const obs::RobustStat& stat =
          baseline->pcs[static_cast<size_t>(sample.pc)].usec;
      if (stat.count() == 0) continue;
      Severity severity;
      std::string detail;
      if (!Regresses(sample.usec, stat, &severity, &detail)) continue;
      ++flagged;
      worst_delta =
          std::max(worst_delta,
                   sample.usec - static_cast<int64_t>(stat.Median()));
      if (flagged <= kMaxDetailed) {
        std::string stmt =
            ctx.program != nullptr &&
                    static_cast<size_t>(sample.pc) < ctx.program->size()
                ? ctx.program->InstructionToString(
                      ctx.program->instruction(sample.pc))
                : "";
        if (stmt.size() > 48) stmt = stmt.substr(0, 45) + "...";
        emit.Emit(severity, sample.pc, -1,
                  StrFormat("instruction ran %lldus against a baseline of "
                            "%s over %lld runs%s%s",
                            static_cast<long long>(sample.usec),
                            detail.c_str(),
                            static_cast<long long>(stat.count()),
                            stmt.empty() ? "" : " — ", stmt.c_str()),
                  "a data-dependent blowup, a lost optimization, or "
                  "interference on this kernel; `stethoscope diff` against "
                  "a baseline trace localizes the change");
      }
    }
    if (flagged > kMaxDetailed) {
      emit.Emit(Severity::kWarning, -1, -1,
                StrFormat("%d regressed instructions in total (first %d "
                          "reported individually; worst delta %+lldus)",
                          flagged, kMaxDetailed,
                          static_cast<long long>(worst_delta)),
                "");
    }

    // End-to-end: the trace's makespan against the folded total_usec
    // distribution. Catches a uniformly slower run (every pc a little
    // worse, none past its own gate) — and stays silent when a single
    // injected pc already explains the drift only if the totals gate
    // independently clears.
    if (baseline->total_usec.count() > 0 && observed.total_usec > 0) {
      Severity severity;
      std::string detail;
      if (Regresses(observed.total_usec, baseline->total_usec, &severity,
                    &detail)) {
        emit.Emit(severity, -1, -1,
                  StrFormat("query makespan %lldus against a baseline of %s "
                            "over %lld runs",
                            static_cast<long long>(observed.total_usec),
                            detail.c_str(),
                            static_cast<long long>(
                                baseline->total_usec.count())),
                  "the whole schedule slowed down; check the critical-path "
                  "delta in `stethoscope diff` and the admission metrics "
                  "for contention");
      }
    }
  }

 private:
  /// Both gates (ratio x absolute delta) as documented on the class.
  static bool Regresses(int64_t observed_usec, const obs::RobustStat& stat,
                        Severity* severity, std::string* detail) {
    const double median = stat.Median();
    const double mad = stat.Mad();
    const double floor = std::max(4.0 * mad, 10.0);
    const double observed = static_cast<double>(observed_usec);
    if (observed - median < floor) return false;
    const double ratio = observed / std::max(1.0, median);
    if (ratio < 1.5) return false;
    *severity = ratio >= 2.0 ? Severity::kError : Severity::kWarning;
    *detail = StrFormat("median %.0fus (MAD %.0fus, %.2fx)", median, mad,
                        ratio);
    return true;
  }
};

}  // namespace

std::unique_ptr<Check> MakeTracePerfRegressionCheck() {
  return std::make_unique<TracePerfRegressionCheck>();
}

}  // namespace stetho::analysis
