#ifndef STETHO_ANALYSIS_LIVENESS_H_
#define STETHO_ANALYSIS_LIVENESS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/absint.h"
#include "mal/program.h"

namespace stetho::analysis {

/// Static memory-lifetime analysis: the third pillar of the static stack
/// after value flow (absint.h) and schedule flow (hb.h). A backward SSA
/// liveness pass over the straight-line plan computes each BAT register's
/// live range [def_pc, last_use_pc] and an upper bound on its footprint in
/// bytes, derived from the abstract domain's saturating cardinality
/// intervals times the element width — modeling exactly what
/// engine::Register::MemoryBytes() (i.e. storage::Column::MemoryBytes())
/// will report: capacity-based backing arrays (kernels that append without
/// Reserve round up to the next power of two), one null-mask byte per
/// reserved row, and sizeof(std::string) + SSO capacity per string row.
///
/// From the per-range bytes the analysis derives two peak bounds:
///  - the sequential peak: an exact simulation of the interpreter's
///    live-byte accountant along program order (result bytes land before
///    fully-consumed arguments are released, matching RunInstruction), and
///  - a dop-aware worst-case bound over every legal dataflow schedule
///    (ParallelPeakBound): the registers live at any instant form an
///    antichain of the lifetime poset, so the exact maximum-weight
///    antichain (computed by the weighted-Dilworth min-flow dual) bounds
///    the retained bytes, plus the dop heaviest per-instruction
///    allocations cover in-flight transients.
///
/// Consumers: `mal_lint --memory`, the memory-blowup / live-range-bloat /
/// footprint-conformance checks (checks_memory.cc), the optimizer's
/// memory_reorder pass, and server-side budgeted admission.

/// Sentinel footprint for values whose cardinality interval is unbounded
/// (int64 max); saturating arithmetic keeps it absorbing.
inline constexpr int64_t kUnboundedBytes = 0x7fffffffffffffff;

/// a + b with saturation at kUnboundedBytes.
int64_t SaturatingAddBytes(int64_t a, int64_t b);

/// Upper bound on the bytes Column::MemoryBytes() can report for a BAT
/// described by `value`, defined by instruction `ins` whose argument facts
/// are `args`. Scalars cost 0; an unbounded cardinality costs
/// kUnboundedBytes. The defining kernel decides the capacity model
/// (exact Reserve vs power-of-two append growth) and bat.partition is
/// special-cased to its ceil(|input| / pieces) slice.
int64_t EstimateResultBytes(const mal::Instruction& ins,
                            const std::vector<AbstractValue>& args,
                            const AbstractValue& value);

/// One BAT register's live range and modeled footprint.
struct LiveRange {
  int var = -1;           ///< variable id
  int def_pc = -1;        ///< producing instruction
  int last_use_pc = -1;   ///< last consuming pc; -1 = never consumed
  int num_consumers = 0;  ///< argument references across the plan
  int64_t bytes = 0;      ///< modeled footprint (kUnboundedBytes = unknown)
  int64_t card_hi = 0;    ///< cardinality upper bound the bytes came from
  /// True when the cardinality interval is a point: `bytes` is then what
  /// the register WILL cost, not a worst case. Blowup findings key off
  /// this — worst-case join bounds are honestly astronomical, exact ones
  /// are provable.
  bool exact = false;
};

/// Result of AnalyzeMemory over one plan.
struct MemoryReport {
  /// Live range per BAT variable with a nonzero modeled footprint,
  /// ordered by def_pc.
  std::vector<LiveRange> ranges;
  /// Per-pc bytes the instruction's results add when it retires.
  std::vector<int64_t> result_bytes;
  /// Per-pc modeled live bytes after the instruction retires and its
  /// fully-consumed arguments are released (sequential program order).
  std::vector<int64_t> live_after;
  /// Peak of the sequential accountant simulation and where it happens.
  int64_t seq_peak_bytes = 0;
  int seq_peak_pc = -1;
  /// Bytes bound from base tables (sql.bind / sql.tid reads) — the "input
  /// size" a blowup is measured against.
  int64_t input_bytes = 0;
  /// False when any live range's cardinality is unbounded; the peaks are
  /// then kUnboundedBytes and only relative statements hold.
  bool bounded = true;
};

/// Runs the forward absint sweep + backward liveness and returns the
/// per-range footprints and the sequential peak profile.
MemoryReport AnalyzeMemory(const mal::Program& program);

/// Upper bound on the live-byte peak under ANY schedule the dataflow
/// scheduler may choose with `dop` worker slots. Sound (never below the
/// engine-recorded peak when the cardinality domain holds): the exact
/// maximum-weight antichain of the lifetime poset bounds the retained
/// registers, and the dop heaviest single-instruction allocations cover
/// the consumer-less transients. dop < 1 is clamped to 1; returns
/// kUnboundedBytes when the report is unbounded.
int64_t ParallelPeakBound(const mal::Program& program,
                          const MemoryReport& report, int dop);

/// Human-readable profile: totals, sequential peak, parallel bound at
/// `dop`, per-pc live-byte sparkline and the top_k heaviest live ranges.
std::string FormatMemoryReport(const mal::Program& program,
                               const MemoryReport& report, int dop,
                               int top_k = 5);

/// "1.5 KiB" / "3.2 MiB" / "unbounded" — shared by the report printer and
/// the memory checks' diagnostics.
std::string FormatBytes(int64_t bytes);

/// The STETHO_MEM_BUDGET environment variable parsed as a byte count
/// (plain integer, optional k/m/g suffix = KiB/MiB/GiB); 0 when unset or
/// unparseable (= no budget).
int64_t EnvMemBudgetBytes();

}  // namespace stetho::analysis

#endif  // STETHO_ANALYSIS_LIVENESS_H_
