#ifndef STETHO_ANALYSIS_CHECK_H_
#define STETHO_ANALYSIS_CHECK_H_

#include <vector>

#include "analysis/diagnostic.h"
#include "dot/graph.h"
#include "engine/kernel.h"
#include "mal/program.h"
#include "obs/profile_store.h"
#include "obs/span.h"
#include "profiler/event.h"

namespace stetho::analysis {

/// Everything a check may inspect. All pointers are optional and borrowed;
/// checks declare what they need via Check::needs() and the Runner skips a
/// check whose required inputs are absent. A check may still use inputs it
/// did not declare when they happen to be present (e.g. the trace check
/// cross-validates statement text only when a program is supplied).
struct CheckContext {
  const mal::Program* program = nullptr;
  const dot::Graph* graph = nullptr;
  const std::vector<profiler::TraceEvent>* trace = nullptr;
  const engine::ModuleRegistry* registry = nullptr;
  /// Platform spans (obs tracer snapshot or a parsed Chrome trace export);
  /// lets checks cross-validate the profiler's event stream against the
  /// platform's own self-observation.
  const std::vector<obs::SpanRecord>* spans = nullptr;
  /// Cross-run performance baselines (per-pc robust statistics keyed by
  /// plan-shape hash); lets checks compare a recorded trace against the
  /// committed profile of past runs of the same plan shape.
  const obs::ProfileStore* profile = nullptr;
  /// True when the optimizer pipeline lints between passes. Checks may relax
  /// severities for states that are routine mid-rewrite (e.g. dead code a
  /// later pass removes) but hazards in a final plan.
  bool in_pipeline = false;
};

/// Bitmask of CheckContext fields a check requires to run at all.
enum CheckInputs : unsigned {
  kNeedsProgram = 1u << 0,
  kNeedsGraph = 1u << 1,
  kNeedsTrace = 1u << 2,
  kNeedsRegistry = 1u << 3,
  kNeedsSpans = 1u << 4,
  kNeedsProfile = 1u << 5,
};

/// One pluggable static-analysis rule over plans, plan graphs, and traces.
/// Implementations are stateless and const: the same instance may run from
/// several threads (the optimizer pipeline shares one Runner).
class Check {
 public:
  virtual ~Check() = default;

  /// Stable kebab-case identifier, e.g. "ssa-def-before-use". Appears in
  /// diagnostics, pipeline errors, and mal_lint output.
  virtual const char* id() const = 0;

  /// One-line human description for catalogs (`mal_lint --list-checks`).
  virtual const char* description() const = 0;

  /// OR of CheckInputs bits; the Runner only invokes Run() when every
  /// required context field is non-null.
  virtual unsigned needs() const = 0;

  /// Appends findings to `out`. Must not mutate the context.
  virtual void Run(const CheckContext& context,
                   std::vector<Diagnostic>* out) const = 0;
};

}  // namespace stetho::analysis

#endif  // STETHO_ANALYSIS_CHECK_H_
