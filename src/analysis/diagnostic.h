#ifndef STETHO_ANALYSIS_DIAGNOSTIC_H_
#define STETHO_ANALYSIS_DIAGNOSTIC_H_

#include <string>
#include <vector>

namespace stetho::analysis {

/// How bad a finding is. Errors break the trace↔graph↔plan contract (or the
/// plan itself) and fail the optimizer pipeline; warnings are hazards worth
/// fixing; notes are informational.
enum class Severity {
  kNote = 0,
  kWarning = 1,
  kError = 2,
};

/// Canonical lower-case name: "note", "warning", "error".
const char* SeverityName(Severity severity);

/// One finding produced by an analysis::Check. Location is given in plan
/// coordinates: `pc` indexes the instruction (and therefore dot node "n<pc>"
/// and the trace events carrying that pc), `var` the MAL variable involved.
/// Either may be -1 when the finding concerns the artifact as a whole.
struct Diagnostic {
  Severity severity = Severity::kError;
  std::string check_id;   ///< stable id of the emitting check, e.g. "ssa-def-before-use"
  int pc = -1;            ///< offending instruction, -1 = whole plan/trace
  int var = -1;           ///< offending variable id, -1 = not variable-specific
  std::string message;    ///< what is wrong
  std::string fix_hint;   ///< optional: how to repair it

  /// Renders "error[ssa-def-before-use] pc=3 var=X_7: <message> (hint: ...)".
  std::string ToString() const;

  bool operator==(const Diagnostic& other) const = default;
};

/// True when any diagnostic is an error.
bool HasErrors(const std::vector<Diagnostic>& diagnostics);

/// Counts diagnostics at exactly `severity`.
size_t CountSeverity(const std::vector<Diagnostic>& diagnostics,
                     Severity severity);

}  // namespace stetho::analysis

#endif  // STETHO_ANALYSIS_DIAGNOSTIC_H_
