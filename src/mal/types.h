#ifndef STETHO_MAL_TYPES_H_
#define STETHO_MAL_TYPES_H_

#include <string>

#include "storage/value.h"

namespace stetho::mal {

/// Type of a MAL variable: either a scalar (:lng, :dbl, :str, :bit, :oid,
/// :void) or a BAT over a scalar element type (bat[:lng]...). kNull doubles
/// as :void for result-less statements.
struct MalType {
  storage::DataType base = storage::DataType::kNull;
  bool is_bat = false;

  static MalType Void() { return MalType{storage::DataType::kNull, false}; }
  static MalType Scalar(storage::DataType t) { return MalType{t, false}; }
  static MalType Bat(storage::DataType elem) { return MalType{elem, true}; }

  bool is_void() const { return !is_bat && base == storage::DataType::kNull; }

  /// Renders MAL syntax: ":lng", ":void", "bat[:oid]".
  std::string ToString() const;

  bool operator==(const MalType& other) const {
    return base == other.base && is_bat == other.is_bat;
  }
  bool operator!=(const MalType& other) const { return !(*this == other); }
};

/// Parses ":lng" / "bat[:dbl]" style type syntax; ParseError on malformed
/// input.
stetho::Result<MalType> ParseMalType(const std::string& text);

}  // namespace stetho::mal

#endif  // STETHO_MAL_TYPES_H_
