#include "mal/parser.h"

#include <cctype>
#include <cstring>

#include "common/string_util.h"

namespace stetho::mal {
namespace {

using storage::DataType;
using storage::Value;

/// Character-cursor scanner over the MAL listing.
class Scanner {
 public:
  explicit Scanner(const std::string& text) : text_(text) {}

  void SkipSpace() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '#') {  // comment to end of line (kept for pragma recovery)
        size_t start = pos_ + 1;
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
        comments_.push_back(text_.substr(start, pos_ - start));
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else {
        break;
      }
    }
  }

  bool AtEnd() {
    SkipSpace();
    return pos_ >= text_.size();
  }

  char Peek() {
    SkipSpace();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(const char* word) {
    SkipSpace();
    size_t len = std::strlen(word);
    if (text_.compare(pos_, len, word) == 0) {
      size_t end = pos_ + len;
      if (end >= text_.size() || !IsIdentChar(text_[end])) {
        pos_ = end;
        return true;
      }
    }
    return false;
  }

  /// Reads an identifier (letters, digits, '_').
  Result<std::string> ReadIdent() {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < text_.size() && IsIdentChar(text_[pos_])) ++pos_;
    if (pos_ == start) {
      return Status::ParseError(
          StrFormat("expected identifier at offset %zu", pos_));
    }
    return text_.substr(start, pos_ - start);
  }

  /// Reads a `:type` or `:bat[:type]` annotation starting at the cursor.
  Result<MalType> ReadType() {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != ':') {
      return Status::ParseError(
          StrFormat("expected type annotation at offset %zu", pos_));
    }
    ++pos_;  // ':'
    return ReadTypeBody();
  }

  /// Reads the part of a type annotation after the leading ':' has been
  /// consumed: "bat[:elem]" or a bare scalar type name.
  Result<MalType> ReadTypeBody() {
    SkipSpace();
    size_t start = pos_;
    if (text_.compare(pos_, 4, "bat[") == 0) {
      while (pos_ < text_.size() && text_[pos_] != ']') ++pos_;
      if (pos_ >= text_.size()) return Status::ParseError("unterminated bat[ type");
      ++pos_;  // ']'
      return ParseMalType(text_.substr(start, pos_ - start));
    }
    while (pos_ < text_.size() && IsIdentChar(text_[pos_])) ++pos_;
    if (pos_ == start) {
      return Status::ParseError(
          StrFormat("expected type name at offset %zu", pos_));
    }
    return ParseMalType(":" + text_.substr(start, pos_ - start));
  }

  /// Reads a literal: number (int/float/oid), string, true/false, nil.
  Result<Value> ReadLiteral() {
    SkipSpace();
    if (pos_ >= text_.size()) return Status::ParseError("expected literal at end of input");
    char c = text_[pos_];
    if (c == '"') {
      ++pos_;
      std::string out;
      while (pos_ < text_.size() && text_[pos_] != '"') {
        if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) ++pos_;
        out.push_back(text_[pos_]);
        ++pos_;
      }
      if (pos_ >= text_.size()) return Status::ParseError("unterminated string literal");
      ++pos_;  // closing quote
      return Value::String(std::move(out));
    }
    if (ConsumeWord("true")) return Value::Bool(true);
    if (ConsumeWord("false")) return Value::Bool(false);
    if (ConsumeWord("nil") || ConsumeWord("NULL")) return Value::Null();
    // Number: [-]digits[.digits][eE...] optionally followed by @0 (oid).
    size_t start = pos_;
    if (c == '-' || c == '+') ++pos_;
    bool is_float = false;
    while (pos_ < text_.size()) {
      char d = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(d))) {
        ++pos_;
      } else if (d == '.' || d == 'e' || d == 'E') {
        is_float = true;
        ++pos_;
        if (d != '.' && pos_ < text_.size() &&
            (text_[pos_] == '+' || text_[pos_] == '-')) {
          ++pos_;
        }
      } else {
        break;
      }
    }
    if (pos_ == start) {
      return Status::ParseError(
          StrFormat("expected literal at offset %zu ('%c')", start, c));
    }
    std::string num = text_.substr(start, pos_ - start);
    if (pos_ + 1 < text_.size() && text_[pos_] == '@' && text_[pos_ + 1] == '0') {
      pos_ += 2;
      STETHO_ASSIGN_OR_RETURN(int64_t v, ParseInt64(num));
      return Value::Oid(static_cast<uint64_t>(v));
    }
    if (is_float) {
      STETHO_ASSIGN_OR_RETURN(double v, ParseDouble(num));
      return Value::Double(v);
    }
    STETHO_ASSIGN_OR_RETURN(int64_t v, ParseInt64(num));
    return Value::Int(v);
  }

  size_t pos() const { return pos_; }

  /// Every comment body encountered so far, in source order.
  const std::vector<std::string>& comments() const { return comments_; }

 private:
  static bool IsIdentChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
  }

  const std::string& text_;
  size_t pos_ = 0;
  std::vector<std::string> comments_;
};

/// Re-attaches cardinality intervals serialized by Program::ToString as
/// "# card <var> <lo>..<hi>" pragma comments. Runs after the full listing is
/// parsed so pragmas may precede the statements that define their variables.
/// Malformed pragmas and unknown variables are ignored — comments remain
/// free-form text, never a parse error.
void ApplyCardinalityPragmas(const std::vector<std::string>& comments,
                             Program* program) {
  for (const std::string& comment : comments) {
    std::vector<std::string> tokens = SplitAndTrim(comment, ' ');
    if (tokens.size() != 3 || tokens[0] != "card") continue;
    int var = program->FindVariable(tokens[1]);
    if (var < 0) continue;
    size_t dots = tokens[2].find("..");
    if (dots == std::string::npos) continue;
    auto lo = ParseInt64(tokens[2].substr(0, dots));
    auto hi = ParseInt64(tokens[2].substr(dots + 2));
    if (!lo.ok() || !hi.ok()) continue;
    program->AnnotateCardinality(var, lo.value(), hi.value());
  }
}

/// Resolves `name` in the program's variable table, creating an untyped
/// variable if unseen (tolerant mode for hand-written listings).
int ResolveVariable(Program* program, const std::string& name, MalType type) {
  int id = program->FindVariable(name);
  if (id >= 0) return id;
  return program->AddNamedVariable(name, type);
}

/// Parses "name[:type]" into a variable id.
Result<int> ParseTypedVariable(Scanner* scan, Program* program) {
  STETHO_ASSIGN_OR_RETURN(std::string name, scan->ReadIdent());
  MalType type = MalType::Void();
  if (scan->Peek() == ':') {
    STETHO_ASSIGN_OR_RETURN(type, scan->ReadType());
  }
  return ResolveVariable(program, name, type);
}

Status ParseStatement(Scanner* scan, Program* program) {
  std::vector<int> results;
  std::vector<Argument> args;

  // Lookahead: statement either starts with '(' (multi-assign), or with an
  // identifier that is followed by ':='/'.':
  if (scan->Consume('(')) {
    while (true) {
      STETHO_ASSIGN_OR_RETURN(int var, ParseTypedVariable(scan, program));
      results.push_back(var);
      if (scan->Consume(',')) continue;
      break;
    }
    if (!scan->Consume(')')) return Status::ParseError("expected ')' after result list");
    if (!(scan->Consume(':') && scan->Consume('='))) {
      return Status::ParseError("expected ':=' after result list");
    }
  }

  STETHO_ASSIGN_OR_RETURN(std::string first, scan->ReadIdent());
  std::string module;
  std::string function;
  if (results.empty() && scan->Peek() != '.') {
    // "X_3:bat[:oid] := module.function(...)" — `first` was the result var.
    MalType type = MalType::Void();
    if (scan->Peek() == ':') {
      // Could be ':=' (untyped result) or a ':type' annotation followed by
      // ':='. Disambiguate after consuming the ':': '=' means assignment.
      scan->Consume(':');
      if (!scan->Consume('=')) {
        STETHO_ASSIGN_OR_RETURN(type, scan->ReadTypeBody());
        if (!(scan->Consume(':') && scan->Consume('='))) {
          return Status::ParseError("expected ':=' after typed result");
        }
      }
      results.push_back(ResolveVariable(program, first, type));
      STETHO_ASSIGN_OR_RETURN(module, scan->ReadIdent());
    } else {
      return Status::ParseError(StrFormat(
          "expected ':=' or '.' after identifier '%s'", first.c_str()));
    }
  } else {
    module = first;
  }

  if (!results.empty() && module.empty()) {
    STETHO_ASSIGN_OR_RETURN(module, scan->ReadIdent());
  }
  if (!scan->Consume('.')) return Status::ParseError("expected '.' in call");
  STETHO_ASSIGN_OR_RETURN(function, scan->ReadIdent());
  if (!scan->Consume('(')) return Status::ParseError("expected '(' in call");
  if (!scan->Consume(')')) {
    while (true) {
      char c = scan->Peek();
      if (c == 'X' || std::isalpha(static_cast<unsigned char>(c))) {
        // Could be a variable or a word literal (true/false/nil).
        size_t save = scan->pos();
        STETHO_ASSIGN_OR_RETURN(std::string word, scan->ReadIdent());
        if (word == "true") {
          args.push_back(Argument::Const(Value::Bool(true)));
        } else if (word == "false") {
          args.push_back(Argument::Const(Value::Bool(false)));
        } else if (word == "nil" || word == "NULL") {
          args.push_back(Argument::Const(Value::Null()));
        } else {
          (void)save;
          int id = program->FindVariable(word);
          if (id < 0) {
            id = program->AddNamedVariable(word, MalType::Void());
          }
          args.push_back(Argument::Var(id));
        }
      } else {
        STETHO_ASSIGN_OR_RETURN(Value lit, scan->ReadLiteral());
        args.push_back(Argument::Const(std::move(lit)));
      }
      if (scan->Consume(',')) continue;
      break;
    }
    if (!scan->Consume(')')) return Status::ParseError("expected ')' after arguments");
  }
  if (!scan->Consume(';')) return Status::ParseError("expected ';' after statement");

  program->Add(std::move(module), std::move(function), std::move(results),
               std::move(args));
  return Status::OK();
}

}  // namespace

namespace {

Result<Program> ParseProgramImpl(const std::string& text, bool validate) {
  Scanner scan(text);
  Program program;

  if (!scan.ConsumeWord("function")) {
    return Status::ParseError("MAL listing must start with 'function'");
  }
  STETHO_ASSIGN_OR_RETURN(std::string ns, scan.ReadIdent());
  if (!scan.Consume('.')) return Status::ParseError("expected '.' in function name");
  STETHO_ASSIGN_OR_RETURN(std::string fname, scan.ReadIdent());
  program.set_function_name(ns + "." + fname);
  if (!scan.Consume('(')) return Status::ParseError("expected '(' in function header");
  if (!scan.Consume(')')) return Status::ParseError("expected ')' in function header");
  if (scan.Peek() == ':') {
    STETHO_ASSIGN_OR_RETURN(MalType ret, scan.ReadType());
    (void)ret;
  }
  if (!scan.Consume(';')) return Status::ParseError("expected ';' after function header");

  while (!scan.AtEnd()) {
    if (scan.ConsumeWord("end")) {
      // `end user.main;` — consume the rest of the line permissively.
      while (!scan.AtEnd() && !scan.Consume(';')) {
        STETHO_ASSIGN_OR_RETURN(std::string tok, scan.ReadIdent());
        (void)tok;
        scan.Consume('.');
      }
      if (validate) STETHO_RETURN_IF_ERROR(program.Validate());
      ApplyCardinalityPragmas(scan.comments(), &program);
      return program;
    }
    STETHO_RETURN_IF_ERROR(ParseStatement(&scan, &program));
  }
  return Status::ParseError("missing 'end' in MAL listing");
}

}  // namespace

Result<Program> ParseProgram(const std::string& text) {
  return ParseProgramImpl(text, /*validate=*/true);
}

Result<Program> ParseProgramLenient(const std::string& text) {
  return ParseProgramImpl(text, /*validate=*/false);
}

}  // namespace stetho::mal
