#include "mal/types.h"

#include "common/string_util.h"

namespace stetho::mal {

using storage::DataType;

std::string MalType::ToString() const {
  const char* name;
  switch (base) {
    case DataType::kNull:
      name = ":void";
      break;
    case DataType::kBool:
      name = ":bit";
      break;
    case DataType::kInt64:
      name = ":lng";
      break;
    case DataType::kDouble:
      name = ":dbl";
      break;
    case DataType::kString:
      name = ":str";
      break;
    case DataType::kOid:
      name = ":oid";
      break;
    default:
      name = ":any";
      break;
  }
  if (is_bat) return std::string(":bat[") + name + "]";
  return name;
}

Result<MalType> ParseMalType(const std::string& text) {
  std::string t = Trim(text);
  bool is_bat = false;
  if (StartsWith(t, ":bat[") && EndsWith(t, "]")) {
    is_bat = true;
    t = t.substr(5, t.size() - 6);
  } else if (StartsWith(t, "bat[") && EndsWith(t, "]")) {
    is_bat = true;
    t = t.substr(4, t.size() - 5);
  }
  DataType base;
  if (t == ":void" || t == ":any") {
    base = DataType::kNull;
  } else if (t == ":bit") {
    base = DataType::kBool;
  } else if (t == ":lng" || t == ":int") {
    base = DataType::kInt64;
  } else if (t == ":dbl" || t == ":flt") {
    base = DataType::kDouble;
  } else if (t == ":str") {
    base = DataType::kString;
  } else if (t == ":oid") {
    base = DataType::kOid;
  } else {
    return Status::ParseError("unknown MAL type '" + text + "'");
  }
  return MalType{base, is_bat};
}

}  // namespace stetho::mal
