#include "mal/program.h"

#include <algorithm>

#include <unordered_map>

#include "common/string_util.h"

namespace stetho::mal {

int Program::AddVariable(MalType type) {
  int id = static_cast<int>(variables_.size());
  variables_.push_back(Variable{id, StrFormat("X_%d", id), type});
  return id;
}

int Program::AddNamedVariable(std::string name, MalType type) {
  int id = static_cast<int>(variables_.size());
  variables_.push_back(Variable{id, std::move(name), type});
  return id;
}

int Program::FindVariable(const std::string& name) const {
  for (const Variable& v : variables_) {
    if (v.name == name) return v.id;
  }
  return -1;
}

void Program::AnnotateCardinality(int var, int64_t lo, int64_t hi) {
  if (var < 0 || static_cast<size_t>(var) >= variables_.size()) return;
  if (lo < 0 || hi < lo) return;
  variables_[static_cast<size_t>(var)].card_lo = lo;
  variables_[static_cast<size_t>(var)].card_hi = hi;
}

int Program::Add(std::string module, std::string function,
                 std::vector<int> results, std::vector<Argument> args) {
  Instruction ins;
  ins.pc = static_cast<int>(instructions_.size());
  ins.module = std::move(module);
  ins.function = std::move(function);
  ins.results = std::move(results);
  ins.args = std::move(args);
  instructions_.push_back(std::move(ins));
  return instructions_.back().pc;
}

void Program::ReplaceInstructions(std::vector<Instruction> instructions) {
  instructions_ = std::move(instructions);
  for (size_t i = 0; i < instructions_.size(); ++i) {
    instructions_[i].pc = static_cast<int>(i);
  }
}

std::vector<std::vector<int>> Program::BuildDependencies() const {
  // writer[v] = pc of the instruction that most recently assigned variable v.
  std::vector<int> writer(variables_.size(), -1);
  std::vector<std::vector<int>> deps(instructions_.size());
  for (const Instruction& ins : instructions_) {
    std::vector<int>& d = deps[static_cast<size_t>(ins.pc)];
    for (const Argument& arg : ins.args) {
      if (arg.kind != Argument::Kind::kVar) continue;
      // Out-of-range references are a Validate() error; the lint path walks
      // such malformed programs to diagnose them, so skip rather than index.
      if (arg.var < 0 || static_cast<size_t>(arg.var) >= writer.size()) {
        continue;
      }
      int w = writer[static_cast<size_t>(arg.var)];
      if (w >= 0) {
        bool seen = false;
        for (int existing : d) {
          if (existing == w) {
            seen = true;
            break;
          }
        }
        if (!seen) d.push_back(w);
      }
    }
    for (int r : ins.results) {
      if (r < 0 || static_cast<size_t>(r) >= writer.size()) continue;
      writer[static_cast<size_t>(r)] = ins.pc;
    }
  }
  return deps;
}

std::string Program::InstructionToString(const Instruction& ins) const {
  std::string out;
  if (!ins.results.empty()) {
    if (ins.results.size() > 1) out += "(";
    for (size_t i = 0; i < ins.results.size(); ++i) {
      if (i > 0) out += ",";
      const Variable& v = variables_[static_cast<size_t>(ins.results[i])];
      out += v.name;
      out += v.type.ToString();
    }
    if (ins.results.size() > 1) out += ")";
    out += " := ";
  }
  out += ins.module;
  out += ".";
  out += ins.function;
  out += "(";
  for (size_t i = 0; i < ins.args.size(); ++i) {
    if (i > 0) out += ",";
    const Argument& a = ins.args[i];
    if (a.kind == Argument::Kind::kVar) {
      out += variables_[static_cast<size_t>(a.var)].name;
    } else {
      out += a.constant.ToString();
    }
  }
  out += ");";
  return out;
}

std::string Program::ToString() const {
  std::string out = "function " + function_name_ + "():void;\n";
  // Cardinality annotations travel as structured pragma comments so that a
  // listing written to disk keeps the bounds the SQL compiler attached (the
  // memory-footprint model is unusable without them). The parser recognizes
  // exactly this shape and re-attaches the interval; any other comment stays
  // free-form. Statement text itself is untouched, so the dot-label contract
  // (statement text == node label) is unaffected.
  // Name order, not id order: a parse re-assigns ids by first mention, so
  // only a name-keyed order makes print -> parse -> print a fixpoint.
  std::vector<const Variable*> annotated;
  for (const Variable& v : variables_) {
    if (v.has_cardinality()) annotated.push_back(&v);
  }
  std::sort(annotated.begin(), annotated.end(),
            [](const Variable* a, const Variable* b) { return a->name < b->name; });
  for (const Variable* v : annotated) {
    out += StrFormat("# card %s %lld..%lld\n", v->name.c_str(),
                     static_cast<long long>(v->card_lo),
                     static_cast<long long>(v->card_hi));
  }
  for (const Instruction& ins : instructions_) {
    out += "    ";
    out += InstructionToString(ins);
    out += "\n";
  }
  out += "end " + function_name_ + ";\n";
  return out;
}

Status Program::Validate() const {
  std::vector<bool> defined(variables_.size(), false);
  std::vector<bool> assigned(variables_.size(), false);
  for (const Instruction& ins : instructions_) {
    for (const Argument& arg : ins.args) {
      if (arg.kind != Argument::Kind::kVar) continue;
      if (arg.var < 0 || static_cast<size_t>(arg.var) >= variables_.size()) {
        return Status::Internal(
            StrFormat("pc=%d references out-of-range variable %d", ins.pc,
                      arg.var));
      }
      if (!defined[static_cast<size_t>(arg.var)]) {
        return Status::Internal(StrFormat(
            "pc=%d uses variable %s before definition", ins.pc,
            variables_[static_cast<size_t>(arg.var)].name.c_str()));
      }
    }
    for (int r : ins.results) {
      if (r < 0 || static_cast<size_t>(r) >= variables_.size()) {
        return Status::Internal(
            StrFormat("pc=%d assigns out-of-range variable %d", ins.pc, r));
      }
      if (assigned[static_cast<size_t>(r)]) {
        return Status::Internal(StrFormat(
            "pc=%d violates SSA: variable %s assigned twice", ins.pc,
            variables_[static_cast<size_t>(r)].name.c_str()));
      }
      assigned[static_cast<size_t>(r)] = true;
      defined[static_cast<size_t>(r)] = true;
    }
  }
  return Status::OK();
}

}  // namespace stetho::mal
