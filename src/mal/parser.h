#ifndef STETHO_MAL_PARSER_H_
#define STETHO_MAL_PARSER_H_

#include <string>

#include "common/status.h"
#include "mal/program.h"

namespace stetho::mal {

/// Parses a MAL listing in the format emitted by Program::ToString()
/// (the paper's Fig. 1 format) back into a Program. Supports single- and
/// multi-result statements, typed variable annotations, and literal operands
/// (integers, floats, strings, oids `N@0`, booleans, nil). The parsed
/// program must pass Program::Validate().
Result<Program> ParseProgram(const std::string& text);

/// ParseProgram without the final Validate() call: accepts syntactically
/// well-formed listings that violate SSA or def-before-use. This is the
/// entry point mal_lint uses, so structural breakage surfaces as pc-accurate
/// lint diagnostics instead of a parse failure.
Result<Program> ParseProgramLenient(const std::string& text);

}  // namespace stetho::mal

#endif  // STETHO_MAL_PARSER_H_
