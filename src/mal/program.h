#ifndef STETHO_MAL_PROGRAM_H_
#define STETHO_MAL_PROGRAM_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "mal/types.h"
#include "storage/value.h"

namespace stetho::mal {

/// A MAL variable ("X_12"). Our code generator emits SSA form: each variable
/// has exactly one defining instruction.
struct Variable {
  int id = -1;
  std::string name;  // "X_<id>" unless explicitly named
  MalType type;
  /// Optional cardinality interval: the row count of a BAT variable is known
  /// to lie in [card_lo, card_hi]. The SQL compiler annotates catalog reads
  /// (sql.tid / sql.bind results) with the exact table size; the abstract
  /// interpreter (analysis/absint.h) propagates the interval through the
  /// plan. card_lo < 0 means "no annotation".
  int64_t card_lo = -1;
  int64_t card_hi = -1;

  bool has_cardinality() const { return card_lo >= 0; }
};

/// One operand of a MAL instruction: either a variable reference or an
/// inline constant.
struct Argument {
  enum class Kind { kVar, kConst };

  Kind kind = Kind::kConst;
  int var = -1;               // valid when kind == kVar
  storage::Value constant;    // valid when kind == kConst

  static Argument Var(int id) {
    Argument a;
    a.kind = Kind::kVar;
    a.var = id;
    return a;
  }
  static Argument Const(storage::Value v) {
    Argument a;
    a.kind = Kind::kConst;
    a.constant = std::move(v);
    return a;
  }
};

/// One MAL statement: `(results) := module.function(args);`. `pc` is the
/// statement's index inside its program — the key the profiler trace and the
/// DOT node names ("n<pc>") are both derived from.
struct Instruction {
  int pc = -1;
  std::string module;
  std::string function;
  std::vector<int> results;    // variable ids; empty for :void statements
  std::vector<Argument> args;

  /// "module.function" — the profiler's operator identity.
  std::string FullName() const { return module + "." + function; }
};

/// A MAL program (one `function user.main():void; ... end user.main;` body).
/// Owns the variable table and the instruction sequence.
class Program {
 public:
  Program() = default;
  explicit Program(std::string function_name)
      : function_name_(std::move(function_name)) {}

  const std::string& function_name() const { return function_name_; }
  void set_function_name(std::string n) { function_name_ = std::move(n); }

  /// --- Variables ---
  /// Creates a fresh variable "X_<id>" of `type` and returns its id.
  int AddVariable(MalType type);
  /// Creates a variable with an explicit name (parser use).
  int AddNamedVariable(std::string name, MalType type);
  const Variable& variable(int id) const { return variables_[static_cast<size_t>(id)]; }
  size_t num_variables() const { return variables_.size(); }
  /// Id of the variable named `name`, or -1.
  int FindVariable(const std::string& name) const;
  /// Attaches a [lo, hi] cardinality interval to `var` (see
  /// Variable::card_lo). Out-of-range ids and inverted intervals are ignored.
  void AnnotateCardinality(int var, int64_t lo, int64_t hi);

  /// --- Instructions ---
  /// Appends an instruction; assigns and returns its pc.
  int Add(std::string module, std::string function, std::vector<int> results,
          std::vector<Argument> args);
  const Instruction& instruction(int pc) const {
    return instructions_[static_cast<size_t>(pc)];
  }
  Instruction& mutable_instruction(int pc) {
    return instructions_[static_cast<size_t>(pc)];
  }
  size_t size() const { return instructions_.size(); }
  const std::vector<Instruction>& instructions() const { return instructions_; }

  /// Replaces the instruction sequence (optimizer passes); re-numbers pcs.
  void ReplaceInstructions(std::vector<Instruction> instructions);

  /// --- Analysis ---
  /// For each instruction, the pcs of the instructions producing its variable
  /// arguments (dataflow dependencies). Because codegen emits SSA, this is
  /// the last/only writer of each argument variable.
  std::vector<std::vector<int>> BuildDependencies() const;

  /// Renders one statement, e.g.
  /// `X_7:bat[:dbl] := algebra.projection(X_5,X_3);`.
  std::string InstructionToString(const Instruction& ins) const;

  /// Renders the whole program in the paper's Fig. 1 listing format.
  std::string ToString() const;

  /// Structural validation: argument/result variable ids in range, SSA
  /// single-assignment holds, arguments defined before use.
  Status Validate() const;

 private:
  std::string function_name_ = "user.main";
  std::vector<Variable> variables_;
  std::vector<Instruction> instructions_;
};

}  // namespace stetho::mal

#endif  // STETHO_MAL_PROGRAM_H_
