#include "server/result_printer.h"

#include <algorithm>
#include <vector>

#include "common/string_util.h"

namespace stetho::server {
namespace {

std::string CellText(const engine::ResultColumn& col, size_t row) {
  storage::Value v = col.is_scalar ? col.scalar : col.column->GetValue(row);
  if (v.type() == storage::DataType::kString) return v.AsString();
  return v.ToString();
}

std::string Truncate(std::string s, size_t limit) {
  if (s.size() <= limit) return s;
  return s.substr(0, limit - 3) + "...";
}

}  // namespace

std::string FormatResultTable(const engine::QueryResult& result,
                              const PrintOptions& options) {
  const auto& cols = result.columns;
  if (cols.empty()) return "(no result columns)\n";

  size_t rows = 0;
  bool all_scalar = true;
  for (const auto& col : cols) {
    if (col.is_scalar) continue;
    all_scalar = false;
    rows = std::max(rows, col.column->size());
  }
  if (all_scalar) rows = 1;
  size_t shown = std::min(rows, options.max_rows);

  // Collect cell texts and column widths.
  std::vector<std::vector<std::string>> cells(shown + 1);
  cells[0].reserve(cols.size());
  for (const auto& col : cols) {
    cells[0].push_back(Truncate(col.name, options.max_col_width));
  }
  for (size_t r = 0; r < shown; ++r) {
    auto& row = cells[r + 1];
    row.reserve(cols.size());
    for (const auto& col : cols) {
      bool in_range = col.is_scalar || r < col.column->size();
      row.push_back(in_range
                        ? Truncate(CellText(col, r), options.max_col_width)
                        : "");
    }
  }
  std::vector<size_t> width(cols.size(), 1);
  for (const auto& row : cells) {
    for (size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  auto rule = [&] {
    std::string line = "+";
    for (size_t c = 0; c < cols.size(); ++c) {
      line += std::string(width[c] + 2, '-');
      line += "+";
    }
    line += "\n";
    return line;
  };
  auto format_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (size_t c = 0; c < row.size(); ++c) {
      line += " ";
      line += std::string(width[c] - row[c].size(), ' ');
      line += row[c];
      line += " |";
    }
    line += "\n";
    return line;
  };

  std::string out = rule();
  out += format_row(cells[0]);
  out += rule();
  for (size_t r = 0; r < shown; ++r) out += format_row(cells[r + 1]);
  out += rule();
  if (rows > shown) {
    out += StrFormat("(%zu of %zu rows shown)\n", shown, rows);
  } else {
    out += StrFormat("(%zu row%s)\n", rows, rows == 1 ? "" : "s");
  }
  return out;
}

}  // namespace stetho::server
