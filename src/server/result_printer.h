#ifndef STETHO_SERVER_RESULT_PRINTER_H_
#define STETHO_SERVER_RESULT_PRINTER_H_

#include <string>

#include "engine/interpreter.h"

namespace stetho::server {

/// Options for ASCII result-table rendering.
struct PrintOptions {
  size_t max_rows = 25;      ///< rows shown before eliding
  size_t max_col_width = 32; ///< cell truncation
};

/// Renders a query result as the MonetDB-client-style ASCII table:
///
///   +----------+--------+
///   | l_orderkey | total |
///   +----------+--------+
///   |       42 |  17.50 |
///   ...
///
/// Scalar results render as a single row. Returns the formatted table.
std::string FormatResultTable(const engine::QueryResult& result,
                              const PrintOptions& options = {});

}  // namespace stetho::server

#endif  // STETHO_SERVER_RESULT_PRINTER_H_
