#ifndef STETHO_SERVER_MSERVER_H_
#define STETHO_SERVER_MSERVER_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "analysis/progress.h"
#include "common/clock.h"
#include "common/status.h"
#include "engine/interpreter.h"
#include "mal/program.h"
#include "net/datagram.h"
#include "obs/metrics.h"
#include "obs/profile_store.h"
#include "optimizer/pass.h"
#include "profiler/profiler.h"
#include "profiler/sink.h"
#include "sql/compiler.h"
#include "storage/table.h"

namespace stetho::server {

/// Server configuration.
struct MserverOptions {
  /// Degree of parallelism for dataflow execution (0 = hardware threads).
  int dop = 0;
  /// Mitosis partitions applied by the optimizer pipeline (0/1 = off).
  int mitosis_pieces = 0;
  /// Force sequential interpretation (reproduces the paper's "sequential
  /// execution where multithreaded execution was expected" anomaly).
  bool force_sequential = false;
  /// Memory budget for admission control, in bytes. 0 falls back to the
  /// STETHO_MEM_BUDGET environment variable; if that is unset too,
  /// admission is a no-op (every query admits). With a budget, the server
  /// predicts each optimized plan's peak footprint (the static parallel
  /// bound from analysis/liveness.h at the server's dop): a prediction
  /// above the budget is rejected with ResourceExhausted; one that fits
  /// the budget but not the engine's current headroom queues until
  /// running queries release memory (or `admission_wait_ms` elapses).
  int64_t mem_budget_bytes = 0;
  /// How long a queued query waits for headroom before giving up.
  int admission_wait_ms = 200;
  /// Cross-run profile store every completed query folds into (per-pc
  /// robust baselines keyed by plan-shape hash); nullptr = the
  /// process-wide obs::ProfileStore::Default(), which persists under
  /// STETHO_PROFILE_DIR when set.
  obs::ProfileStore* profile_store = nullptr;
  /// Slow-query gate: a completed query whose end-to-end time exceeds this
  /// multiple of its shape's profiled median (from runs folded *before*
  /// this one) is counted in stetho_slow_queries_total and, when a flight
  /// directory is configured, gets a postmortem bundle (plan + recent
  /// trace events + flight-recorder spans + metrics snapshot). <= 0
  /// disables the gate.
  double slow_query_factor = 3.0;
  /// Directory receiving slow-query postmortem bundles
  /// ("" = the STETHO_FLIGHT_DIR environment variable; if that is unset
  /// too, no bundles are written). Configuring a directory also attaches a
  /// profiler ring sink so bundles carry the query's recent events.
  std::string flight_dir;
  /// Time source (nullptr = process steady clock).
  Clock* clock = nullptr;
};

/// Everything a query execution produced.
struct QueryOutcome {
  std::string name;            ///< server-assigned query name ("s0", "s1"...)
  std::string sql;
  mal::Program plan;           ///< optimized MAL plan that actually ran
  std::string dot;             ///< the plan's dot file (emitted pre-run)
  engine::QueryResult result;
  std::vector<std::string> optimizer_passes;  ///< passes that fired
};

/// The MonetDB server substitute: owns a catalog, compiles SQL to MAL,
/// optimizes, emits the plan's dot file, and interprets the plan under the
/// MAL profiler. Stethoscope clients attach trace sinks (file, ring buffer,
/// UDP stream) and set filter options remotely.
///
/// Thread-safety: ExecuteSql may be called from any thread; each call runs
/// independently. Profiler/stream configuration is internally synchronized.
class Mserver {
 public:
  /// Starts a server over an already-loaded catalog.
  Mserver(storage::Catalog catalog, const MserverOptions& options);

  /// --- client API ---

  /// Compiles + optimizes `sql` without executing (EXPLAIN). Returns the
  /// optimized plan.
  Result<mal::Program> Explain(const std::string& sql) const;

  /// Runs a query end to end. Before execution the plan's dot file is
  /// emitted to all attached streams (paper §4.2); trace events follow
  /// during execution; an EOF marker closes the query.
  Result<QueryOutcome> ExecuteSql(const std::string& sql);

  /// --- profiler / stream control (what the textual Stethoscope drives) ---

  profiler::Profiler* profiler() { return &profiler_; }

  /// Attaches an outgoing event stream (UDP sender or in-process channel).
  /// Dot files and EOF markers for subsequent queries go to the same stream.
  void AttachStream(std::shared_ptr<net::DatagramSender> sender);
  void DetachStreams();

  /// Applies a serialized filter (EventFilter::Serialize format) —
  /// "The profiler accepts filter options set through Stethoscope".
  Status SetProfilerFilter(const std::string& serialized);

  /// Server-side metrics dump command: the process-wide registry in
  /// Prometheus text exposition format (pool, kernel, optimizer, profiler,
  /// and net counters), for clients that poll server health the way
  /// Stethoscope polls the event stream. A comment footer carries the
  /// estimated p50/p95/p99 of every populated histogram.
  std::string MetricsText() const;

  /// Live query-progress scoreboard next to MetricsText(): one line per
  /// tracked query (running and recently finished, newest last) with the
  /// model-weighted completion ratio and remaining-critical-path ETA from
  /// analysis::ProgressEstimator. The estimator is fed in-process through
  /// engine::ExecOptions::progress, so the scoreboard works with no
  /// profiler sink attached.
  std::string ProgressText() const;

  storage::Catalog* catalog() { return &catalog_; }
  const MserverOptions& options() const { return options_; }
  Clock* clock() const { return clock_; }

 private:
  /// The store completed queries fold into (options override or process
  /// default).
  obs::ProfileStore* profile_store() const;

  /// Post-run bookkeeping: folds the finished query into the profile store
  /// and, when its end-to-end time blows past the pre-fold baseline median
  /// by options_.slow_query_factor, logs it and emits a postmortem bundle.
  void RecordQueryProfile(const QueryOutcome& outcome,
                          const mal::Program& program,
                          const analysis::ProgressEstimator& estimator);

  /// Budgeted admission (called between optimize and execute): predicts the
  /// plan's peak footprint and admits, queues, or rejects against the
  /// configured budget. Exports stetho_admission_{admitted,queued,rejected}_total
  /// and stetho_mem_predicted_peak_bytes.
  Status AdmitForMemory(const mal::Program& program) const;

  storage::Catalog catalog_;
  MserverOptions options_;
  Clock* clock_;
  profiler::Profiler profiler_;
  std::atomic<int> next_query_{0};

  /// Resolved postmortem directory ("" = disabled) and the ring of recent
  /// profiler events bundles snapshot from (attached only when enabled).
  std::string flight_dir_;
  std::shared_ptr<profiler::RingBufferSink> postmortem_ring_;

  std::mutex stream_mu_;
  std::vector<std::shared_ptr<net::DatagramSender>> streams_;

  /// Progress scoreboard: the last few queries' estimators, newest last.
  /// Estimators are shared_ptr because a query thread updates its
  /// estimator while ProgressText() reads it.
  mutable std::mutex progress_mu_;
  std::vector<std::pair<std::string,
                        std::shared_ptr<analysis::ProgressEstimator>>>
      progress_;
};

}  // namespace stetho::server

#endif  // STETHO_SERVER_MSERVER_H_
