#include "server/mserver.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "analysis/liveness.h"
#include "common/string_util.h"
#include "dot/writer.h"
#include "engine/worker_pool.h"
#include "net/trace_stream.h"
#include "obs/span.h"

namespace stetho::server {
namespace {

obs::Counter* AdmissionCounter(const char* outcome, const char* help) {
  return obs::Registry::Default()->GetOrCreateCounter(
      std::string("stetho_admission_") + outcome + "_total", help);
}

obs::Counter* AdmittedCounter() {
  static obs::Counter* c = AdmissionCounter(
      "admitted", "Queries admitted by the memory-budget gate");
  return c;
}
obs::Counter* QueuedCounter() {
  static obs::Counter* c = AdmissionCounter(
      "queued", "Queries that waited for engine memory headroom");
  return c;
}
obs::Counter* RejectedCounter() {
  static obs::Counter* c = AdmissionCounter(
      "rejected", "Queries rejected because their predicted peak exceeds "
                  "the memory budget");
  return c;
}

obs::Gauge* PredictedPeakGauge() {
  static obs::Gauge* g = obs::Registry::Default()->GetOrCreateGauge(
      "stetho_mem_predicted_peak_bytes",
      "Static peak-footprint prediction for the most recently admitted "
      "or rejected query");
  return g;
}

/// The interpreter's process-wide live-byte mirror (same name, same
/// registry instance as the one engine/interpreter.cc maintains).
obs::Gauge* EngineLiveBytesGauge() {
  static obs::Gauge* g = obs::Registry::Default()->GetOrCreateGauge(
      "stetho_engine_live_bytes",
      "Live column bytes currently held by executing queries "
      "(Column::MemoryBytes accounting)");
  return g;
}

}  // namespace

Mserver::Mserver(storage::Catalog catalog, const MserverOptions& options)
    : catalog_(std::move(catalog)),
      options_(options),
      clock_(options.clock != nullptr ? options.clock
                                      : static_cast<Clock*>(SteadyClock::Default())),
      profiler_(clock_) {
  // Pre-warm the shared worker pool to the configured dop so the first
  // query never pays thread start-up inside its measured execution window.
  if (!options_.force_sequential) {
    int dop = options_.dop > 0
                  ? options_.dop
                  : static_cast<int>(std::thread::hardware_concurrency());
    if (dop > 1) engine::WorkerPool::Default()->EnsureWorkers(dop);
  }
}

Result<mal::Program> Mserver::Explain(const std::string& sql) const {
  STETHO_ASSIGN_OR_RETURN(mal::Program program,
                          sql::Compiler::CompileSql(&catalog_, sql));
  optimizer::Pipeline pipeline =
      optimizer::Pipeline::Default(options_.mitosis_pieces);
  STETHO_ASSIGN_OR_RETURN(std::vector<std::string> fired,
                          pipeline.Run(&program));
  (void)fired;
  return program;
}

Result<QueryOutcome> Mserver::ExecuteSql(const std::string& sql) {
  QueryOutcome outcome;
  outcome.sql = sql;
  outcome.name = StrFormat("s%d", next_query_.fetch_add(1));

  // Phase spans bracket the query lifecycle on the server's own timeline;
  // kernel spans from the interpreter nest inside "execute". All no-ops
  // while the default tracer is disabled.
  obs::Tracer* tracer = obs::Tracer::Default();

  mal::Program program;
  {
    obs::Span parse_span(tracer, "parse", "phase");
    STETHO_ASSIGN_OR_RETURN(program, sql::Compiler::CompileSql(&catalog_, sql));
  }
  program.set_function_name("user." + outcome.name);
  {
    obs::Span optimize_span(tracer, "optimize", "phase");
    optimizer::Pipeline pipeline =
        optimizer::Pipeline::Default(options_.mitosis_pieces);
    STETHO_ASSIGN_OR_RETURN(outcome.optimizer_passes, pipeline.Run(&program));
  }

  {
    obs::Span admit_span(tracer, "admit", "phase");
    STETHO_RETURN_IF_ERROR(AdmitForMemory(program));
  }

  // The server generates the dot file before execution begins and pushes it
  // over every attached stream.
  dot::DotWriterOptions dot_options;
  dot_options.graph_name = program.function_name();
  outcome.dot = dot::ProgramToDot(program, dot_options);
  {
    std::lock_guard<std::mutex> lock(stream_mu_);
    for (const auto& stream : streams_) {
      (void)net::SendDotFile(stream.get(), outcome.name, outcome.dot);
    }
  }

  // Progress scoreboard: price the plan with the cached work model and let
  // the interpreter feed completions. The estimator outlives the query in
  // the scoreboard ring so ProgressText() can show recent history.
  auto estimator = std::make_shared<analysis::ProgressEstimator>(
      analysis::ProgressModelCache::Default()->GetOrBuild(program));
  {
    std::lock_guard<std::mutex> lock(progress_mu_);
    progress_.emplace_back(outcome.name, estimator);
    constexpr size_t kScoreboardHistory = 8;
    if (progress_.size() > kScoreboardHistory) {
      progress_.erase(progress_.begin());
    }
  }

  engine::Interpreter interp(&catalog_);
  engine::ExecOptions exec;
  exec.num_threads = options_.dop;
  exec.use_dataflow = !options_.force_sequential;
  exec.clock = clock_;
  exec.profiler = &profiler_;
  exec.progress = estimator.get();
  {
    obs::Span execute_span(tracer, "execute", "phase");
    STETHO_ASSIGN_OR_RETURN(outcome.result, interp.Execute(program, exec));
  }
  estimator->MarkFinished();
  outcome.plan = std::move(program);

  {
    std::lock_guard<std::mutex> lock(stream_mu_);
    for (const auto& stream : streams_) {
      (void)net::SendEof(stream.get(), outcome.name);
    }
  }
  return outcome;
}

void Mserver::AttachStream(std::shared_ptr<net::DatagramSender> sender) {
  profiler_.AddSink(std::make_shared<net::DatagramTraceSink>(sender));
  std::lock_guard<std::mutex> lock(stream_mu_);
  streams_.push_back(std::move(sender));
}

void Mserver::DetachStreams() {
  profiler_.ClearSinks();
  std::lock_guard<std::mutex> lock(stream_mu_);
  streams_.clear();
}

std::string Mserver::MetricsText() const {
  return obs::Registry::Default()->ExpositionText();
}

std::string Mserver::ProgressText() const {
  std::lock_guard<std::mutex> lock(progress_mu_);
  if (progress_.empty()) return "no queries tracked\n";
  std::string out;
  for (const auto& [name, estimator] : progress_) {
    out += estimator->ScoreboardLine(name);
    out += '\n';
  }
  return out;
}

Status Mserver::AdmitForMemory(const mal::Program& program) const {
  int64_t budget = options_.mem_budget_bytes > 0
                       ? options_.mem_budget_bytes
                       : analysis::EnvMemBudgetBytes();
  if (budget <= 0) return Status::OK();  // no budget configured: admit all

  analysis::MemoryReport report = analysis::AnalyzeMemory(program);
  int dop = options_.force_sequential ? 1
            : options_.dop > 0
                ? options_.dop
                : std::max(1, static_cast<int>(
                                  std::thread::hardware_concurrency()));
  int64_t predicted = analysis::ParallelPeakBound(program, report, dop);
  if (!report.bounded || predicted == analysis::kUnboundedBytes) {
    // The model cannot bound the plan (missing cardinality annotations);
    // refusing service on an unbounded estimate would reject every such
    // plan forever, so admit and let execution be the judge.
    AdmittedCounter()->Increment();
    return Status::OK();
  }
  PredictedPeakGauge()->Set(predicted);

  if (predicted > budget) {
    RejectedCounter()->Increment();
    return Status::ResourceExhausted(
        StrFormat("query rejected by memory admission: predicted peak %s "
                  "(dop %d) exceeds the budget of %s",
                  analysis::FormatBytes(predicted).c_str(), dop,
                  analysis::FormatBytes(budget).c_str()));
  }

  // Fits the budget in isolation; check headroom against what running
  // queries currently hold, waiting for them to drain if necessary.
  obs::Gauge* live = EngineLiveBytesGauge();
  if (predicted <= budget - live->value()) {
    AdmittedCounter()->Increment();
    return Status::OK();
  }
  QueuedCounter()->Increment();
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(options_.admission_wait_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (predicted <= budget - live->value()) {
      AdmittedCounter()->Increment();
      return Status::OK();
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  RejectedCounter()->Increment();
  return Status::ResourceExhausted(
      StrFormat("query rejected by memory admission after queueing %d ms: "
                "predicted peak %s plus %s already live exceeds the budget "
                "of %s",
                options_.admission_wait_ms,
                analysis::FormatBytes(predicted).c_str(),
                analysis::FormatBytes(live->value()).c_str(),
                analysis::FormatBytes(budget).c_str()));
}

Status Mserver::SetProfilerFilter(const std::string& serialized) {
  STETHO_ASSIGN_OR_RETURN(profiler::EventFilter filter,
                          profiler::EventFilter::Deserialize(serialized));
  profiler_.SetFilter(std::move(filter));
  return Status::OK();
}

}  // namespace stetho::server
