#include "server/mserver.h"

#include <thread>

#include "common/string_util.h"
#include "dot/writer.h"
#include "engine/worker_pool.h"
#include "net/trace_stream.h"
#include "obs/span.h"

namespace stetho::server {

Mserver::Mserver(storage::Catalog catalog, const MserverOptions& options)
    : catalog_(std::move(catalog)),
      options_(options),
      clock_(options.clock != nullptr ? options.clock
                                      : static_cast<Clock*>(SteadyClock::Default())),
      profiler_(clock_) {
  // Pre-warm the shared worker pool to the configured dop so the first
  // query never pays thread start-up inside its measured execution window.
  if (!options_.force_sequential) {
    int dop = options_.dop > 0
                  ? options_.dop
                  : static_cast<int>(std::thread::hardware_concurrency());
    if (dop > 1) engine::WorkerPool::Default()->EnsureWorkers(dop);
  }
}

Result<mal::Program> Mserver::Explain(const std::string& sql) const {
  STETHO_ASSIGN_OR_RETURN(mal::Program program,
                          sql::Compiler::CompileSql(&catalog_, sql));
  optimizer::Pipeline pipeline =
      optimizer::Pipeline::Default(options_.mitosis_pieces);
  STETHO_ASSIGN_OR_RETURN(std::vector<std::string> fired,
                          pipeline.Run(&program));
  (void)fired;
  return program;
}

Result<QueryOutcome> Mserver::ExecuteSql(const std::string& sql) {
  QueryOutcome outcome;
  outcome.sql = sql;
  outcome.name = StrFormat("s%d", next_query_.fetch_add(1));

  // Phase spans bracket the query lifecycle on the server's own timeline;
  // kernel spans from the interpreter nest inside "execute". All no-ops
  // while the default tracer is disabled.
  obs::Tracer* tracer = obs::Tracer::Default();

  mal::Program program;
  {
    obs::Span parse_span(tracer, "parse", "phase");
    STETHO_ASSIGN_OR_RETURN(program, sql::Compiler::CompileSql(&catalog_, sql));
  }
  program.set_function_name("user." + outcome.name);
  {
    obs::Span optimize_span(tracer, "optimize", "phase");
    optimizer::Pipeline pipeline =
        optimizer::Pipeline::Default(options_.mitosis_pieces);
    STETHO_ASSIGN_OR_RETURN(outcome.optimizer_passes, pipeline.Run(&program));
  }

  // The server generates the dot file before execution begins and pushes it
  // over every attached stream.
  dot::DotWriterOptions dot_options;
  dot_options.graph_name = program.function_name();
  outcome.dot = dot::ProgramToDot(program, dot_options);
  {
    std::lock_guard<std::mutex> lock(stream_mu_);
    for (const auto& stream : streams_) {
      (void)net::SendDotFile(stream.get(), outcome.name, outcome.dot);
    }
  }

  engine::Interpreter interp(&catalog_);
  engine::ExecOptions exec;
  exec.num_threads = options_.dop;
  exec.use_dataflow = !options_.force_sequential;
  exec.clock = clock_;
  exec.profiler = &profiler_;
  {
    obs::Span execute_span(tracer, "execute", "phase");
    STETHO_ASSIGN_OR_RETURN(outcome.result, interp.Execute(program, exec));
  }
  outcome.plan = std::move(program);

  {
    std::lock_guard<std::mutex> lock(stream_mu_);
    for (const auto& stream : streams_) {
      (void)net::SendEof(stream.get(), outcome.name);
    }
  }
  return outcome;
}

void Mserver::AttachStream(std::shared_ptr<net::DatagramSender> sender) {
  profiler_.AddSink(std::make_shared<net::DatagramTraceSink>(sender));
  std::lock_guard<std::mutex> lock(stream_mu_);
  streams_.push_back(std::move(sender));
}

void Mserver::DetachStreams() {
  profiler_.ClearSinks();
  std::lock_guard<std::mutex> lock(stream_mu_);
  streams_.clear();
}

std::string Mserver::MetricsText() const {
  return obs::Registry::Default()->ExpositionText();
}

Status Mserver::SetProfilerFilter(const std::string& serialized) {
  STETHO_ASSIGN_OR_RETURN(profiler::EventFilter filter,
                          profiler::EventFilter::Deserialize(serialized));
  profiler_.SetFilter(std::move(filter));
  return Status::OK();
}

}  // namespace stetho::server
