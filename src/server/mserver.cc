#include "server/mserver.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include <cstdlib>

#include "analysis/liveness.h"
#include "analysis/perfdiff.h"
#include "common/string_util.h"
#include "dot/writer.h"
#include "engine/worker_pool.h"
#include "net/trace_stream.h"
#include "obs/flight_recorder.h"
#include "obs/span.h"

namespace stetho::server {
namespace {

obs::Counter* AdmissionCounter(const char* outcome, const char* help) {
  return obs::Registry::Default()->GetOrCreateCounter(
      std::string("stetho_admission_") + outcome + "_total", help);
}

obs::Counter* AdmittedCounter() {
  static obs::Counter* c = AdmissionCounter(
      "admitted", "Queries admitted by the memory-budget gate");
  return c;
}
obs::Counter* QueuedCounter() {
  static obs::Counter* c = AdmissionCounter(
      "queued", "Queries that waited for engine memory headroom");
  return c;
}
obs::Counter* RejectedCounter() {
  static obs::Counter* c = AdmissionCounter(
      "rejected", "Queries rejected because their predicted peak exceeds "
                  "the memory budget");
  return c;
}

obs::Gauge* PredictedPeakGauge() {
  static obs::Gauge* g = obs::Registry::Default()->GetOrCreateGauge(
      "stetho_mem_predicted_peak_bytes",
      "Static peak-footprint prediction for the most recently admitted "
      "or rejected query");
  return g;
}

/// The interpreter's process-wide live-byte mirror (same name, same
/// registry instance as the one engine/interpreter.cc maintains).
obs::Gauge* EngineLiveBytesGauge() {
  static obs::Gauge* g = obs::Registry::Default()->GetOrCreateGauge(
      "stetho_engine_live_bytes",
      "Live column bytes currently held by executing queries "
      "(Column::MemoryBytes accounting)");
  return g;
}

obs::Counter* SlowQueriesCounter() {
  static obs::Counter* c = obs::Registry::Default()->GetOrCreateCounter(
      "stetho_slow_queries_total",
      "Completed queries whose end-to-end time exceeded the configured "
      "multiple of their plan shape's profiled median");
  return c;
}

/// Events the postmortem ring retains — enough for several C4-scale
/// queries' start/done pairs without unbounded growth.
constexpr size_t kPostmortemRingCapacity = 4096;

}  // namespace

Mserver::Mserver(storage::Catalog catalog, const MserverOptions& options)
    : catalog_(std::move(catalog)),
      options_(options),
      clock_(options.clock != nullptr ? options.clock
                                      : static_cast<Clock*>(SteadyClock::Default())),
      profiler_(clock_) {
  // Slow-query postmortems: resolve the flight directory and, when one is
  // configured, keep a ring of recent profiler events so a bundle can show
  // what the engine was doing around the slow run.
  flight_dir_ = options_.flight_dir;
  if (flight_dir_.empty()) {
    const char* env = std::getenv("STETHO_FLIGHT_DIR");
    if (env != nullptr) flight_dir_ = env;
  }
  if (!flight_dir_.empty()) {
    postmortem_ring_ =
        std::make_shared<profiler::RingBufferSink>(kPostmortemRingCapacity);
    profiler_.AddSink(postmortem_ring_);
  }

  // Pre-warm the shared worker pool to the configured dop so the first
  // query never pays thread start-up inside its measured execution window.
  if (!options_.force_sequential) {
    int dop = options_.dop > 0
                  ? options_.dop
                  : static_cast<int>(std::thread::hardware_concurrency());
    if (dop > 1) engine::WorkerPool::Default()->EnsureWorkers(dop);
  }
}

Result<mal::Program> Mserver::Explain(const std::string& sql) const {
  STETHO_ASSIGN_OR_RETURN(mal::Program program,
                          sql::Compiler::CompileSql(&catalog_, sql));
  optimizer::Pipeline pipeline =
      optimizer::Pipeline::Default(options_.mitosis_pieces);
  STETHO_ASSIGN_OR_RETURN(std::vector<std::string> fired,
                          pipeline.Run(&program));
  (void)fired;
  return program;
}

Result<QueryOutcome> Mserver::ExecuteSql(const std::string& sql) {
  QueryOutcome outcome;
  outcome.sql = sql;
  outcome.name = StrFormat("s%d", next_query_.fetch_add(1));

  // Phase spans bracket the query lifecycle on the server's own timeline;
  // kernel spans from the interpreter nest inside "execute". All no-ops
  // while the default tracer is disabled.
  obs::Tracer* tracer = obs::Tracer::Default();

  mal::Program program;
  {
    obs::Span parse_span(tracer, "parse", "phase");
    STETHO_ASSIGN_OR_RETURN(program, sql::Compiler::CompileSql(&catalog_, sql));
  }
  program.set_function_name("user." + outcome.name);
  {
    obs::Span optimize_span(tracer, "optimize", "phase");
    optimizer::Pipeline pipeline =
        optimizer::Pipeline::Default(options_.mitosis_pieces);
    STETHO_ASSIGN_OR_RETURN(outcome.optimizer_passes, pipeline.Run(&program));
  }

  {
    obs::Span admit_span(tracer, "admit", "phase");
    STETHO_RETURN_IF_ERROR(AdmitForMemory(program));
  }

  // The server generates the dot file before execution begins and pushes it
  // over every attached stream.
  dot::DotWriterOptions dot_options;
  dot_options.graph_name = program.function_name();
  outcome.dot = dot::ProgramToDot(program, dot_options);
  {
    std::lock_guard<std::mutex> lock(stream_mu_);
    for (const auto& stream : streams_) {
      (void)net::SendDotFile(stream.get(), outcome.name, outcome.dot);
    }
  }

  // Progress scoreboard: price the plan with the cached work model and let
  // the interpreter feed completions. The estimator outlives the query in
  // the scoreboard ring so ProgressText() can show recent history.
  auto estimator = std::make_shared<analysis::ProgressEstimator>(
      analysis::ProgressModelCache::Default()->GetOrBuild(program));
  {
    std::lock_guard<std::mutex> lock(progress_mu_);
    progress_.emplace_back(outcome.name, estimator);
    constexpr size_t kScoreboardHistory = 8;
    if (progress_.size() > kScoreboardHistory) {
      progress_.erase(progress_.begin());
    }
  }

  engine::Interpreter interp(&catalog_);
  engine::ExecOptions exec;
  exec.num_threads = options_.dop;
  exec.use_dataflow = !options_.force_sequential;
  exec.clock = clock_;
  exec.profiler = &profiler_;
  exec.progress = estimator.get();
  {
    obs::Span execute_span(tracer, "execute", "phase");
    STETHO_ASSIGN_OR_RETURN(outcome.result, interp.Execute(program, exec));
  }
  estimator->MarkFinished();
  RecordQueryProfile(outcome, program, *estimator);
  outcome.plan = std::move(program);

  {
    std::lock_guard<std::mutex> lock(stream_mu_);
    for (const auto& stream : streams_) {
      (void)net::SendEof(stream.get(), outcome.name);
    }
  }
  return outcome;
}

void Mserver::AttachStream(std::shared_ptr<net::DatagramSender> sender) {
  profiler_.AddSink(std::make_shared<net::DatagramTraceSink>(sender));
  std::lock_guard<std::mutex> lock(stream_mu_);
  streams_.push_back(std::move(sender));
}

void Mserver::DetachStreams() {
  profiler_.ClearSinks();
  // ClearSinks drops the postmortem ring with the client streams; the
  // slow-query bundle must keep seeing events.
  if (postmortem_ring_ != nullptr) profiler_.AddSink(postmortem_ring_);
  std::lock_guard<std::mutex> lock(stream_mu_);
  streams_.clear();
}

std::string Mserver::MetricsText() const {
  std::string out = obs::Registry::Default()->ExpositionText();
  // Quantile footer as exposition comments: estimated p50/p95/p99 per
  // populated histogram (scrapers ignore # lines; humans don't).
  const std::string summary =
      obs::Registry::Default()->HistogramSummaryText();
  if (!summary.empty()) {
    out += "# histogram quantiles (estimated from fixed buckets)\n";
    size_t pos = 0;
    while (pos < summary.size()) {
      size_t eol = summary.find('\n', pos);
      if (eol == std::string::npos) eol = summary.size();
      out += "# ";
      out += summary.substr(pos, eol - pos);
      out += '\n';
      pos = eol + 1;
    }
  }
  return out;
}

obs::ProfileStore* Mserver::profile_store() const {
  return options_.profile_store != nullptr ? options_.profile_store
                                           : obs::ProfileStore::Default();
}

void Mserver::RecordQueryProfile(const QueryOutcome& outcome,
                                 const mal::Program& program,
                                 const analysis::ProgressEstimator& estimator) {
  obs::ProfileStore* store = profile_store();
  const uint64_t shape_hash = analysis::PlanShapeHash(program);
  // The slow-query gate judges against what the store knew *before* this
  // run; folding first would dilute the baseline with the query on trial.
  std::shared_ptr<const obs::PlanProfile> baseline = store->Lookup(shape_hash);

  obs::QueryObservation observation = estimator.ToObservation(shape_hash);
  observation.total_usec = outcome.result.total_usec;  // true end-to-end
  (void)store->Fold(observation);

  if (options_.slow_query_factor <= 0 || baseline == nullptr ||
      baseline->total_usec.count() == 0) {
    return;
  }
  const double median = baseline->total_usec.Median();
  if (median < 1.0) return;
  const double ratio =
      static_cast<double>(outcome.result.total_usec) / median;
  if (ratio < options_.slow_query_factor) return;
  SlowQueriesCounter()->Increment();
  if (flight_dir_.empty()) return;

  // Postmortem bundle: plan + recent profiler events + the flight
  // recorder's black box (spans + metrics snapshot). Named by query, not
  // clock, so test runs under VirtualClock stay deterministic.
  const std::string path =
      StrFormat("%s/postmortem_%s.txt", flight_dir_.c_str(),
                outcome.name.c_str());
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return;  // unwritable dir: the counter still tells
  std::string bundle = StrFormat(
      "== slow query postmortem: %s ==\n"
      "sql: %s\n"
      "total: %lldus  baseline median: %.0fus over %lld runs  "
      "(%.2fx >= %.2fx gate)\n\n== plan ==\n",
      outcome.name.c_str(), outcome.sql.c_str(),
      static_cast<long long>(outcome.result.total_usec), median,
      static_cast<long long>(baseline->total_usec.count()), ratio,
      options_.slow_query_factor);
  bundle += program.ToString();
  bundle += "\n== recent trace events (ring snapshot, oldest first) ==\n";
  if (postmortem_ring_ != nullptr) {
    for (const profiler::TraceEvent& event : postmortem_ring_->Snapshot()) {
      bundle += profiler::FormatTraceLine(event);
      bundle += '\n';
    }
  }
  bundle += "\n== flight recorder ==\n";
  bundle += obs::FlightRecorder::Default()->Render(
      StrFormat("slow query %s (%.2fx baseline)", outcome.name.c_str(),
                ratio));
  std::fwrite(bundle.data(), 1, bundle.size(), file);
  std::fclose(file);
}

std::string Mserver::ProgressText() const {
  std::lock_guard<std::mutex> lock(progress_mu_);
  if (progress_.empty()) return "no queries tracked\n";
  std::string out;
  for (const auto& [name, estimator] : progress_) {
    out += estimator->ScoreboardLine(name);
    out += '\n';
  }
  return out;
}

Status Mserver::AdmitForMemory(const mal::Program& program) const {
  int64_t budget = options_.mem_budget_bytes > 0
                       ? options_.mem_budget_bytes
                       : analysis::EnvMemBudgetBytes();
  if (budget <= 0) return Status::OK();  // no budget configured: admit all

  analysis::MemoryReport report = analysis::AnalyzeMemory(program);
  int dop = options_.force_sequential ? 1
            : options_.dop > 0
                ? options_.dop
                : std::max(1, static_cast<int>(
                                  std::thread::hardware_concurrency()));
  int64_t predicted = analysis::ParallelPeakBound(program, report, dop);
  if (!report.bounded || predicted == analysis::kUnboundedBytes) {
    // The model cannot bound the plan (missing cardinality annotations);
    // refusing service on an unbounded estimate would reject every such
    // plan forever, so admit and let execution be the judge.
    AdmittedCounter()->Increment();
    return Status::OK();
  }
  PredictedPeakGauge()->Set(predicted);

  if (predicted > budget) {
    RejectedCounter()->Increment();
    return Status::ResourceExhausted(
        StrFormat("query rejected by memory admission: predicted peak %s "
                  "(dop %d) exceeds the budget of %s",
                  analysis::FormatBytes(predicted).c_str(), dop,
                  analysis::FormatBytes(budget).c_str()));
  }

  // Fits the budget in isolation; check headroom against what running
  // queries currently hold, waiting for them to drain if necessary.
  obs::Gauge* live = EngineLiveBytesGauge();
  if (predicted <= budget - live->value()) {
    AdmittedCounter()->Increment();
    return Status::OK();
  }
  QueuedCounter()->Increment();
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(options_.admission_wait_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (predicted <= budget - live->value()) {
      AdmittedCounter()->Increment();
      return Status::OK();
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  RejectedCounter()->Increment();
  return Status::ResourceExhausted(
      StrFormat("query rejected by memory admission after queueing %d ms: "
                "predicted peak %s plus %s already live exceeds the budget "
                "of %s",
                options_.admission_wait_ms,
                analysis::FormatBytes(predicted).c_str(),
                analysis::FormatBytes(live->value()).c_str(),
                analysis::FormatBytes(budget).c_str()));
}

Status Mserver::SetProfilerFilter(const std::string& serialized) {
  STETHO_ASSIGN_OR_RETURN(profiler::EventFilter filter,
                          profiler::EventFilter::Deserialize(serialized));
  profiler_.SetFilter(std::move(filter));
  return Status::OK();
}

}  // namespace stetho::server
