#include "net/fault_injection.h"

#include <utility>

namespace stetho::net {

FaultInjectingSender::FaultInjectingSender(
    std::shared_ptr<DatagramSender> inner, const FaultOptions& options)
    : inner_(std::move(inner)), options_(options), rng_(options.seed) {}

FaultInjectingSender::~FaultInjectingSender() { (void)Flush(); }

Status FaultInjectingSender::Send(const std::string& payload) {
  std::lock_guard<std::mutex> lock(mu_);
  ++sent_;

  if (options_.spare_control_lines && !payload.empty() && payload[0] == '%') {
    // Control plane: deliver any held event first so framing stays ordered
    // (%EOF after the events it closes), then the control line itself.
    if (held_.has_value()) {
      Status st = inner_->Send(*held_);
      held_.reset();
      if (!st.ok()) return st;
    }
    return inner_->Send(payload);
  }

  if (held_.has_value()) {
    // Complete the pending swap: this datagram jumps the queue, the held
    // one lands after it. The jumper skips its own fault draw — one fault
    // at a time is what makes the injected counts decompose exactly.
    STETHO_RETURN_IF_ERROR(inner_->Send(payload));
    Status st = inner_->Send(*held_);
    held_.reset();
    ++reordered_;
    return st;
  }

  const double roll = rng_.NextDouble();
  if (roll < options_.drop_p) {
    ++dropped_;
    return Status::OK();  // best-effort transport: a drop is not an error
  }
  if (roll < options_.drop_p + options_.dup_p) {
    STETHO_RETURN_IF_ERROR(inner_->Send(payload));
    ++duplicated_;
    return inner_->Send(payload);
  }
  if (roll < options_.drop_p + options_.dup_p + options_.reorder_p) {
    held_ = payload;
    return Status::OK();
  }
  return inner_->Send(payload);
}

Status FaultInjectingSender::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!held_.has_value()) return Status::OK();
  Status st = inner_->Send(*held_);
  held_.reset();
  return st;
}

int64_t FaultInjectingSender::injected_dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

int64_t FaultInjectingSender::injected_duplicated() const {
  std::lock_guard<std::mutex> lock(mu_);
  return duplicated_;
}

int64_t FaultInjectingSender::injected_reordered() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reordered_;
}

int64_t FaultInjectingSender::sent() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sent_;
}

}  // namespace stetho::net
