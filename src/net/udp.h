#ifndef STETHO_NET_UDP_H_
#define STETHO_NET_UDP_H_

#include <cstdint>
#include <memory>
#include <string>

#include "net/datagram.h"

namespace stetho::net {

/// Real UDP socket bound to 127.0.0.1. The MonetDB profiler streams events
/// to the textual Stethoscope over exactly this kind of socket (paper §3.2).
class UdpReceiver : public DatagramReceiver {
 public:
  ~UdpReceiver() override;

  /// Binds to 127.0.0.1:`port`; port 0 picks an ephemeral port (see port()).
  static Result<std::unique_ptr<UdpReceiver>> Bind(uint16_t port);

  Result<bool> Receive(std::string* payload, int timeout_ms) override;
  void Close() override;

  /// The bound port.
  uint16_t port() const { return port_; }

 private:
  UdpReceiver(int fd, uint16_t port) : fd_(fd), port_(port) {}
  int fd_;
  uint16_t port_;
};

/// UDP sender addressed at 127.0.0.1:port.
class UdpSender : public DatagramSender {
 public:
  ~UdpSender() override;

  static Result<std::unique_ptr<UdpSender>> Connect(uint16_t port);

  Status Send(const std::string& payload) override;

 private:
  explicit UdpSender(int fd) : fd_(fd) {}
  int fd_;
};

}  // namespace stetho::net

#endif  // STETHO_NET_UDP_H_
