#ifndef STETHO_NET_UDP_H_
#define STETHO_NET_UDP_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "net/datagram.h"

namespace stetho::net {

/// Real UDP socket bound to 127.0.0.1. The MonetDB profiler streams events
/// to the textual Stethoscope over exactly this kind of socket (paper §3.2).
class UdpReceiver : public DatagramReceiver {
 public:
  ~UdpReceiver() override;

  /// Binds to 127.0.0.1:`port`; port 0 picks an ephemeral port (see port()).
  static Result<std::unique_ptr<UdpReceiver>> Bind(uint16_t port);

  Result<bool> Receive(std::string* payload, int timeout_ms) override;
  void Close() override;

  /// The bound port.
  uint16_t port() const { return port_; }

 private:
  UdpReceiver(int fd, uint16_t port) : fd_(fd), port_(port) {}
  /// The descriptor is closed only by the destructor; Close() just flips
  /// `closed_` and wakes a listener blocked in Receive() with a zero-byte
  /// self-datagram, so no thread ever sees the fd die mid-syscall. Callers
  /// must join listener threads before destroying the receiver (as
  /// TextualStethoscope::Stop does).
  int fd_;
  uint16_t port_;
  std::atomic<bool> closed_{false};
};

/// UDP sender addressed at 127.0.0.1:port.
class UdpSender : public DatagramSender {
 public:
  ~UdpSender() override;

  static Result<std::unique_ptr<UdpSender>> Connect(uint16_t port);

  Status Send(const std::string& payload) override;

 private:
  explicit UdpSender(int fd) : fd_(fd) {}
  int fd_;
};

}  // namespace stetho::net

#endif  // STETHO_NET_UDP_H_
