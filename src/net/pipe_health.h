#ifndef STETHO_NET_PIPE_HEALTH_H_
#define STETHO_NET_PIPE_HEALTH_H_

#include <cstdint>
#include <mutex>
#include <set>
#include <string>

#include "profiler/event.h"

namespace stetho::net {

/// Sentinel for "no emit→ingest clock-offset estimate yet".
inline constexpr int64_t kNoClockOffset = 0x7fffffffffffffff;

/// Point-in-time picture of one stream's end-to-end delivery health, built
/// from the profiler's per-event global sequence numbers
/// (profiler::TraceEvent::event). All counts are monotone over the life of
/// the accountant: once a sequence number is declared lost it stays lost
/// even if the datagram later materializes (it is then counted reordered,
/// not resurrected — renderers acted on its absence already).
struct PipeHealthSummary {
  int64_t observed = 0;     ///< distinct sequence numbers seen
  int64_t duplicated = 0;   ///< arrivals of an already-seen sequence number
  int64_t reordered = 0;    ///< late arrivals that filled (or trailed) a gap
  int64_t lost = 0;         ///< gaps aged past the reorder window / finalized
  int64_t pending = 0;      ///< open gaps still inside the reorder window
  int64_t min_seq = -1;     ///< smallest sequence number seen (-1 = none)
  int64_t max_seq = -1;     ///< largest sequence number seen
  /// Estimated emit→ingest clock offset in microseconds: the minimum
  /// (ingest − emit) delta over all timestamped arrivals, i.e. the offset
  /// assuming at least one datagram experienced ~zero queueing delay.
  /// kNoClockOffset until a timestamped event arrives.
  int64_t clock_offset_us = kNoClockOffset;
  int64_t last_latency_us = 0;  ///< offset-corrected delay of the newest event
  int64_t max_latency_us = 0;   ///< worst offset-corrected delay seen
  int64_t newest_emit_us = 0;   ///< largest TraceEvent::time_us seen

  /// Sequence numbers the emitter produced over the observed span.
  int64_t expected() const {
    return max_seq >= min_seq && min_seq >= 0 ? max_seq - min_seq + 1 : 0;
  }
  /// (lost + still-pending) / expected; 0 when nothing arrived yet.
  double loss_ratio() const {
    int64_t n = expected();
    return n > 0 ? static_cast<double>(lost + pending) / static_cast<double>(n)
                 : 0.0;
  }
  /// One status line: "pipe: 380 ok, 19 lost (4.8%), 2 reord, 0 dup, ...".
  std::string ToString() const;
};

/// Per-stream gap/reorder/duplicate accountant over the profiler's global
/// event sequence. The emitter's contract (profiler::Profiler::EmitImpl)
/// is that delivered events carry a contiguous sequence, so any hole the
/// receiver observes is transport loss, any backwards arrival a reorder,
/// and any repeat a duplicate.
///
/// Algorithm: arrivals above the high-water mark open one pending gap per
/// skipped sequence number; an arrival that fills a pending gap counts as
/// a reorder; an arrival at an already-seen number counts as a duplicate.
/// A pending gap more than `reorder_window` sequence numbers behind the
/// high-water mark is declared lost (monotone — see PipeHealthSummary);
/// Finalize() closes the remaining gaps at end of stream.
///
/// Process-wide mirrors: every transition bumps
/// stetho_pipe_{lost,reordered,duplicated}_total, and timestamped arrivals
/// feed stetho_pipe_latency_usec / ObserveStaleness() feeds
/// stetho_pipe_staleness_usec. Thread-safe; one mutex, O(log gaps) per
/// event.
class StreamHealth {
 public:
  struct Options {
    /// How many sequence numbers behind the high-water mark a hole may
    /// trail before it is declared lost instead of merely late (clamped
    /// to >= 1).
    int64_t reorder_window = 256;
    /// Hard cap on tracked open gaps; the oldest spill into `lost` (a
    /// burst of loss should not grow memory without bound).
    size_t max_pending = 4096;
  };

  StreamHealth() : StreamHealth(Options{}) {}
  explicit StreamHealth(Options options);

  /// Accounts one arrival. `ingest_us` is the receiver clock at ingest and
  /// feeds the offset/latency estimate; pass a negative value when the
  /// receiver did not read a clock (loss accounting still runs — the obs
  /// kill-switch philosophy: counting is free, clocks are opt-in).
  void Observe(const profiler::TraceEvent& event, int64_t ingest_us = -1);

  /// Records how stale the rendered picture is at `now_us` (receiver
  /// clock): now − offset − newest emit, into stetho_pipe_staleness_usec.
  /// No-op until the offset is known.
  void ObserveStaleness(int64_t now_us);

  /// End of stream: every still-open gap becomes a loss. Idempotent;
  /// further arrivals (late stragglers) count as reorders.
  void Finalize();

  PipeHealthSummary Snapshot() const;

 private:
  void AgeOutLocked();

  Options options_;
  mutable std::mutex mu_;
  std::set<int64_t> pending_;  // open gaps, ascending
  PipeHealthSummary sum_;
  bool any_ = false;
};

}  // namespace stetho::net

#endif  // STETHO_NET_PIPE_HEALTH_H_
