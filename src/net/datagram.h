#ifndef STETHO_NET_DATAGRAM_H_
#define STETHO_NET_DATAGRAM_H_

#include <memory>
#include <string>

#include "common/status.h"

namespace stetho::net {

/// Receiving end of a datagram transport. Implementations: loopback UDP
/// (the paper's transport) and an in-process channel (for deterministic
/// tests and single-binary demos).
class DatagramReceiver {
 public:
  virtual ~DatagramReceiver() = default;

  /// Blocks up to `timeout_ms` for one datagram. Returns true and fills
  /// `payload` on receipt; false on timeout; error Status on failure or
  /// closed transport.
  virtual Result<bool> Receive(std::string* payload, int timeout_ms) = 0;

  /// Unblocks pending and future receives.
  virtual void Close() = 0;
};

/// Sending end of a datagram transport.
class DatagramSender {
 public:
  virtual ~DatagramSender() = default;
  /// Sends one datagram (best-effort, like UDP).
  virtual Status Send(const std::string& payload) = 0;
};

}  // namespace stetho::net

#endif  // STETHO_NET_DATAGRAM_H_
