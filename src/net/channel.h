#ifndef STETHO_NET_CHANNEL_H_
#define STETHO_NET_CHANNEL_H_

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <string>

#include "net/datagram.h"

namespace stetho::net {

/// In-process datagram channel with the same semantics as loopback UDP
/// (unbounded-ish queue, message boundaries preserved). Used where the demo
/// runs server and Stethoscope in one process, and by deterministic tests.
class Channel {
 public:
  /// Creates a connected (sender, receiver) pair sharing a queue.
  static std::pair<std::unique_ptr<DatagramSender>,
                   std::unique_ptr<DatagramReceiver>>
  CreatePair(size_t max_queue = 1 << 16);

 private:
  struct State {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<std::string> queue;
    size_t max_queue;
    bool closed = false;
  };

  class Sender;
  class Receiver;
};

}  // namespace stetho::net

#endif  // STETHO_NET_CHANNEL_H_
