#include "net/trace_stream.h"

#include "common/string_util.h"
#include "obs/metrics.h"

namespace stetho::net {
namespace {

obs::Counter* TraceDroppedCounter() {
  static obs::Counter* counter = obs::Registry::Default()->GetOrCreateCounter(
      "stetho_net_trace_dropped_total",
      "Profiler trace events lost by datagram sinks (send failed or "
      "truncated)");
  return counter;
}

}  // namespace

void DatagramTraceSink::Consume(const profiler::TraceEvent& event) {
  Status st = sender_->Send(profiler::FormatTraceLine(event));
  if (!st.ok()) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    TraceDroppedCounter()->Increment();
  }
}

Status SendDotFile(DatagramSender* sender, const std::string& query_name,
                   const std::string& dot_content) {
  STETHO_RETURN_IF_ERROR(
      sender->Send(std::string(StreamFraming::kDotBegin) + query_name));
  for (const std::string& line : Split(dot_content, '\n')) {
    if (line.empty()) continue;
    STETHO_RETURN_IF_ERROR(sender->Send(std::string(StreamFraming::kDotLine) + line));
  }
  return sender->Send(std::string(StreamFraming::kDotEnd) + query_name);
}

Status SendEof(DatagramSender* sender, const std::string& query_name) {
  return sender->Send(std::string(StreamFraming::kEof) + query_name);
}

}  // namespace stetho::net
