#include "net/trace_stream.h"

#include "common/string_util.h"

namespace stetho::net {

Status SendDotFile(DatagramSender* sender, const std::string& query_name,
                   const std::string& dot_content) {
  STETHO_RETURN_IF_ERROR(
      sender->Send(std::string(StreamFraming::kDotBegin) + query_name));
  for (const std::string& line : Split(dot_content, '\n')) {
    if (line.empty()) continue;
    STETHO_RETURN_IF_ERROR(sender->Send(std::string(StreamFraming::kDotLine) + line));
  }
  return sender->Send(std::string(StreamFraming::kDotEnd) + query_name);
}

Status SendEof(DatagramSender* sender, const std::string& query_name) {
  return sender->Send(std::string(StreamFraming::kEof) + query_name);
}

}  // namespace stetho::net
