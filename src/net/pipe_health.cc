#include "net/pipe_health.h"

#include <algorithm>

#include "common/string_util.h"
#include "obs/metrics.h"

namespace stetho::net {
namespace {

// Process-wide mirrors of every StreamHealth instance, so `--metrics` and
// Mserver::MetricsText() expose pipeline health without a handle on the
// individual accountants (there is one per connected server stream).
obs::Counter* LostCounter() {
  static obs::Counter* c = obs::Registry::Default()->GetOrCreateCounter(
      "stetho_pipe_lost_total",
      "Trace-stream sequence numbers declared lost (gap aged past the "
      "reorder window or open at end of stream)");
  return c;
}

obs::Counter* ReorderedCounter() {
  static obs::Counter* c = obs::Registry::Default()->GetOrCreateCounter(
      "stetho_pipe_reordered_total",
      "Trace-stream events that arrived after a later sequence number");
  return c;
}

obs::Counter* DuplicatedCounter() {
  static obs::Counter* c = obs::Registry::Default()->GetOrCreateCounter(
      "stetho_pipe_duplicated_total",
      "Trace-stream arrivals of an already-delivered sequence number");
  return c;
}

obs::Histogram* LatencyHistogram() {
  static obs::Histogram* h = obs::Registry::Default()->GetOrCreateHistogram(
      "stetho_pipe_latency_usec",
      "End-to-end emit-to-ingest delay per trace event, corrected by the "
      "estimated clock offset",
      obs::Histogram::DefaultLatencyBounds());
  return h;
}

obs::Histogram* StalenessHistogram() {
  static obs::Histogram* h = obs::Registry::Default()->GetOrCreateHistogram(
      "stetho_pipe_staleness_usec",
      "Age of the newest ingested trace event at each analysis round "
      "(receiver now minus offset-corrected newest emit)",
      obs::Histogram::DefaultLatencyBounds());
  return h;
}

}  // namespace

std::string PipeHealthSummary::ToString() const {
  std::string s = StrFormat(
      "pipe: %lld ok, %lld lost (%.1f%%), %lld reordered, %lld duplicated",
      static_cast<long long>(observed), static_cast<long long>(lost + pending),
      100.0 * loss_ratio(), static_cast<long long>(reordered),
      static_cast<long long>(duplicated));
  if (clock_offset_us != kNoClockOffset) {
    s += StrFormat(", latency %lld us (max %lld)",
                   static_cast<long long>(last_latency_us),
                   static_cast<long long>(max_latency_us));
  }
  return s;
}

StreamHealth::StreamHealth(Options options) : options_(options) {
  options_.reorder_window = std::max<int64_t>(1, options_.reorder_window);
}

void StreamHealth::AgeOutLocked() {
  // A hole further behind the high-water mark than the reorder window (or
  // beyond the pending cap) is transport loss, not a straggler.
  while (!pending_.empty() &&
         (*pending_.begin() + options_.reorder_window < sum_.max_seq ||
          pending_.size() > options_.max_pending)) {
    pending_.erase(pending_.begin());
    ++sum_.lost;
    LostCounter()->Increment();
  }
}

void StreamHealth::Observe(const profiler::TraceEvent& event,
                           int64_t ingest_us) {
  std::lock_guard<std::mutex> lock(mu_);
  const int64_t seq = event.event;
  if (!any_) {
    any_ = true;
    sum_.min_seq = sum_.max_seq = seq;
    ++sum_.observed;
  } else if (seq > sum_.max_seq) {
    for (int64_t q = sum_.max_seq + 1; q < seq; ++q) pending_.insert(q);
    sum_.max_seq = seq;
    ++sum_.observed;
  } else if (seq < sum_.min_seq) {
    // Straggler from before the first arrival: widen the span downward and
    // open the holes it reveals. It necessarily arrived out of order.
    for (int64_t q = seq + 1; q < sum_.min_seq; ++q) pending_.insert(q);
    sum_.min_seq = seq;
    ++sum_.observed;
    ++sum_.reordered;
    ReorderedCounter()->Increment();
  } else if (pending_.erase(seq) > 0) {
    ++sum_.observed;
    ++sum_.reordered;
    ReorderedCounter()->Increment();
  } else {
    // Inside the span, neither new nor pending: a repeat delivery. (A
    // straggler for a seq already aged into `lost` lands here too — the
    // loss verdict is monotone, so the late copy is surplus by then.)
    ++sum_.duplicated;
    DuplicatedCounter()->Increment();
  }
  AgeOutLocked();
  sum_.pending = static_cast<int64_t>(pending_.size());

  sum_.newest_emit_us = std::max(sum_.newest_emit_us, event.time_us);
  if (ingest_us >= 0) {
    const int64_t delta = ingest_us - event.time_us;
    sum_.clock_offset_us = std::min(sum_.clock_offset_us, delta);
    const int64_t latency = delta - sum_.clock_offset_us;
    sum_.last_latency_us = latency;
    sum_.max_latency_us = std::max(sum_.max_latency_us, latency);
    LatencyHistogram()->Observe(latency);
  }
}

void StreamHealth::ObserveStaleness(int64_t now_us) {
  std::lock_guard<std::mutex> lock(mu_);
  if (sum_.clock_offset_us == kNoClockOffset || sum_.newest_emit_us == 0) {
    return;
  }
  const int64_t staleness =
      std::max<int64_t>(0, now_us - sum_.clock_offset_us - sum_.newest_emit_us);
  StalenessHistogram()->Observe(staleness);
}

void StreamHealth::Finalize() {
  std::lock_guard<std::mutex> lock(mu_);
  sum_.lost += static_cast<int64_t>(pending_.size());
  if (!pending_.empty()) {
    LostCounter()->Increment(static_cast<int64_t>(pending_.size()));
  }
  pending_.clear();
  sum_.pending = 0;
}

PipeHealthSummary StreamHealth::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sum_;
}

}  // namespace stetho::net
