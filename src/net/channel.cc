#include "net/channel.h"

#include <chrono>

namespace stetho::net {

class Channel::Sender : public DatagramSender {
 public:
  explicit Sender(std::shared_ptr<State> state) : state_(std::move(state)) {}

  Status Send(const std::string& payload) override {
    std::lock_guard<std::mutex> lock(state_->mu);
    if (state_->closed) return Status::Aborted("channel closed");
    // UDP drops on overload; the channel mirrors that instead of blocking.
    if (state_->queue.size() >= state_->max_queue) return Status::OK();
    state_->queue.push_back(payload);
    state_->cv.notify_one();
    return Status::OK();
  }

 private:
  std::shared_ptr<State> state_;
};

class Channel::Receiver : public DatagramReceiver {
 public:
  explicit Receiver(std::shared_ptr<State> state) : state_(std::move(state)) {}
  ~Receiver() override { Close(); }

  Result<bool> Receive(std::string* payload, int timeout_ms) override {
    std::unique_lock<std::mutex> lock(state_->mu);
    bool got = state_->cv.wait_for(
        lock, std::chrono::milliseconds(timeout_ms),
        [this] { return !state_->queue.empty() || state_->closed; });
    if (!got || state_->queue.empty()) {
      if (state_->closed) return Status::Aborted("channel closed");
      return false;
    }
    *payload = std::move(state_->queue.front());
    state_->queue.pop_front();
    return true;
  }

  void Close() override {
    std::lock_guard<std::mutex> lock(state_->mu);
    state_->closed = true;
    state_->cv.notify_all();
  }

 private:
  std::shared_ptr<State> state_;
};

std::pair<std::unique_ptr<DatagramSender>, std::unique_ptr<DatagramReceiver>>
Channel::CreatePair(size_t max_queue) {
  auto state = std::make_shared<State>();
  state->max_queue = max_queue;
  return {std::make_unique<Sender>(state), std::make_unique<Receiver>(state)};
}

}  // namespace stetho::net
