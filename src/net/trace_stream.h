#ifndef STETHO_NET_TRACE_STREAM_H_
#define STETHO_NET_TRACE_STREAM_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "net/datagram.h"
#include "profiler/sink.h"

namespace stetho::net {

/// Wire framing of the profiler stream (one datagram per line):
///
///   %DOT-BEGIN <query-name>       the plan's dot file follows
///   %DOT <dot-file line>          one line of dot content
///   %DOT-END <query-name>         dot file complete; execution starts next
///   [ ...trace event line... ]    profiler events (profiler/event.h format)
///   %EOF <query-name>             query finished
///
/// This mirrors the paper's protocol: the server pushes the dot file over
/// the UDP stream before query execution begins, then streams the trace;
/// the textual Stethoscope demultiplexes the two (paper §4.2).
struct StreamFraming {
  static constexpr const char* kDotBegin = "%DOT-BEGIN ";
  static constexpr const char* kDotLine = "%DOT ";
  static constexpr const char* kDotEnd = "%DOT-END ";
  static constexpr const char* kEof = "%EOF ";
};

/// Profiler sink that forwards each event as one datagram. Thread-safe
/// (serializes sends).
class DatagramTraceSink : public profiler::EventSink {
 public:
  explicit DatagramTraceSink(std::shared_ptr<DatagramSender> sender)
      : sender_(std::move(sender)) {}

  /// Best-effort, like the UDP stream in the paper: a failed or truncated
  /// send is a dropped event, not an engine error — but it is counted here
  /// and in `stetho_net_trace_dropped_total`, never silently lost.
  void Consume(const profiler::TraceEvent& event) override;

  /// Events whose datagram was not (fully) delivered to the socket.
  int64_t dropped() const override {
    return dropped_.load(std::memory_order_relaxed);
  }

  DatagramSender* sender() const { return sender_.get(); }

 private:
  std::shared_ptr<DatagramSender> sender_;
  std::atomic<int64_t> dropped_{0};
};

/// Sends a dot file over the stream using the framing above.
Status SendDotFile(DatagramSender* sender, const std::string& query_name,
                   const std::string& dot_content);

/// Sends the end-of-query marker.
Status SendEof(DatagramSender* sender, const std::string& query_name);

}  // namespace stetho::net

#endif  // STETHO_NET_TRACE_STREAM_H_
