#ifndef STETHO_NET_FAULT_INJECTION_H_
#define STETHO_NET_FAULT_INJECTION_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "common/rng.h"
#include "net/datagram.h"

namespace stetho::net {

/// Fault plan for a FaultInjectingSender. Probabilities are per datagram
/// and mutually exclusive (drop is drawn first, then duplicate, then
/// reorder), so the injected counters decompose exactly — what the tests
/// of the receiving gap accountant need.
struct FaultOptions {
  double drop_p = 0.0;     ///< datagram silently discarded
  double dup_p = 0.0;      ///< datagram delivered twice back to back
  double reorder_p = 0.0;  ///< datagram held and swapped with its successor
  uint64_t seed = 1;       ///< SplitMix64 seed; same seed = same fault plan
  /// When true (default), '%'-prefixed stream-framing lines (dot content,
  /// %EOF) pass through unfaulted — the paper's control plane is tiny next
  /// to the event stream, and sparing it lets tests isolate event-loss
  /// behavior from lost-plan behavior.
  bool spare_control_lines = true;
};

/// DatagramSender decorator that injects seeded, reproducible transport
/// faults — the "bad network day" the pipeline-health accounting exists
/// to measure. Wraps any real transport (UDP, in-process channel).
///
/// Reorder mechanics: a datagram drawing the reorder fault is held back;
/// the next datagram (which bypasses its own fault draw — one fault at a
/// time keeps the counts exact) is sent first and the held one follows,
/// completing one swap = one reordered datagram. A held datagram is
/// flushed, in order and uncounted, before any spared control line and at
/// destruction, so framing order and end-of-stream survive.
///
/// Thread-safe (sends serialize on one mutex, like the UDP sender).
class FaultInjectingSender : public DatagramSender {
 public:
  FaultInjectingSender(std::shared_ptr<DatagramSender> inner,
                       const FaultOptions& options);
  ~FaultInjectingSender() override;

  Status Send(const std::string& payload) override;

  /// Sends any held-back datagram now (in order; not a reorder).
  Status Flush();

  /// Exact injected-fault counts, for asserting the receiver's accounting.
  int64_t injected_dropped() const;
  int64_t injected_duplicated() const;
  int64_t injected_reordered() const;
  /// Datagrams offered to Send(), including spared control lines.
  int64_t sent() const;

 private:
  std::shared_ptr<DatagramSender> inner_;
  const FaultOptions options_;

  mutable std::mutex mu_;
  SplitMix64 rng_;
  std::optional<std::string> held_;
  int64_t sent_ = 0;
  int64_t dropped_ = 0;
  int64_t duplicated_ = 0;
  int64_t reordered_ = 0;
};

}  // namespace stetho::net

#endif  // STETHO_NET_FAULT_INJECTION_H_
