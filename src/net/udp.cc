#include "net/udp.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/string_util.h"
#include "obs/metrics.h"

namespace stetho::net {
namespace {

Status Errno(const char* what) {
  return Status::IoError(StrFormat("%s: %s", what, std::strerror(errno)));
}

obs::Counter* SentCounter() {
  static obs::Counter* counter = obs::Registry::Default()->GetOrCreateCounter(
      "stetho_net_datagrams_sent_total", "UDP datagrams fully sent");
  return counter;
}

obs::Counter* RecvCounter() {
  static obs::Counter* counter = obs::Registry::Default()->GetOrCreateCounter(
      "stetho_net_datagrams_recv_total", "UDP datagrams received");
  return counter;
}

obs::Counter* FailedCounter() {
  static obs::Counter* counter = obs::Registry::Default()->GetOrCreateCounter(
      "stetho_net_datagrams_failed_total",
      "UDP sends that errored or were truncated by the kernel");
  return counter;
}

sockaddr_in LoopbackAddr(uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

}  // namespace

UdpReceiver::~UdpReceiver() {
  Close();
  if (fd_ >= 0) ::close(fd_);
}

Result<std::unique_ptr<UdpReceiver>> UdpReceiver::Bind(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd < 0) return Errno("socket");
  sockaddr_in addr = LoopbackAddr(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Errno("bind");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd);
    return Errno("getsockname");
  }
  return std::unique_ptr<UdpReceiver>(
      new UdpReceiver(fd, ntohs(addr.sin_port)));
}

Result<bool> UdpReceiver::Receive(std::string* payload, int timeout_ms) {
  if (closed_.load()) return Status::Aborted("receiver closed");
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  fd_set readset;
  FD_ZERO(&readset);
  FD_SET(fd_, &readset);
  int rc = ::select(fd_ + 1, &readset, nullptr, nullptr, &tv);
  if (rc < 0) {
    if (errno == EINTR || errno == EBADF) return false;
    return Errno("select");
  }
  if (rc == 0) return false;  // timeout
  char buf[65536];
  ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
  if (n < 0) {
    if (errno == EBADF) return Status::Aborted("receiver closed");
    if (errno == EINTR) return false;
    return Errno("recv");
  }
  // A concurrent Close() may have raced with the wait above; its zero-byte
  // wake-up datagram (or any payload) must not be delivered post-close.
  if (closed_.load()) return Status::Aborted("receiver closed");
  payload->assign(buf, static_cast<size_t>(n));
  RecvCounter()->Increment();
  return true;
}

void UdpReceiver::Close() {
  if (closed_.exchange(true)) return;
  // Wake a listener parked in select(): a zero-byte datagram to our own
  // port makes the descriptor readable; Receive() then observes `closed_`.
  // The fd stays open (the destructor closes it) so the listener never
  // races against ::close on a descriptor it is still using.
  auto wake = UdpSender::Connect(port_);
  if (wake.ok()) {
    (void)wake.value()->Send(std::string());
  }
}

UdpSender::~UdpSender() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::unique_ptr<UdpSender>> UdpSender::Connect(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd < 0) return Errno("socket");
  sockaddr_in addr = LoopbackAddr(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Errno("connect");
  }
  return std::unique_ptr<UdpSender>(new UdpSender(fd));
}

Status UdpSender::Send(const std::string& payload) {
  if (fd_ < 0) return Status::Aborted("sender closed");
  ssize_t n = ::send(fd_, payload.data(), payload.size(), 0);
  if (n < 0) {
    FailedCounter()->Increment();
    return Errno("send");
  }
  // A short write on a datagram socket truncates the payload: the receiver
  // gets a corrupt trace line. The seed reported this as success — which is
  // exactly the silent data loss the dropped() counters exist to surface.
  if (static_cast<size_t>(n) != payload.size()) {
    FailedCounter()->Increment();
    return Status::IoError(
        StrFormat("short send: %zd of %zu bytes", n, payload.size()));
  }
  SentCounter()->Increment();
  return Status::OK();
}

}  // namespace stetho::net
