#ifndef STETHO_STORAGE_TABLE_H_
#define STETHO_STORAGE_TABLE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/column.h"

namespace stetho::storage {

/// One column's declaration inside a schema.
struct ColumnDef {
  std::string name;
  DataType type;
};

/// Ordered list of column declarations.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<ColumnDef> columns) : columns_(std::move(columns)) {}

  size_t num_columns() const { return columns_.size(); }
  const ColumnDef& column(size_t i) const { return columns_[i]; }
  const std::vector<ColumnDef>& columns() const { return columns_; }

  /// Index of the column named `name`, or -1 if absent (case-insensitive).
  int FindColumn(const std::string& name) const;

  /// Renders "(name type, ...)" for diagnostics.
  std::string ToString() const;

 private:
  std::vector<ColumnDef> columns_;
};

class Table;
using TablePtr = std::shared_ptr<Table>;

/// A named base table: a schema plus one Column per schema entry, all of
/// equal length. Tables are immutable after loading (OLAP workload model).
class Table {
 public:
  Table(std::string name, Schema schema);

  /// Creates a table whose column vectors are pre-created and empty.
  static TablePtr Make(std::string name, Schema schema);

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return columns_.empty() ? 0 : columns_[0]->size(); }

  ColumnPtr column(size_t i) const { return columns_[i]; }
  /// Column by name (case-insensitive); NotFound on miss.
  Result<ColumnPtr> GetColumn(const std::string& name) const;

  /// Appends one row given values in schema order.
  Status AppendRow(const std::vector<Value>& row);

  /// Reserves capacity for `rows` rows in every column (including null
  /// masks) so bulk loads with known row counts never reallocate.
  void Reserve(size_t rows);

  /// Trims every column's backing-array slack once loading is done (see
  /// Column::ShrinkToFit).
  void ShrinkToFit();

  /// Total approximate memory footprint of all columns.
  size_t MemoryBytes() const;

 private:
  std::string name_;
  Schema schema_;
  std::vector<ColumnPtr> columns_;
};

/// Name → table registry shared by SQL binding and the MAL `sql.bind`
/// kernel. Thread-compatible: populated at load time, read-only afterwards.
class Catalog {
 public:
  /// Registers a table; AlreadyExists if the name is taken.
  Status AddTable(TablePtr table);

  /// Case-insensitive lookup; NotFound on miss.
  Result<TablePtr> GetTable(const std::string& name) const;

  std::vector<std::string> TableNames() const;
  size_t num_tables() const { return tables_.size(); }

 private:
  std::vector<TablePtr> tables_;
};

}  // namespace stetho::storage

#endif  // STETHO_STORAGE_TABLE_H_
