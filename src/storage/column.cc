#include "storage/column.h"

#include "common/logging.h"
#include "common/string_util.h"

namespace stetho::storage {

ColumnPtr Column::Make(DataType type) {
  STETHO_CHECK(type != DataType::kBat && type != DataType::kNull);
  return std::make_shared<Column>(type);
}

ColumnPtr Column::MakeOidRange(uint64_t first, uint64_t count) {
  ColumnPtr col = Make(DataType::kOid);
  col->Reserve(count);
  for (uint64_t i = 0; i < count; ++i) col->AppendOid(first + i);
  return col;
}

void Column::MarkNull(bool is_null) {
  if (is_null && nulls_.empty()) {
    nulls_.assign(size_, 0);  // backfill: everything so far was non-null
    nulls_.push_back(1);
    return;
  }
  if (!nulls_.empty()) nulls_.push_back(is_null ? 1 : 0);
}

void Column::AppendInt(int64_t v) {
  ints_.push_back(v);
  MarkNull(false);
  ++size_;
}

void Column::AppendDouble(double v) {
  doubles_.push_back(v);
  MarkNull(false);
  ++size_;
}

void Column::AppendString(std::string v) {
  strings_.push_back(std::move(v));
  MarkNull(false);
  ++size_;
}

void Column::AppendBool(bool v) {
  ints_.push_back(v ? 1 : 0);
  MarkNull(false);
  ++size_;
}

void Column::AppendOid(uint64_t v) {
  ints_.push_back(static_cast<int64_t>(v));
  MarkNull(false);
  ++size_;
}

void Column::AppendNull() {
  switch (type_) {
    case DataType::kInt64:
    case DataType::kOid:
    case DataType::kBool:
      ints_.push_back(0);
      break;
    case DataType::kDouble:
      doubles_.push_back(0.0);
      break;
    case DataType::kString:
      strings_.emplace_back();
      break;
    default:
      break;
  }
  MarkNull(true);
  ++size_;
}

Status Column::AppendValue(const Value& v) {
  if (v.is_null()) {
    AppendNull();
    return Status::OK();
  }
  switch (type_) {
    case DataType::kInt64: {
      STETHO_ASSIGN_OR_RETURN(int64_t x, v.ToInt());
      AppendInt(x);
      return Status::OK();
    }
    case DataType::kDouble: {
      STETHO_ASSIGN_OR_RETURN(double x, v.ToDouble());
      AppendDouble(x);
      return Status::OK();
    }
    case DataType::kString:
      if (v.type() != DataType::kString) {
        return Status::TypeError("expected string value, got " +
                                 std::string(DataTypeName(v.type())));
      }
      AppendString(v.AsString());
      return Status::OK();
    case DataType::kBool:
      if (v.type() != DataType::kBool) {
        return Status::TypeError("expected bool value, got " +
                                 std::string(DataTypeName(v.type())));
      }
      AppendBool(v.AsBool());
      return Status::OK();
    case DataType::kOid: {
      STETHO_ASSIGN_OR_RETURN(int64_t x, v.ToInt());
      AppendOid(static_cast<uint64_t>(x));
      return Status::OK();
    }
    default:
      return Status::TypeError("column has non-storable type");
  }
}

void Column::Reserve(size_t n) {
  switch (type_) {
    case DataType::kInt64:
    case DataType::kOid:
    case DataType::kBool:
      ints_.reserve(n);
      break;
    case DataType::kDouble:
      doubles_.reserve(n);
      break;
    case DataType::kString:
      strings_.reserve(n);
      break;
    default:
      break;
  }
}

Value Column::GetValue(size_t i) const {
  if (IsNull(i)) return Value::Null();
  switch (type_) {
    case DataType::kInt64:
      return Value::Int(ints_[i]);
    case DataType::kOid:
      return Value::Oid(static_cast<uint64_t>(ints_[i]));
    case DataType::kBool:
      return Value::Bool(ints_[i] != 0);
    case DataType::kDouble:
      return Value::Double(doubles_[i]);
    case DataType::kString:
      return Value::String(strings_[i]);
    default:
      return Value::Null();
  }
}

size_t Column::MemoryBytes() const {
  size_t bytes = ints_.capacity() * sizeof(int64_t) +
                 doubles_.capacity() * sizeof(double) +
                 nulls_.capacity();
  for (const std::string& s : strings_) {
    bytes += sizeof(std::string) + s.capacity();
  }
  return bytes;
}

ColumnPtr Column::Slice(size_t lo, size_t hi) const {
  if (hi > size_) hi = size_;
  if (lo > hi) lo = hi;
  ColumnPtr out = std::make_shared<Column>(type_);
  out->Reserve(hi - lo);
  for (size_t i = lo; i < hi; ++i) {
    if (IsNull(i)) {
      out->AppendNull();
      continue;
    }
    switch (type_) {
      case DataType::kInt64:
      case DataType::kOid:
      case DataType::kBool:
        out->ints_.push_back(ints_[i]);
        out->MarkNull(false);
        ++out->size_;
        break;
      case DataType::kDouble:
        out->AppendDouble(doubles_[i]);
        break;
      case DataType::kString:
        out->AppendString(strings_[i]);
        break;
      default:
        break;
    }
  }
  return out;
}

Result<ColumnPtr> Column::Gather(const std::vector<int64_t>& positions) const {
  ColumnPtr out = std::make_shared<Column>(type_);
  out->Reserve(positions.size());
  for (int64_t pos : positions) {
    if (pos < 0 || static_cast<size_t>(pos) >= size_) {
      return Status::OutOfRange(
          StrFormat("projection position %lld out of range [0,%zu)",
                    static_cast<long long>(pos), size_));
    }
    size_t i = static_cast<size_t>(pos);
    if (IsNull(i)) {
      out->AppendNull();
      continue;
    }
    switch (type_) {
      case DataType::kInt64:
      case DataType::kOid:
      case DataType::kBool:
        out->ints_.push_back(ints_[i]);
        out->MarkNull(false);
        ++out->size_;
        break;
      case DataType::kDouble:
        out->AppendDouble(doubles_[i]);
        break;
      case DataType::kString:
        out->AppendString(strings_[i]);
        break;
      default:
        break;
    }
  }
  return out;
}

}  // namespace stetho::storage
