#include "storage/column.h"

#include <cstddef>

#include "common/logging.h"
#include "common/string_util.h"

namespace stetho::storage {

ColumnPtr Column::Make(DataType type) {
  STETHO_CHECK(type != DataType::kBat && type != DataType::kNull);
  return std::make_shared<Column>(type);
}

ColumnPtr Column::MakeOidRange(uint64_t first, uint64_t count) {
  ColumnPtr col = Make(DataType::kOid);
  col->Reserve(count);
  for (uint64_t i = 0; i < count; ++i) col->AppendOid(first + i);
  return col;
}

void Column::MarkNull(bool is_null) {
  if (is_null && nulls_.empty()) {
    nulls_.assign(size_, 0);  // backfill: everything so far was non-null
    nulls_.push_back(1);
    return;
  }
  if (!nulls_.empty()) nulls_.push_back(is_null ? 1 : 0);
}

void Column::AppendInt(int64_t v) {
  ints_.push_back(v);
  MarkNull(false);
  ++size_;
}

void Column::AppendDouble(double v) {
  doubles_.push_back(v);
  MarkNull(false);
  ++size_;
}

void Column::AppendString(std::string v) {
  strings_.push_back(std::move(v));
  MarkNull(false);
  ++size_;
}

void Column::AppendBool(bool v) {
  ints_.push_back(v ? 1 : 0);
  MarkNull(false);
  ++size_;
}

void Column::AppendOid(uint64_t v) {
  ints_.push_back(static_cast<int64_t>(v));
  MarkNull(false);
  ++size_;
}

void Column::AppendNull() {
  switch (type_) {
    case DataType::kInt64:
    case DataType::kOid:
    case DataType::kBool:
      ints_.push_back(0);
      break;
    case DataType::kDouble:
      doubles_.push_back(0.0);
      break;
    case DataType::kString:
      strings_.emplace_back();
      break;
    default:
      break;
  }
  MarkNull(true);
  ++size_;
}

Status Column::AppendValue(const Value& v) {
  if (v.is_null()) {
    AppendNull();
    return Status::OK();
  }
  switch (type_) {
    case DataType::kInt64: {
      STETHO_ASSIGN_OR_RETURN(int64_t x, v.ToInt());
      AppendInt(x);
      return Status::OK();
    }
    case DataType::kDouble: {
      STETHO_ASSIGN_OR_RETURN(double x, v.ToDouble());
      AppendDouble(x);
      return Status::OK();
    }
    case DataType::kString:
      if (v.type() != DataType::kString) {
        return Status::TypeError("expected string value, got " +
                                 std::string(DataTypeName(v.type())));
      }
      AppendString(v.AsString());
      return Status::OK();
    case DataType::kBool:
      if (v.type() != DataType::kBool) {
        return Status::TypeError("expected bool value, got " +
                                 std::string(DataTypeName(v.type())));
      }
      AppendBool(v.AsBool());
      return Status::OK();
    case DataType::kOid: {
      STETHO_ASSIGN_OR_RETURN(int64_t x, v.ToInt());
      AppendOid(static_cast<uint64_t>(x));
      return Status::OK();
    }
    default:
      return Status::TypeError("column has non-storable type");
  }
}

void Column::Reserve(size_t n) {
  switch (type_) {
    case DataType::kInt64:
    case DataType::kOid:
    case DataType::kBool:
      ints_.reserve(n);
      break;
    case DataType::kDouble:
      doubles_.reserve(n);
      break;
    case DataType::kString:
      strings_.reserve(n);
      break;
    default:
      break;
  }
  // Also reserve the (lazily materialized) null mask so the first NULL's
  // backfill and subsequent appends never reallocate mid-load.
  nulls_.reserve(n);
}

Status Column::AppendColumn(const Column& other) {
  if (other.type_ != type_) {
    return Status::TypeError("AppendColumn: element type mismatch (" +
                             std::string(DataTypeName(type_)) + " vs " +
                             std::string(DataTypeName(other.type_)) + ")");
  }
  // Merge null masks first: materialize ours iff either side has nulls.
  if (!other.nulls_.empty() && nulls_.empty()) {
    nulls_.reserve(size_ + other.size_);
    nulls_.assign(size_, 0);
  }
  if (!nulls_.empty()) {
    if (other.nulls_.empty()) {
      nulls_.insert(nulls_.end(), other.size_, 0);
    } else {
      nulls_.insert(nulls_.end(), other.nulls_.begin(), other.nulls_.end());
    }
  }
  switch (type_) {
    case DataType::kInt64:
    case DataType::kOid:
    case DataType::kBool:
      ints_.insert(ints_.end(), other.ints_.begin(), other.ints_.end());
      break;
    case DataType::kDouble:
      doubles_.insert(doubles_.end(), other.doubles_.begin(),
                      other.doubles_.end());
      break;
    case DataType::kString:
      strings_.insert(strings_.end(), other.strings_.begin(),
                      other.strings_.end());
      break;
    default:
      return Status::TypeError("AppendColumn: non-storable element type");
  }
  size_ += other.size_;
  return Status::OK();
}

Value Column::GetValue(size_t i) const {
  if (IsNull(i)) return Value::Null();
  switch (type_) {
    case DataType::kInt64:
      return Value::Int(ints_[i]);
    case DataType::kOid:
      return Value::Oid(static_cast<uint64_t>(ints_[i]));
    case DataType::kBool:
      return Value::Bool(ints_[i] != 0);
    case DataType::kDouble:
      return Value::Double(doubles_[i]);
    case DataType::kString:
      return Value::String(strings_[i]);
    default:
      return Value::Null();
  }
}

void Column::ShrinkToFit() {
  ints_.shrink_to_fit();
  doubles_.shrink_to_fit();
  strings_.shrink_to_fit();
  nulls_.shrink_to_fit();
}

size_t Column::MemoryBytes() const {
  size_t bytes = ints_.capacity() * sizeof(int64_t) +
                 doubles_.capacity() * sizeof(double) +
                 nulls_.capacity();
  for (const std::string& s : strings_) {
    bytes += sizeof(std::string) + s.capacity();
  }
  return bytes;
}

ColumnPtr Column::Slice(size_t lo, size_t hi) const {
  if (hi > size_) hi = size_;
  if (lo > hi) lo = hi;
  ColumnPtr out = std::make_shared<Column>(type_);
  // Bulk range copy of the backing array and the null mask — no per-row
  // dispatch. Null positions keep their zeroed placeholder values.
  switch (type_) {
    case DataType::kInt64:
    case DataType::kOid:
    case DataType::kBool:
      out->ints_.assign(ints_.begin() + static_cast<ptrdiff_t>(lo),
                        ints_.begin() + static_cast<ptrdiff_t>(hi));
      break;
    case DataType::kDouble:
      out->doubles_.assign(doubles_.begin() + static_cast<ptrdiff_t>(lo),
                           doubles_.begin() + static_cast<ptrdiff_t>(hi));
      break;
    case DataType::kString:
      out->strings_.assign(strings_.begin() + static_cast<ptrdiff_t>(lo),
                           strings_.begin() + static_cast<ptrdiff_t>(hi));
      break;
    default:
      break;
  }
  if (!nulls_.empty()) {
    out->nulls_.assign(nulls_.begin() + static_cast<ptrdiff_t>(lo),
                       nulls_.begin() + static_cast<ptrdiff_t>(hi));
  }
  out->size_ = hi - lo;
  return out;
}

Result<ColumnPtr> Column::Gather(const std::vector<int64_t>& positions) const {
  ColumnPtr out = std::make_shared<Column>(type_);
  const size_t n = positions.size();
  const bool with_nulls = !nulls_.empty();
  // Typed gather loops: bounds-check and copy raw elements; the boxed
  // GetValue/AppendValue path never runs. As in the append path, a NULL
  // position contributes its zero/empty placeholder plus a mask bit.
  auto out_of_range = [this](int64_t pos) {
    return Status::OutOfRange(
        StrFormat("projection position %lld out of range [0,%zu)",
                  static_cast<long long>(pos), size_));
  };
  switch (type_) {
    case DataType::kInt64:
    case DataType::kOid:
    case DataType::kBool:
      out->ints_.reserve(n);
      for (int64_t pos : positions) {
        if (pos < 0 || static_cast<size_t>(pos) >= size_) return out_of_range(pos);
        out->ints_.push_back(ints_[static_cast<size_t>(pos)]);
      }
      break;
    case DataType::kDouble:
      out->doubles_.reserve(n);
      for (int64_t pos : positions) {
        if (pos < 0 || static_cast<size_t>(pos) >= size_) return out_of_range(pos);
        out->doubles_.push_back(doubles_[static_cast<size_t>(pos)]);
      }
      break;
    case DataType::kString:
      out->strings_.reserve(n);
      for (int64_t pos : positions) {
        if (pos < 0 || static_cast<size_t>(pos) >= size_) return out_of_range(pos);
        out->strings_.push_back(strings_[static_cast<size_t>(pos)]);
      }
      break;
    default:
      return Status::TypeError("Gather: non-storable element type");
  }
  if (with_nulls) {
    out->nulls_.reserve(n);
    for (int64_t pos : positions) {
      out->nulls_.push_back(nulls_[static_cast<size_t>(pos)]);
    }
  }
  out->size_ = n;
  return out;
}

}  // namespace stetho::storage
