#ifndef STETHO_STORAGE_VALUE_H_
#define STETHO_STORAGE_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/status.h"

namespace stetho::storage {

/// Physical scalar/column element types understood by the engine.
enum class DataType {
  kNull = 0,  ///< typeless NULL / uninitialized
  kBool,
  kInt64,
  kDouble,
  kString,
  kOid,  ///< row identifier (position); MonetDB's `oid`
  kBat,  ///< reference to a column (BAT); only valid for MAL variables
};

/// Returns the MAL-style type name, e.g. ":lng", ":dbl", ":str", ":bat".
const char* DataTypeName(DataType type);

/// A dynamically-typed scalar. Used for SQL literals, MAL constant operands,
/// and element access into columns. Columns themselves store unboxed arrays;
/// Value only appears on scalar paths.
class Value {
 public:
  /// Constructs a NULL value.
  Value() : type_(DataType::kNull) {}

  static Value Null() { return Value(); }
  static Value Bool(bool v) {
    Value out;
    out.type_ = DataType::kBool;
    out.data_ = v;
    return out;
  }
  static Value Int(int64_t v) {
    Value out;
    out.type_ = DataType::kInt64;
    out.data_ = v;
    return out;
  }
  static Value Double(double v) {
    Value out;
    out.type_ = DataType::kDouble;
    out.data_ = v;
    return out;
  }
  static Value String(std::string v) {
    Value out;
    out.type_ = DataType::kString;
    out.data_ = std::move(v);
    return out;
  }
  static Value Oid(uint64_t v) {
    Value out;
    out.type_ = DataType::kOid;
    out.data_ = static_cast<int64_t>(v);
    return out;
  }

  DataType type() const { return type_; }
  bool is_null() const { return type_ == DataType::kNull; }

  /// Typed accessors; precondition: the value holds that type.
  bool AsBool() const { return std::get<bool>(data_); }
  int64_t AsInt() const { return std::get<int64_t>(data_); }
  double AsDouble() const { return std::get<double>(data_); }
  const std::string& AsString() const { return std::get<std::string>(data_); }
  uint64_t AsOid() const { return static_cast<uint64_t>(std::get<int64_t>(data_)); }

  /// Numeric widening view: int64/double/bool as double; error otherwise.
  Result<double> ToDouble() const;
  /// int64/bool as int64; error otherwise (doubles do not silently truncate).
  Result<int64_t> ToInt() const;

  /// Renders a literal form: NULL, true, 42, 3.14, "text", 7@0 (oid).
  std::string ToString() const;

  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }

  /// Total order for sorting; NULLs sort first, cross-numeric compares by
  /// double value. Returns <0, 0, >0.
  int Compare(const Value& other) const;

 private:
  DataType type_;
  std::variant<std::monostate, bool, int64_t, double, std::string> data_;
};

}  // namespace stetho::storage

#endif  // STETHO_STORAGE_VALUE_H_
