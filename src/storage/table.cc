#include "storage/table.h"

#include "common/string_util.h"

namespace stetho::storage {

int Schema::FindColumn(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (EqualsIgnoreCase(columns_[i].name, name)) return static_cast<int>(i);
  }
  return -1;
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
    out += DataTypeName(columns_[i].type);
  }
  out += ")";
  return out;
}

Table::Table(std::string name, Schema schema)
    : name_(std::move(name)), schema_(std::move(schema)) {
  columns_.reserve(schema_.num_columns());
  for (size_t i = 0; i < schema_.num_columns(); ++i) {
    columns_.push_back(Column::Make(schema_.column(i).type));
  }
}

TablePtr Table::Make(std::string name, Schema schema) {
  return std::make_shared<Table>(std::move(name), std::move(schema));
}

Result<ColumnPtr> Table::GetColumn(const std::string& name) const {
  int idx = schema_.FindColumn(name);
  if (idx < 0) {
    return Status::NotFound("no column '" + name + "' in table " + name_);
  }
  return columns_[static_cast<size_t>(idx)];
}

Status Table::AppendRow(const std::vector<Value>& row) {
  if (row.size() != schema_.num_columns()) {
    return Status::InvalidArgument(
        StrFormat("row arity %zu does not match schema arity %zu", row.size(),
                  schema_.num_columns()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    STETHO_RETURN_IF_ERROR(columns_[i]->AppendValue(row[i]));
  }
  return Status::OK();
}

void Table::Reserve(size_t rows) {
  for (const ColumnPtr& col : columns_) col->Reserve(rows);
}

void Table::ShrinkToFit() {
  for (const ColumnPtr& col : columns_) col->ShrinkToFit();
}

size_t Table::MemoryBytes() const {
  size_t bytes = 0;
  for (const ColumnPtr& col : columns_) bytes += col->MemoryBytes();
  return bytes;
}

Status Catalog::AddTable(TablePtr table) {
  for (const TablePtr& t : tables_) {
    if (EqualsIgnoreCase(t->name(), table->name())) {
      return Status::AlreadyExists("table '" + table->name() +
                                   "' already registered");
    }
  }
  tables_.push_back(std::move(table));
  return Status::OK();
}

Result<TablePtr> Catalog::GetTable(const std::string& name) const {
  for (const TablePtr& t : tables_) {
    if (EqualsIgnoreCase(t->name(), name)) return t;
  }
  return Status::NotFound("no table named '" + name + "'");
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const TablePtr& t : tables_) names.push_back(t->name());
  return names;
}

}  // namespace stetho::storage
