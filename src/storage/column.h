#ifndef STETHO_STORAGE_COLUMN_H_
#define STETHO_STORAGE_COLUMN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/value.h"

namespace stetho::storage {

class Column;
using ColumnPtr = std::shared_ptr<Column>;

/// A single dense column — MonetDB's BAT (Binary Association Table) with a
/// void head: the row identifier (oid) of element i is simply i. Engine
/// kernels operate on shared_ptr<Column>; columns are immutable once handed
/// to the engine (copy-on-write discipline enforced by convention).
///
/// Physical layout: kInt64 / kOid / kBool share one int64 array; kDouble and
/// kString have their own arrays. An optional null mask records SQL NULLs.
class Column {
 public:
  explicit Column(DataType type) : type_(type) {}

  /// Creates an empty column of `type`. `type` must be a storable element
  /// type (not kBat / kNull).
  static ColumnPtr Make(DataType type);

  /// Creates a column of consecutive oids [first, first+count).
  static ColumnPtr MakeOidRange(uint64_t first, uint64_t count);

  DataType type() const { return type_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// --- Append API (builder phase only) ---
  void AppendInt(int64_t v);
  void AppendDouble(double v);
  void AppendString(std::string v);
  void AppendBool(bool v);
  void AppendOid(uint64_t v);
  void AppendNull();
  /// Appends a Value, coercing numerics when lossless; error on mismatch.
  Status AppendValue(const Value& v);

  /// Appends every row of `other` (same element type required): the bulk
  /// concatenation behind bat.append / mat.pack. Copies the raw arrays and
  /// merges null masks without per-row Value boxing.
  Status AppendColumn(const Column& other);

  /// Reserves capacity for n elements, including the null mask.
  void Reserve(size_t n);

  /// Trims backing-array slack (capacity beyond size) left over from
  /// loads whose row-count estimate missed: after this, MemoryBytes()
  /// reflects the rows actually stored. Bulk loaders call it once the
  /// final size is known; the static footprint model
  /// (analysis/liveness.h) relies on catalog columns being trimmed.
  void ShrinkToFit();

  /// --- Element access ---
  bool IsNull(size_t i) const {
    return !nulls_.empty() && nulls_[i] != 0;
  }
  Value GetValue(size_t i) const;
  int64_t IntAt(size_t i) const { return ints_[i]; }
  double DoubleAt(size_t i) const { return doubles_[i]; }
  const std::string& StringAt(size_t i) const { return strings_[i]; }
  bool BoolAt(size_t i) const { return ints_[i] != 0; }
  uint64_t OidAt(size_t i) const { return static_cast<uint64_t>(ints_[i]); }

  /// --- Bulk typed access for kernels ---
  const std::vector<int64_t>& ints() const { return ints_; }
  const std::vector<double>& doubles() const { return doubles_; }
  const std::vector<std::string>& strings() const { return strings_; }
  bool has_nulls() const { return !nulls_.empty(); }

  /// Approximate heap footprint in bytes (used by the profiler's rss field).
  size_t MemoryBytes() const;

  /// Copies rows [lo, hi) into a new column. hi is clamped to size().
  ColumnPtr Slice(size_t lo, size_t hi) const;

  /// Builds a new column containing this column's values at `positions`
  /// (MonetDB's algebra.projection). Positions out of range yield an error.
  Result<ColumnPtr> Gather(const std::vector<int64_t>& positions) const;

 private:
  DataType type_;
  size_t size_ = 0;
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<std::string> strings_;
  /// Lazily materialized: empty means "no nulls anywhere".
  std::vector<uint8_t> nulls_;

  void MarkNull(bool is_null);
};

}  // namespace stetho::storage

#endif  // STETHO_STORAGE_COLUMN_H_
