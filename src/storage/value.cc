#include "storage/value.h"

#include "common/string_util.h"

namespace stetho::storage {

const char* DataTypeName(DataType type) {
  switch (type) {
    case DataType::kNull:
      return ":any";
    case DataType::kBool:
      return ":bit";
    case DataType::kInt64:
      return ":lng";
    case DataType::kDouble:
      return ":dbl";
    case DataType::kString:
      return ":str";
    case DataType::kOid:
      return ":oid";
    case DataType::kBat:
      return ":bat";
  }
  return ":unknown";
}

Result<double> Value::ToDouble() const {
  switch (type_) {
    case DataType::kBool:
      return AsBool() ? 1.0 : 0.0;
    case DataType::kInt64:
      return static_cast<double>(AsInt());
    case DataType::kDouble:
      return AsDouble();
    default:
      return Status::TypeError(std::string("cannot convert ") +
                               DataTypeName(type_) + " to :dbl");
  }
}

Result<int64_t> Value::ToInt() const {
  switch (type_) {
    case DataType::kBool:
      return static_cast<int64_t>(AsBool() ? 1 : 0);
    case DataType::kInt64:
    case DataType::kOid:
      return std::get<int64_t>(data_);
    default:
      return Status::TypeError(std::string("cannot convert ") +
                               DataTypeName(type_) + " to :lng");
  }
}

std::string Value::ToString() const {
  switch (type_) {
    case DataType::kNull:
      return "NULL";
    case DataType::kBool:
      return AsBool() ? "true" : "false";
    case DataType::kInt64:
      return StrFormat("%lld", static_cast<long long>(AsInt()));
    case DataType::kDouble:
      return StrFormat("%g", AsDouble());
    case DataType::kString:
      return "\"" + EscapeQuoted(AsString()) + "\"";
    case DataType::kOid:
      return StrFormat("%llu@0", static_cast<unsigned long long>(AsOid()));
    case DataType::kBat:
      return "<bat>";
  }
  return "?";
}

bool Value::operator==(const Value& other) const {
  return Compare(other) == 0 && type_ == other.type_;
}

int Value::Compare(const Value& other) const {
  if (is_null() && other.is_null()) return 0;
  if (is_null()) return -1;
  if (other.is_null()) return 1;
  // Cross-numeric comparison via double.
  auto as_numeric = [](const Value& v, double* out) {
    switch (v.type_) {
      case DataType::kBool:
        *out = v.AsBool() ? 1.0 : 0.0;
        return true;
      case DataType::kInt64:
      case DataType::kOid:
        *out = static_cast<double>(std::get<int64_t>(v.data_));
        return true;
      case DataType::kDouble:
        *out = v.AsDouble();
        return true;
      default:
        return false;
    }
  };
  double a = 0.0;
  double b = 0.0;
  if (as_numeric(*this, &a) && as_numeric(other, &b)) {
    if (a < b) return -1;
    if (a > b) return 1;
    return 0;
  }
  if (type_ == DataType::kString && other.type_ == DataType::kString) {
    return AsString().compare(other.AsString()) < 0
               ? -1
               : (AsString() == other.AsString() ? 0 : 1);
  }
  // Incomparable types: order by type tag for a stable total order.
  return static_cast<int>(type_) < static_cast<int>(other.type_) ? -1 : 1;
}

}  // namespace stetho::storage
