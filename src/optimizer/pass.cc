#include "optimizer/pass.h"

#include <utility>

#include "analysis/absint.h"
#include "analysis/runner.h"
#include "common/string_util.h"
#include "engine/kernel.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace stetho::optimizer {
namespace {

/// Pass names use '-' (e.g. "dead-code"); metric names may not.
std::string PassToken(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

obs::Counter* PassesFiredCounter() {
  static obs::Counter* counter = obs::Registry::Default()->GetOrCreateCounter(
      "stetho_opt_passes_fired_total",
      "Optimizer passes that changed a plan (any pass, any pipeline)");
  return counter;
}

obs::Histogram* PassUsecHistogram() {
  static obs::Histogram* histogram =
      obs::Registry::Default()->GetOrCreateHistogram(
          "stetho_opt_pass_usec",
          "Optimizer pass duration in microseconds (recorded while "
          "observability is enabled)",
          obs::Histogram::DefaultLatencyBounds());
  return histogram;
}

/// Ships the failure with its context: the flight recorder's dump carries
/// the recent spans (which pass ran when) and the full metrics snapshot.
Status DumpAndReturn(Status st) {
  obs::FlightRecorder* recorder = obs::FlightRecorder::Default();
  if (recorder->enabled()) {
    std::string reason = "optimizer pipeline failed: " + st.ToString();
    recorder->Note(reason);
    recorder->Dump(reason);
  }
  return st;
}

}  // namespace

bool IsPureOperation(const std::string& module, const std::string& function) {
  if (module == "io" || module == "debug" || module == "language") return false;
  if (module == "sql") {
    return function == "bind" || function == "tid" || function == "mvc";
  }
  return module == "algebra" || module == "bat" || module == "mat" ||
         module == "calc" || module == "batcalc" || module == "group" ||
         module == "aggr";
}

Result<std::vector<std::string>> Pipeline::Run(mal::Program* program) const {
  std::vector<std::string> fired;
  analysis::CheckContext ctx;
  ctx.program = program;
  ctx.registry = engine::ModuleRegistry::Default();
  ctx.in_pipeline = true;
  // Pass-equivalence differ: abstract summary of what the plan outputs
  // (analysis/absint.h), re-checked after every pass. A pass may refine the
  // summary (folding, mitosis re-packing) but never contradict it — that
  // would be a provable change of query results.
  analysis::PlanSummary summary = analysis::SummarizeObservable(*program);
  obs::Tracer* tracer = obs::Tracer::Default();
  // Counters are always on (one relaxed increment when a pass fires); the
  // duration histogram and pass spans read the clock, so they gate on the
  // kill switch / tracer enablement.
  const bool timed = obs::Active() || tracer->enabled();
  for (const auto& pass : passes_) {
    int64_t t0 = timed ? tracer->clock()->NowMicros() : 0;
    STETHO_ASSIGN_OR_RETURN(bool changed, pass->Run(program));
    if (timed) {
      int64_t dur = tracer->clock()->NowMicros() - t0;
      if (obs::Active()) PassUsecHistogram()->Observe(dur);
      if (tracer->enabled()) {
        tracer->RecordComplete("pass:" + std::string(pass->name()), "pass", 0,
                               -1, t0, dur);
      }
    }
    // Full lint after every pass (superset of the old Validate() call):
    // a failure names the pass, the check, and the offending pc/variable.
    Status lint = analysis::DiagnosticsToStatus(
        analysis::Runner::Default().Run(ctx),
        StrFormat("optimizer pass '%s' produced an invalid plan",
                  pass->name()));
    if (!lint.ok()) return DumpAndReturn(std::move(lint));
    if (changed) {
      analysis::PlanSummary rewritten = analysis::SummarizeObservable(*program);
      Status equiv = analysis::CheckSummaryEquivalence(
          summary, rewritten, StrFormat("optimizer pass '%s'", pass->name()));
      if (!equiv.ok()) return DumpAndReturn(std::move(equiv));
      summary = std::move(rewritten);  // later passes diff against the refinement
      fired.push_back(pass->name());
      PassesFiredCounter()->Increment();
      obs::Registry::Default()
          ->GetOrCreateCounter(
              "stetho_opt_pass_" + PassToken(pass->name()) + "_fired_total",
              "Times optimizer pass '" + std::string(pass->name()) +
                  "' changed a plan")
          ->Increment();
    }
  }
  return fired;
}

Pipeline Pipeline::Default(int mitosis_pieces) {
  Pipeline pipeline;
  pipeline.Add(MakeConstantFoldingPass());
  pipeline.Add(MakeCommonSubexpressionPass());
  pipeline.Add(MakeDeadCodePass());
  if (mitosis_pieces > 1) {
    pipeline.Add(MakeMitosisPass(mitosis_pieces));
  }
  pipeline.Add(MakeMemoryReorderPass());
  pipeline.Add(MakeDataflowMarkerPass());
  return pipeline;
}

}  // namespace stetho::optimizer
