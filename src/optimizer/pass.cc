#include "optimizer/pass.h"

#include "analysis/runner.h"
#include "common/string_util.h"
#include "engine/kernel.h"

namespace stetho::optimizer {

bool IsPureOperation(const std::string& module, const std::string& function) {
  if (module == "io" || module == "debug" || module == "language") return false;
  if (module == "sql") {
    return function == "bind" || function == "tid" || function == "mvc";
  }
  return module == "algebra" || module == "bat" || module == "mat" ||
         module == "calc" || module == "batcalc" || module == "group" ||
         module == "aggr";
}

Result<std::vector<std::string>> Pipeline::Run(mal::Program* program) const {
  std::vector<std::string> fired;
  analysis::CheckContext ctx;
  ctx.program = program;
  ctx.registry = engine::ModuleRegistry::Default();
  for (const auto& pass : passes_) {
    STETHO_ASSIGN_OR_RETURN(bool changed, pass->Run(program));
    // Full lint after every pass (superset of the old Validate() call):
    // a failure names the pass, the check, and the offending pc/variable.
    STETHO_RETURN_IF_ERROR(analysis::DiagnosticsToStatus(
        analysis::Runner::Default().Run(ctx),
        StrFormat("optimizer pass '%s' produced an invalid plan",
                  pass->name())));
    if (changed) fired.push_back(pass->name());
  }
  return fired;
}

Pipeline Pipeline::Default(int mitosis_pieces) {
  Pipeline pipeline;
  pipeline.Add(MakeConstantFoldingPass());
  pipeline.Add(MakeCommonSubexpressionPass());
  pipeline.Add(MakeDeadCodePass());
  if (mitosis_pieces > 1) {
    pipeline.Add(MakeMitosisPass(mitosis_pieces));
  }
  pipeline.Add(MakeDataflowMarkerPass());
  return pipeline;
}

}  // namespace stetho::optimizer
