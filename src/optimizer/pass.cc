#include "optimizer/pass.h"

#include <utility>

#include "analysis/absint.h"
#include "analysis/runner.h"
#include "common/string_util.h"
#include "engine/kernel.h"

namespace stetho::optimizer {

bool IsPureOperation(const std::string& module, const std::string& function) {
  if (module == "io" || module == "debug" || module == "language") return false;
  if (module == "sql") {
    return function == "bind" || function == "tid" || function == "mvc";
  }
  return module == "algebra" || module == "bat" || module == "mat" ||
         module == "calc" || module == "batcalc" || module == "group" ||
         module == "aggr";
}

Result<std::vector<std::string>> Pipeline::Run(mal::Program* program) const {
  std::vector<std::string> fired;
  analysis::CheckContext ctx;
  ctx.program = program;
  ctx.registry = engine::ModuleRegistry::Default();
  ctx.in_pipeline = true;
  // Pass-equivalence differ: abstract summary of what the plan outputs
  // (analysis/absint.h), re-checked after every pass. A pass may refine the
  // summary (folding, mitosis re-packing) but never contradict it — that
  // would be a provable change of query results.
  analysis::PlanSummary summary = analysis::SummarizeObservable(*program);
  for (const auto& pass : passes_) {
    STETHO_ASSIGN_OR_RETURN(bool changed, pass->Run(program));
    // Full lint after every pass (superset of the old Validate() call):
    // a failure names the pass, the check, and the offending pc/variable.
    STETHO_RETURN_IF_ERROR(analysis::DiagnosticsToStatus(
        analysis::Runner::Default().Run(ctx),
        StrFormat("optimizer pass '%s' produced an invalid plan",
                  pass->name())));
    if (changed) {
      analysis::PlanSummary rewritten = analysis::SummarizeObservable(*program);
      STETHO_RETURN_IF_ERROR(analysis::CheckSummaryEquivalence(
          summary, rewritten,
          StrFormat("optimizer pass '%s'", pass->name())));
      summary = std::move(rewritten);  // later passes diff against the refinement
      fired.push_back(pass->name());
    }
  }
  return fired;
}

Pipeline Pipeline::Default(int mitosis_pieces) {
  Pipeline pipeline;
  pipeline.Add(MakeConstantFoldingPass());
  pipeline.Add(MakeCommonSubexpressionPass());
  pipeline.Add(MakeDeadCodePass());
  if (mitosis_pieces > 1) {
    pipeline.Add(MakeMitosisPass(mitosis_pieces));
  }
  pipeline.Add(MakeDataflowMarkerPass());
  return pipeline;
}

}  // namespace stetho::optimizer
