#include "optimizer/pass.h"

namespace stetho::optimizer {

bool IsPureOperation(const std::string& module, const std::string& function) {
  if (module == "io" || module == "debug" || module == "language") return false;
  if (module == "sql") {
    return function == "bind" || function == "tid" || function == "mvc";
  }
  return module == "algebra" || module == "bat" || module == "mat" ||
         module == "calc" || module == "batcalc" || module == "group" ||
         module == "aggr";
}

Result<std::vector<std::string>> Pipeline::Run(mal::Program* program) const {
  std::vector<std::string> fired;
  for (const auto& pass : passes_) {
    STETHO_ASSIGN_OR_RETURN(bool changed, pass->Run(program));
    STETHO_RETURN_IF_ERROR(program->Validate());
    if (changed) fired.push_back(pass->name());
  }
  return fired;
}

Pipeline Pipeline::Default(int mitosis_pieces) {
  Pipeline pipeline;
  pipeline.Add(MakeConstantFoldingPass());
  pipeline.Add(MakeCommonSubexpressionPass());
  pipeline.Add(MakeDeadCodePass());
  if (mitosis_pieces > 1) {
    pipeline.Add(MakeMitosisPass(mitosis_pieces));
  }
  pipeline.Add(MakeDataflowMarkerPass());
  return pipeline;
}

}  // namespace stetho::optimizer
