#ifndef STETHO_OPTIMIZER_PASS_H_
#define STETHO_OPTIMIZER_PASS_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "mal/program.h"

namespace stetho::optimizer {

/// One MAL-to-MAL rewrite, mirroring MonetDB's optimizer pipeline stages.
class Pass {
 public:
  virtual ~Pass() = default;
  virtual const char* name() const = 0;
  /// Rewrites `program` in place; returns true when anything changed.
  virtual Result<bool> Run(mal::Program* program) = 0;
};

/// True for kernels whose only observable effect is their result value —
/// these are safe to eliminate, deduplicate, and fold. Catalog readers
/// (sql.bind/tid/mvc) count as pure because tables are immutable.
bool IsPureOperation(const std::string& module, const std::string& function);

/// An ordered list of passes applied until fixpoint-per-pass (each pass runs
/// once, in order; the pipeline records which passes fired).
class Pipeline {
 public:
  Pipeline() = default;

  void Add(std::unique_ptr<Pass> pass) { passes_.push_back(std::move(pass)); }
  size_t size() const { return passes_.size(); }

  /// Runs all passes in order. Returns the names of passes that changed the
  /// program. The program is re-linted with analysis::Runner::Default() after
  /// every pass; an error diagnostic fails the pipeline with a Status naming
  /// the pass, the check id, and the offending pc/variable.
  Result<std::vector<std::string>> Run(mal::Program* program) const;

  /// MonetDB-like default pipeline: constant folding, common subexpression
  /// elimination, dead code elimination, mitosis (with `mitosis_pieces`
  /// partitions when > 1), memory-aware reordering, and the dataflow
  /// marker.
  static Pipeline Default(int mitosis_pieces = 0);

 private:
  std::vector<std::unique_ptr<Pass>> passes_;
};

/// --- concrete passes ---

/// Evaluates calc.* instructions whose operands are all constants and
/// propagates the folded value into consumers.
std::unique_ptr<Pass> MakeConstantFoldingPass();

/// Deduplicates pure instructions with identical operations and arguments.
std::unique_ptr<Pass> MakeCommonSubexpressionPass();

/// Removes pure instructions whose results are never consumed.
std::unique_ptr<Pass> MakeDeadCodePass();

/// Splits candidate-list selects over sql.tid ranges into `pieces` parallel
/// partitions re-joined with mat.pack — MonetDB's mitosis/mergetable pair.
/// Enables multi-core dataflow execution and inflates plan graphs to the
/// >1000-node scale of the paper's Fig. 2.
std::unique_ptr<Pass> MakeMitosisPass(int pieces);

/// Topologically reorders instructions to shrink the sequential live-byte
/// peak predicted by analysis/liveness.h (greedy list scheduling that
/// consumes heavy intermediates as early as legal). Keeps the relative
/// order of effectful instructions, must pass Program::Validate() and the
/// pass-equivalence differ, and restores the original order (reporting
/// "did not fire") unless the predicted peak strictly shrinks.
std::unique_ptr<Pass> MakeMemoryReorderPass();

/// Prepends the language.dataflow() marker instruction (an administrative
/// node; the paper's §6 mentions pruning such nodes as future work).
std::unique_ptr<Pass> MakeDataflowMarkerPass();

/// Removes administrative instructions (language.*) from a plan — the
/// paper's planned "selective pruning of MAL plans" feature.
std::unique_ptr<Pass> MakeAdminPrunePass();

}  // namespace stetho::optimizer

#endif  // STETHO_OPTIMIZER_PASS_H_
