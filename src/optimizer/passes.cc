#include <map>
#include <unordered_map>

#include "common/string_util.h"
#include "engine/interpreter.h"
#include "optimizer/pass.h"

namespace stetho::optimizer {
namespace {

using mal::Argument;
using mal::Instruction;
using mal::MalType;
using mal::Program;
using storage::DataType;
using storage::Value;

/// Remaps variable arguments through `replacement` (var id -> var id).
void RemapArgs(Instruction* ins, const std::vector<int>& replacement) {
  for (Argument& arg : ins->args) {
    if (arg.kind == Argument::Kind::kVar) {
      int r = replacement[static_cast<size_t>(arg.var)];
      if (r >= 0) arg.var = r;
    }
  }
}

/// Replaces variable arguments by inline constants where `folded` has one.
void FoldArgs(Instruction* ins,
              const std::unordered_map<int, Value>& folded) {
  for (Argument& arg : ins->args) {
    if (arg.kind != Argument::Kind::kVar) continue;
    auto it = folded.find(arg.var);
    if (it != folded.end()) {
      arg = Argument::Const(it->second);
    }
  }
}

// ---------------------------------------------------------------------------
// Constant folding
// ---------------------------------------------------------------------------

class ConstantFoldingPass : public Pass {
 public:
  const char* name() const override { return "constant_folding"; }

  Result<bool> Run(Program* program) override {
    const engine::ModuleRegistry* registry = engine::ModuleRegistry::Default();
    engine::ExecContext ctx(nullptr, SteadyClock::Default());

    std::unordered_map<int, Value> folded;
    std::vector<Instruction> kept;
    bool changed = false;

    for (Instruction ins : program->instructions()) {
      FoldArgs(&ins, folded);
      bool all_const = true;
      for (const Argument& arg : ins.args) {
        if (arg.kind == Argument::Kind::kVar) {
          all_const = false;
          break;
        }
      }
      // Only scalar calc.* operations fold; they are total functions of
      // their inputs (modulo division by zero, which we leave to run time).
      if (all_const && ins.module == "calc" && ins.results.size() == 1) {
        auto kernel = registry->Lookup(ins.module, ins.function);
        if (kernel.ok()) {
          engine::KernelArgs args;
          args.ins = &ins;
          args.ctx = &ctx;
          std::vector<engine::RegisterValue> storage_args;
          storage_args.reserve(ins.args.size());
          for (const Argument& arg : ins.args) {
            storage_args.push_back(engine::RegisterValue::Scalar(arg.constant));
          }
          for (engine::RegisterValue& rv : storage_args) args.args.push_back(&rv);
          engine::RegisterValue result;
          args.results.push_back(&result);
          Status st = (*kernel.value())(args);
          if (st.ok() && !result.is_bat()) {
            folded[ins.results[0]] = result.scalar;
            changed = true;
            continue;  // drop the instruction
          }
        }
      }
      kept.push_back(std::move(ins));
    }
    if (changed) program->ReplaceInstructions(std::move(kept));
    return changed;
  }
};

// ---------------------------------------------------------------------------
// Common subexpression elimination
// ---------------------------------------------------------------------------

/// Structural key of a pure instruction: op name + rendered args.
std::string InstructionKey(const Program& program, const Instruction& ins) {
  std::string key = ins.module + "." + ins.function + "(";
  for (const Argument& arg : ins.args) {
    if (arg.kind == Argument::Kind::kVar) {
      key += "v" + std::to_string(arg.var);
    } else {
      key += arg.constant.ToString();
      // Distinguish 1 (:lng) from 1@0 (:oid) via the type tag.
      key += DataTypeName(arg.constant.type());
    }
    key += ",";
  }
  key += ")";
  (void)program;
  return key;
}

class CommonSubexpressionPass : public Pass {
 public:
  const char* name() const override { return "common_subexpression"; }

  Result<bool> Run(Program* program) override {
    std::vector<int> replacement(program->num_variables(), -1);
    std::map<std::string, size_t> seen;  // key -> index into `kept`
    std::vector<Instruction> kept;
    bool changed = false;

    for (Instruction ins : program->instructions()) {
      RemapArgs(&ins, replacement);
      if (!IsPureOperation(ins.module, ins.function)) {
        kept.push_back(std::move(ins));
        continue;
      }
      std::string key = InstructionKey(*program, ins);
      auto it = seen.find(key);
      if (it == seen.end()) {
        kept.push_back(std::move(ins));
        seen.emplace(std::move(key), kept.size() - 1);
        continue;
      }
      // Identical computation: alias this instruction's results to the
      // earlier instruction's results.
      const Instruction& prior = kept[it->second];
      if (prior.results.size() != ins.results.size()) {
        kept.push_back(std::move(ins));
        continue;
      }
      for (size_t i = 0; i < ins.results.size(); ++i) {
        replacement[static_cast<size_t>(ins.results[i])] = prior.results[i];
      }
      changed = true;
    }
    if (changed) program->ReplaceInstructions(std::move(kept));
    return changed;
  }
};

// ---------------------------------------------------------------------------
// Dead code elimination
// ---------------------------------------------------------------------------

class DeadCodePass : public Pass {
 public:
  const char* name() const override { return "dead_code"; }

  Result<bool> Run(Program* program) override {
    // Liveness: a variable is live if consumed by a kept instruction;
    // an instruction is kept if impure or any result is live. One backward
    // sweep suffices because defs precede uses (SSA).
    std::vector<bool> live(program->num_variables(), false);
    std::vector<bool> keep(program->size(), false);
    const auto& instructions = program->instructions();
    for (size_t i = instructions.size(); i-- > 0;) {
      const Instruction& ins = instructions[i];
      bool needed = !IsPureOperation(ins.module, ins.function);
      for (int r : ins.results) {
        if (live[static_cast<size_t>(r)]) needed = true;
      }
      keep[i] = needed;
      if (needed) {
        for (const Argument& arg : ins.args) {
          if (arg.kind == Argument::Kind::kVar) {
            live[static_cast<size_t>(arg.var)] = true;
          }
        }
      }
    }
    std::vector<Instruction> kept;
    kept.reserve(instructions.size());
    bool changed = false;
    for (size_t i = 0; i < instructions.size(); ++i) {
      if (keep[i]) {
        kept.push_back(instructions[i]);
      } else {
        changed = true;
      }
    }
    if (changed) program->ReplaceInstructions(std::move(kept));
    return changed;
  }
};

// ---------------------------------------------------------------------------
// Mitosis
// ---------------------------------------------------------------------------

class MitosisPass : public Pass {
 public:
  explicit MitosisPass(int pieces) : pieces_(pieces) {}

  const char* name() const override { return "mitosis"; }

  Result<bool> Run(Program* program) override {
    if (pieces_ < 2) return false;
    // MonetDB-style mitosis + mergetable: the candidate list of a scan
    // (a sql.tid result) is sliced into `pieces_` partitions; the whole
    // select/projection ladder consuming it is cloned per slice; results
    // are reassembled with mat.pack only where a non-partitionable
    // consumer (join build, group, aggregate, result sink...) needs the
    // whole column. Candidate order is preserved, so results are
    // bit-identical to the unpartitioned plan.
    std::vector<bool> is_tid(program->num_variables(), false);
    for (const Instruction& ins : program->instructions()) {
      if (ins.module == "sql" && ins.function == "tid" &&
          ins.results.size() == 1) {
        is_tid[static_cast<size_t>(ins.results[0])] = true;
      }
    }

    // var -> its per-piece replacement variables (unpacked representation).
    std::map<int, std::vector<int>> partitioned;
    std::map<int, bool> packed;
    std::vector<Instruction> out;
    bool changed = false;

    // Emits mat.pack(pieces) -> var once, right before the first consumer
    // that needs the whole value.
    auto ensure_packed = [&](int var) {
      auto it = partitioned.find(var);
      if (it == partitioned.end() || packed[var]) return;
      Instruction pack;
      pack.module = "mat";
      pack.function = "pack";
      pack.results = {var};
      for (int piece : it->second) pack.args.push_back(Argument::Var(piece));
      out.push_back(std::move(pack));
      packed[var] = true;
    };

    // Returns the per-piece vars of `var`, slicing it on the spot when it
    // is a tid candidate list that has not been partitioned yet.
    auto pieces_of = [&](int var) -> std::vector<int>* {
      auto it = partitioned.find(var);
      if (it != partitioned.end()) return &it->second;
      if (!is_tid[static_cast<size_t>(var)]) return nullptr;
      std::vector<int> slices;
      for (int piece = 0; piece < pieces_; ++piece) {
        int slice = program->AddVariable(MalType::Bat(DataType::kOid));
        Instruction part;
        part.module = "bat";
        part.function = "partition";
        part.results = {slice};
        part.args = {Argument::Var(var), Argument::Const(Value::Int(pieces_)),
                     Argument::Const(Value::Int(piece))};
        out.push_back(std::move(part));
        slices.push_back(slice);
      }
      auto [ins_it, ok] = partitioned.emplace(var, std::move(slices));
      (void)ok;
      // The tid itself stays materialized (sql.tid already assigned it).
      packed[var] = true;
      return &ins_it->second;
    };

    for (const Instruction& ins : program->instructions()) {
      // Selects with a partitionable candidate list (arg 1).
      bool is_select =
          ins.module == "algebra" &&
          (ins.function == "select" || ins.function == "thetaselect" ||
           ins.function == "likeselect") &&
          ins.results.size() == 1 && ins.args.size() >= 2 &&
          ins.args[1].kind == Argument::Kind::kVar;
      // Projections over a partitioned candidate list (arg 0).
      bool is_projection = ins.module == "algebra" &&
                           ins.function == "projection" &&
                           ins.results.size() == 1 && ins.args.size() == 2 &&
                           ins.args[0].kind == Argument::Kind::kVar;

      if (is_select) {
        std::vector<int>* slices = pieces_of(ins.args[1].var);
        if (slices != nullptr) {
          // The value column (arg 0) stays whole.
          if (ins.args[0].kind == Argument::Kind::kVar) {
            ensure_packed(ins.args[0].var);
          }
          std::vector<int> result_pieces;
          for (int slice : *slices) {
            int res = program->AddVariable(MalType::Bat(DataType::kOid));
            Instruction clone = ins;
            clone.results = {res};
            clone.args[1] = Argument::Var(slice);
            out.push_back(std::move(clone));
            result_pieces.push_back(res);
          }
          partitioned[ins.results[0]] = std::move(result_pieces);
          changed = true;
          continue;
        }
      }
      if (is_projection) {
        auto it = partitioned.find(ins.args[0].var);
        if (it != partitioned.end() && !packed[ins.args[0].var]) {
          if (ins.args[1].kind == Argument::Kind::kVar) {
            ensure_packed(ins.args[1].var);
          }
          MalType result_type =
              program->variable(ins.results[0]).type;
          std::vector<int> result_pieces;
          for (int slice : it->second) {
            int res = program->AddVariable(result_type);
            Instruction clone = ins;
            clone.results = {res};
            clone.args[0] = Argument::Var(slice);
            out.push_back(std::move(clone));
            result_pieces.push_back(res);
          }
          partitioned[ins.results[0]] = std::move(result_pieces);
          changed = true;
          continue;
        }
      }

      // Any other consumer needs whole inputs: materialize on demand.
      for (const Argument& arg : ins.args) {
        if (arg.kind == Argument::Kind::kVar) ensure_packed(arg.var);
      }
      out.push_back(ins);
    }
    if (changed) program->ReplaceInstructions(std::move(out));
    return changed;
  }

 private:
  int pieces_;
};

// ---------------------------------------------------------------------------
// Dataflow marker / admin pruning
// ---------------------------------------------------------------------------

class DataflowMarkerPass : public Pass {
 public:
  const char* name() const override { return "dataflow_marker"; }

  Result<bool> Run(Program* program) override {
    for (const Instruction& ins : program->instructions()) {
      if (ins.module == "language" && ins.function == "dataflow") {
        return false;  // already marked
      }
    }
    std::vector<Instruction> out;
    out.reserve(program->size() + 1);
    Instruction marker;
    marker.module = "language";
    marker.function = "dataflow";
    out.push_back(std::move(marker));
    for (const Instruction& ins : program->instructions()) out.push_back(ins);
    program->ReplaceInstructions(std::move(out));
    return true;
  }
};

class AdminPrunePass : public Pass {
 public:
  const char* name() const override { return "admin_prune"; }

  Result<bool> Run(Program* program) override {
    std::vector<Instruction> kept;
    bool changed = false;
    for (const Instruction& ins : program->instructions()) {
      if (ins.module == "language") {
        changed = true;
        continue;
      }
      kept.push_back(ins);
    }
    if (changed) program->ReplaceInstructions(std::move(kept));
    return changed;
  }
};

}  // namespace

std::unique_ptr<Pass> MakeConstantFoldingPass() {
  return std::make_unique<ConstantFoldingPass>();
}
std::unique_ptr<Pass> MakeCommonSubexpressionPass() {
  return std::make_unique<CommonSubexpressionPass>();
}
std::unique_ptr<Pass> MakeDeadCodePass() {
  return std::make_unique<DeadCodePass>();
}
std::unique_ptr<Pass> MakeMitosisPass(int pieces) {
  return std::make_unique<MitosisPass>(pieces);
}
std::unique_ptr<Pass> MakeDataflowMarkerPass() {
  return std::make_unique<DataflowMarkerPass>();
}
std::unique_ptr<Pass> MakeAdminPrunePass() {
  return std::make_unique<AdminPrunePass>();
}

}  // namespace stetho::optimizer
