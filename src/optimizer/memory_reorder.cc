// memory_reorder — topologically reorders instructions to shrink the
// sequential live-byte peak predicted by the static footprint model
// (analysis/liveness.h). Greedy list scheduling over the dependency DAG:
// at every step the ready instruction with the smallest net live-byte
// delta (result bytes minus the bytes its completion releases) runs next,
// so heavy intermediates are consumed as soon as their consumers are
// legal instead of idling across unrelated work. Effectful instructions
// (sinks, unknown extensions) form a serialized backbone that keeps their
// relative order — observable output order is untouched, which is exactly
// what the pass-equivalence differ checks. The rewrite is self-rejecting:
// if the reordered plan's predicted sequential peak is not strictly
// smaller, the original order is restored and the pass reports "did not
// fire".

#include <algorithm>
#include <vector>

#include "analysis/liveness.h"
#include "optimizer/pass.h"

namespace stetho::optimizer {
namespace {

class MemoryReorderPass final : public Pass {
 public:
  const char* name() const override { return "memory_reorder"; }

  Result<bool> Run(mal::Program* program) override {
    const size_t n = program->size();
    if (n < 3) return false;
    analysis::MemoryReport before = analysis::AnalyzeMemory(*program);
    if (!before.bounded) return false;  // no finite objective to improve

    // Per-variable footprints and consumer counts.
    const size_t nvars = program->num_variables();
    std::vector<int64_t> var_bytes(nvars, 0);
    std::vector<int> consumers(nvars, 0);
    for (const analysis::LiveRange& r : before.ranges) {
      if (r.var >= 0 && static_cast<size_t>(r.var) < nvars) {
        var_bytes[static_cast<size_t>(r.var)] = r.bytes;
      }
    }
    for (const mal::Instruction& ins : program->instructions()) {
      for (const mal::Argument& a : ins.args) {
        if (a.kind == mal::Argument::Kind::kVar && a.var >= 0 &&
            static_cast<size_t>(a.var) < nvars) {
          consumers[static_cast<size_t>(a.var)]++;
        }
      }
    }

    // Dependency edges + a serialized backbone through every effectful
    // instruction so side effects keep their order.
    std::vector<std::vector<int>> succ(n);
    std::vector<int> indegree(n, 0);
    std::vector<std::vector<int>> deps = program->BuildDependencies();
    auto add_edge = [&](int from, int to) {
      succ[static_cast<size_t>(from)].push_back(to);
      indegree[static_cast<size_t>(to)]++;
    };
    for (size_t c = 0; c < deps.size(); ++c) {
      for (int p : deps[c]) add_edge(p, static_cast<int>(c));
    }
    int prev_effectful = -1;
    for (size_t pc = 0; pc < n; ++pc) {
      const mal::Instruction& ins = program->instruction(static_cast<int>(pc));
      if (IsPureOperation(ins.module, ins.function)) continue;
      if (prev_effectful >= 0) add_edge(prev_effectful, static_cast<int>(pc));
      prev_effectful = static_cast<int>(pc);
    }

    // Greedy schedule: smallest net live-byte delta first, original pc as
    // the deterministic tie break.
    std::vector<int> remaining = consumers;
    std::vector<int> ready;
    for (size_t pc = 0; pc < n; ++pc) {
      if (indegree[pc] == 0) ready.push_back(static_cast<int>(pc));
    }
    auto net_delta = [&](int pc) {
      const mal::Instruction& ins = program->instruction(pc);
      int64_t delta = 0;
      for (int r : ins.results) {
        if (r < 0 || static_cast<size_t>(r) >= nvars) continue;
        // Consumer-less results are released before the next instruction
        // runs, so they don't change the standing live set.
        if (consumers[static_cast<size_t>(r)] > 0) {
          delta += var_bytes[static_cast<size_t>(r)];
        }
      }
      std::vector<int> seen;
      for (const mal::Argument& a : ins.args) {
        if (a.kind != mal::Argument::Kind::kVar || a.var < 0 ||
            static_cast<size_t>(a.var) >= nvars) {
          continue;
        }
        if (std::find(seen.begin(), seen.end(), a.var) != seen.end()) continue;
        seen.push_back(a.var);
        int occurrences = 0;
        for (const mal::Argument& b : ins.args) {
          if (b.kind == mal::Argument::Kind::kVar && b.var == a.var) {
            occurrences++;
          }
        }
        if (remaining[static_cast<size_t>(a.var)] <= occurrences) {
          delta -= var_bytes[static_cast<size_t>(a.var)];
        }
      }
      return delta;
    };
    std::vector<int> order;
    order.reserve(n);
    while (!ready.empty()) {
      size_t best = 0;
      int64_t best_delta = net_delta(ready[0]);
      for (size_t i = 1; i < ready.size(); ++i) {
        int64_t d = net_delta(ready[i]);
        if (d < best_delta || (d == best_delta && ready[i] < ready[best])) {
          best = i;
          best_delta = d;
        }
      }
      int pc = ready[best];
      ready.erase(ready.begin() + static_cast<long>(best));
      order.push_back(pc);
      const mal::Instruction& ins = program->instruction(pc);
      for (const mal::Argument& a : ins.args) {
        if (a.kind == mal::Argument::Kind::kVar && a.var >= 0 &&
            static_cast<size_t>(a.var) < nvars &&
            remaining[static_cast<size_t>(a.var)] > 0) {
          remaining[static_cast<size_t>(a.var)]--;
        }
      }
      for (int s : succ[static_cast<size_t>(pc)]) {
        if (--indegree[static_cast<size_t>(s)] == 0) ready.push_back(s);
      }
    }
    if (order.size() != n) return false;  // cyclic deps: malformed plan
    bool identity = true;
    for (size_t i = 0; i < n; ++i) {
      if (order[i] != static_cast<int>(i)) {
        identity = false;
        break;
      }
    }
    if (identity) return false;

    std::vector<mal::Instruction> original = program->instructions();
    std::vector<mal::Instruction> reordered;
    reordered.reserve(n);
    for (int pc : order) {
      reordered.push_back(original[static_cast<size_t>(pc)]);
    }
    program->ReplaceInstructions(std::move(reordered));

    // Self-rejecting: the pass never ships a plan whose predicted peak is
    // not strictly smaller than what it started from.
    analysis::MemoryReport after = analysis::AnalyzeMemory(*program);
    if (!after.bounded ||
        after.seq_peak_bytes >= before.seq_peak_bytes ||
        !program->Validate().ok()) {
      program->ReplaceInstructions(std::move(original));
      return false;
    }
    return true;
  }
};

}  // namespace

std::unique_ptr<Pass> MakeMemoryReorderPass() {
  return std::make_unique<MemoryReorderPass>();
}

}  // namespace stetho::optimizer
