#ifndef STETHO_SQL_PARSER_H_
#define STETHO_SQL_PARSER_H_

#include <string>

#include "common/status.h"
#include "sql/ast.h"

namespace stetho::sql {

/// Parses one SELECT statement of the supported dialect:
///
///   SELECT <expr [AS alias]>, ...
///   FROM <table [alias]> [JOIN <table [alias]> ON <expr>]...
///   [WHERE <expr>]
///   [GROUP BY <expr>, ...]
///   [ORDER BY <expr> [ASC|DESC], ...]
///   [LIMIT n [OFFSET m]]
///
/// Expressions: arithmetic (+ - * /), comparisons (= <> != < <= > >=),
/// AND/OR/NOT, BETWEEN..AND, LIKE, CASE WHEN..THEN..ELSE..END, aggregates
/// SUM/MIN/MAX/AVG/COUNT(expr|*), column refs (optionally qualified),
/// integer/float/string literals, and NULL.
Result<SelectStmt> ParseSelect(const std::string& sql);

}  // namespace stetho::sql

#endif  // STETHO_SQL_PARSER_H_
