#include "sql/lexer.h"

#include <cctype>
#include <cstring>

#include "common/string_util.h"

namespace stetho::sql {

bool Token::IsKeyword(const char* kw) const {
  return kind == TokenKind::kIdent && EqualsIgnoreCase(text, kw);
}

Result<std::vector<Token>> Tokenize(const std::string& sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // -- line comment
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
      while (i < n && sql[i] != '\n') ++i;
      continue;
    }
    Token tok;
    tok.offset = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(sql[i])) ||
                       sql[i] == '_')) {
        ++i;
      }
      tok.kind = TokenKind::kIdent;
      tok.text = sql.substr(start, i - start);
      tokens.push_back(std::move(tok));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      size_t start = i;
      bool is_float = false;
      while (i < n) {
        char d = sql[i];
        if (std::isdigit(static_cast<unsigned char>(d))) {
          ++i;
        } else if (d == '.') {
          is_float = true;
          ++i;
        } else if (d == 'e' || d == 'E') {
          is_float = true;
          ++i;
          if (i < n && (sql[i] == '+' || sql[i] == '-')) ++i;
        } else {
          break;
        }
      }
      tok.kind = is_float ? TokenKind::kFloat : TokenKind::kInt;
      tok.text = sql.substr(start, i - start);
      tokens.push_back(std::move(tok));
      continue;
    }
    if (c == '\'') {
      ++i;
      std::string out;
      bool closed = false;
      while (i < n) {
        if (sql[i] == '\'') {
          if (i + 1 < n && sql[i + 1] == '\'') {  // escaped quote ''
            out.push_back('\'');
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        out.push_back(sql[i]);
        ++i;
      }
      if (!closed) {
        return Status::ParseError(
            StrFormat("unterminated string literal at offset %zu", tok.offset));
      }
      tok.kind = TokenKind::kString;
      tok.text = std::move(out);
      tokens.push_back(std::move(tok));
      continue;
    }
    // Multi-char operators first.
    auto two = [&](const char* op) {
      return i + 1 < n && sql[i] == op[0] && sql[i + 1] == op[1];
    };
    tok.kind = TokenKind::kSymbol;
    if (two("<=") || two(">=") || two("<>") || two("!=")) {
      tok.text = sql.substr(i, 2);
      i += 2;
    } else if (std::strchr("(),.;*+-/%=<>", c) != nullptr) {
      tok.text = std::string(1, c);
      ++i;
    } else {
      return Status::ParseError(
          StrFormat("unexpected character '%c' at offset %zu", c, i));
    }
    tokens.push_back(std::move(tok));
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.offset = n;
  tokens.push_back(std::move(end));
  return tokens;
}

}  // namespace stetho::sql
