#include "sql/compiler.h"

#include <limits>
#include <map>

#include "common/string_util.h"
#include "sql/parser.h"

namespace stetho::sql {
namespace {

using mal::Argument;
using mal::MalType;
using mal::Program;
using storage::DataType;
using storage::Value;

/// The value an expression evaluated to during code generation: either an
/// inline constant or a MAL variable (scalar or BAT).
struct Eval {
  bool is_const = false;
  Value constant;
  int var = -1;
  bool is_bat = false;
  DataType type = DataType::kNull;  // element type (for BATs) / scalar type

  static Eval Const(Value v) {
    Eval e;
    e.is_const = true;
    e.type = v.type();
    e.constant = std::move(v);
    return e;
  }
  static Eval BatVar(int var, DataType type) {
    Eval e;
    e.var = var;
    e.is_bat = true;
    e.type = type;
    return e;
  }
  static Eval ScalarVar(int var, DataType type) {
    Eval e;
    e.var = var;
    e.type = type;
    return e;
  }

  Argument ToArg() const {
    return is_const ? Argument::Const(constant) : Argument::Var(var);
  }
};

/// A pushdown-able simple predicate over one base table.
struct SimplePred {
  enum class Kind { kTheta, kRange, kLike };
  Kind kind = Kind::kTheta;
  size_t table = 0;
  std::string column;
  std::string theta_op;  // "==", "<", ... for kTheta
  Value value;           // theta pivot
  Value low, high;       // kRange bounds
  std::string pattern;   // kLike
};

class CompileSession {
 public:
  CompileSession(const storage::Catalog* catalog) : catalog_(catalog) {}

  Result<Program> Run(const SelectStmt& stmt);

 private:
  struct TableInfo {
    std::string alias;          // effective alias (lower-cased)
    storage::TablePtr table;
    int rowmap = -1;            // bat[:oid] var mapping output rows to base rows
    bool joined = false;        // part of the joined row set yet?
  };

  // --- small emit helpers ---
  int NewBat(DataType t) { return program_.AddVariable(MalType::Bat(t)); }
  int NewScalar(DataType t) { return program_.AddVariable(MalType::Scalar(t)); }

  /// Emits (or reuses) sql.bind for a base column; returns the BAT variable.
  int EmitBind(size_t ti, const std::string& column, DataType type) {
    auto key = std::make_pair(ti, ToLower(column));
    auto it = bind_cache_.find(key);
    if (it != bind_cache_.end()) return it->second;
    int v = NewBat(type);
    program_.Add("sql", "bind", {v},
                 {Argument::Var(mvc_), Argument::Const(Value::String("sys")),
                  Argument::Const(Value::String(tables_[ti].table->name())),
                  Argument::Const(Value::String(ToLower(column))),
                  Argument::Const(Value::Int(0))});
    // Catalog ground truth for the abstract interpreter: a bound column has
    // exactly the table's row count.
    int64_t rows = static_cast<int64_t>(tables_[ti].table->num_rows());
    program_.AnnotateCardinality(v, rows, rows);
    bind_cache_[key] = v;
    return v;
  }

  /// Resolves a column reference to (table index, schema type).
  Result<std::pair<size_t, DataType>> ResolveColumn(const std::string& qualifier,
                                                    const std::string& column) const {
    if (!qualifier.empty()) {
      std::string q = ToLower(qualifier);
      for (size_t i = 0; i < tables_.size(); ++i) {
        if (tables_[i].alias == q) {
          int idx = tables_[i].table->schema().FindColumn(column);
          if (idx < 0) {
            return Status::NotFound("no column '" + column + "' in table '" +
                                    qualifier + "'");
          }
          return std::make_pair(i, tables_[i].table->schema().column(idx).type);
        }
      }
      return Status::NotFound("unknown table qualifier '" + qualifier + "'");
    }
    int found_table = -1;
    DataType type = DataType::kNull;
    for (size_t i = 0; i < tables_.size(); ++i) {
      int idx = tables_[i].table->schema().FindColumn(column);
      if (idx >= 0) {
        if (found_table >= 0) {
          return Status::InvalidArgument("ambiguous column '" + column + "'");
        }
        found_table = static_cast<int>(i);
        type = tables_[i].table->schema().column(idx).type;
      }
    }
    if (found_table < 0) {
      return Status::NotFound("unknown column '" + column + "'");
    }
    return std::make_pair(static_cast<size_t>(found_table), type);
  }

  /// Emits projection(rowmap, bind) — the column's values over current rows.
  Result<Eval> ColumnOverRows(const std::string& qualifier,
                              const std::string& column) {
    STETHO_ASSIGN_OR_RETURN(auto resolved, ResolveColumn(qualifier, column));
    auto [ti, type] = resolved;
    int base = EmitBind(ti, column, type);
    int out = NewBat(type);
    program_.Add("algebra", "projection", {out},
                 {Argument::Var(tables_[ti].rowmap), Argument::Var(base)});
    return Eval::BatVar(out, type);
  }

  /// --- expression evaluation over the current (joined, filtered) rows ---
  Result<Eval> EvalRow(const ExprPtr& expr);
  /// --- expression evaluation in aggregate context ---
  Result<Eval> EvalAgg(const ExprPtr& expr);

  /// Shared binary-op emission with const/scalar/bat dispatch.
  Result<Eval> EmitBinary(BinaryOp op, const Eval& l, const Eval& r);
  Result<Eval> EmitCase(const Eval& cond, const Eval& then_e, const Eval& else_e);
  Result<Eval> EmitLike(const Eval& input, const std::string& pattern);

  /// SELECT DISTINCT (no aggregates): groups the output tuples and keeps
  /// one representative per distinct combination.
  Status ApplyDistinct(std::vector<Eval>* outputs) {
    int groups = -1;
    int extents = -1;
    bool first = true;
    for (const Eval& out : *outputs) {
      if (!out.is_bat) {
        return Status::Unimplemented("DISTINCT over a constant select item");
      }
      int g = NewBat(DataType::kOid);
      int e = NewBat(DataType::kOid);
      int h = NewBat(DataType::kInt64);
      if (first) {
        program_.Add("group", "group", {g, e, h}, {out.ToArg()});
        first = false;
      } else {
        program_.Add("group", "subgroup", {g, e, h},
                     {out.ToArg(), Argument::Var(groups)});
      }
      groups = g;
      extents = e;
    }
    for (Eval& out : *outputs) {
      int proj = NewBat(out.type);
      program_.Add("algebra", "projection", {proj},
                   {Argument::Var(extents), out.ToArg()});
      out = Eval::BatVar(proj, out.type);
    }
    post_projection_ = true;
    return Status::OK();
  }

  /// HAVING: evaluates the predicate per group and keeps only qualifying
  /// groups in every output column.
  Status ApplyHaving(const ExprPtr& having, std::vector<Eval>* outputs) {
    if (!grouped_) {
      return Status::Unimplemented("HAVING without GROUP BY");
    }
    STETHO_ASSIGN_OR_RETURN(Eval mask, EvalAgg(having));
    if (!mask.is_bat || mask.type != DataType::kBool) {
      return Status::TypeError("HAVING condition must be a boolean predicate: " +
                               having->ToString());
    }
    // Group indices surviving the mask.
    int idx = NewBat(DataType::kOid);
    program_.Add("bat", "mirror", {idx}, {Argument::Var(extents_var_)});
    int sel = NewBat(DataType::kOid);
    program_.Add("algebra", "selectmask", {sel}, {Argument::Var(idx), mask.ToArg()});
    for (Eval& out : *outputs) {
      if (!out.is_bat) {
        return Status::Unimplemented("HAVING with scalar select items");
      }
      int proj = NewBat(out.type);
      program_.Add("algebra", "projection", {proj},
                   {Argument::Var(sel), out.ToArg()});
      out = Eval::BatVar(proj, out.type);
    }
    post_projection_ = true;
    return Status::OK();
  }

  /// --- statement phases ---
  Status SetupTables(const SelectStmt& stmt);
  Status ApplyPushdownsAndJoins(const SelectStmt& stmt);
  Status ApplyResidual(const ExprPtr& residual);
  Status EmitOrderLimitAndResults(const SelectStmt& stmt,
                                  std::vector<Eval> outputs,
                                  std::vector<std::string> names,
                                  const std::vector<ExprPtr>& output_exprs,
                                  bool aggregate_context);

  /// Applies ORDER BY / LIMIT, emits result sinks, validates, and hands the
  /// finished program out.
  Result<Program> FinishPlan(const SelectStmt& stmt, std::vector<Eval> outputs,
                             std::vector<std::string> names,
                             const std::vector<ExprPtr>& output_exprs,
                             bool aggregate_context) {
    STETHO_RETURN_IF_ERROR(EmitOrderLimitAndResults(
        stmt, std::move(outputs), std::move(names), output_exprs,
        aggregate_context));
    STETHO_RETURN_IF_ERROR(program_.Validate());
    return std::move(program_);
  }

  /// Splits AND-conjunctions into a flat list.
  static void SplitConjuncts(const ExprPtr& e, std::vector<ExprPtr>* out) {
    if (e->kind == ExprKind::kBinary && e->bin_op == BinaryOp::kAnd) {
      SplitConjuncts(e->left, out);
      SplitConjuncts(e->right, out);
      return;
    }
    out->push_back(e);
  }

  /// Tries to classify a conjunct as a pushdown-able simple predicate.
  bool TryClassifySimple(const ExprPtr& e, SimplePred* pred) const;

  const storage::Catalog* catalog_;
  Program program_{"user.main"};
  int mvc_ = -1;
  std::vector<TableInfo> tables_;
  std::map<std::pair<size_t, std::string>, int> bind_cache_;

  // Set once DISTINCT or HAVING re-projected the output bats: ORDER BY keys
  // must then resolve against the select list (a fresh evaluation would no
  // longer be row-aligned).
  bool post_projection_ = false;

  // Aggregate-context state.
  bool grouped_ = false;
  int groups_var_ = -1;
  int extents_var_ = -1;
  int histo_var_ = -1;
  std::vector<std::string> group_key_text_;  // lower-cased expr text
  std::vector<Eval> group_key_rows_;         // key bats aligned with rows
};

Result<Eval> CompileSession::EmitBinary(BinaryOp op, const Eval& l,
                                        const Eval& r) {
  const char* fn = nullptr;
  bool comparison = false;
  bool boolean = false;
  switch (op) {
    case BinaryOp::kAdd:
      fn = "add";
      break;
    case BinaryOp::kSub:
      fn = "sub";
      break;
    case BinaryOp::kMul:
      fn = "mul";
      break;
    case BinaryOp::kDiv:
      fn = "div";
      break;
    case BinaryOp::kEq:
      fn = "eq";
      comparison = true;
      break;
    case BinaryOp::kNe:
      fn = "ne";
      comparison = true;
      break;
    case BinaryOp::kLt:
      fn = "lt";
      comparison = true;
      break;
    case BinaryOp::kLe:
      fn = "le";
      comparison = true;
      break;
    case BinaryOp::kGt:
      fn = "gt";
      comparison = true;
      break;
    case BinaryOp::kGe:
      fn = "ge";
      comparison = true;
      break;
    case BinaryOp::kAnd:
      fn = "and";
      boolean = true;
      break;
    case BinaryOp::kOr:
      fn = "or";
      boolean = true;
      break;
  }
  bool any_bat = l.is_bat || r.is_bat;
  DataType out_type;
  if (comparison || boolean) {
    out_type = DataType::kBool;
  } else if (op == BinaryOp::kDiv || l.type == DataType::kDouble ||
             r.type == DataType::kDouble) {
    out_type = DataType::kDouble;
  } else {
    out_type = DataType::kInt64;
  }
  int out = any_bat ? NewBat(out_type) : NewScalar(out_type);
  program_.Add(any_bat ? "batcalc" : "calc", fn, {out}, {l.ToArg(), r.ToArg()});
  return any_bat ? Eval::BatVar(out, out_type) : Eval::ScalarVar(out, out_type);
}

Result<Eval> CompileSession::EmitCase(const Eval& cond, const Eval& then_e,
                                      const Eval& else_e) {
  if (!cond.is_bat) {
    return Status::Unimplemented(
        "CASE over a non-columnar condition is not supported");
  }
  DataType out_type = then_e.type;
  if (out_type == DataType::kNull) out_type = else_e.type;
  if (then_e.type == DataType::kDouble || else_e.type == DataType::kDouble) {
    out_type = DataType::kDouble;
  }
  if (out_type == DataType::kNull) out_type = DataType::kInt64;
  int out = NewBat(out_type);
  program_.Add("batcalc", "ifthenelse", {out},
               {cond.ToArg(), then_e.ToArg(), else_e.ToArg()});
  return Eval::BatVar(out, out_type);
}

Result<Eval> CompileSession::EmitLike(const Eval& input,
                                      const std::string& pattern) {
  if (!input.is_bat || input.type != DataType::kString) {
    return Status::TypeError("LIKE requires a string column");
  }
  int out = NewBat(DataType::kBool);
  program_.Add("batcalc", "like", {out},
               {input.ToArg(), Argument::Const(Value::String(pattern))});
  return Eval::BatVar(out, DataType::kBool);
}

Result<Eval> CompileSession::EvalRow(const ExprPtr& expr) {
  switch (expr->kind) {
    case ExprKind::kColumn:
      return ColumnOverRows(expr->table, expr->column);
    case ExprKind::kLiteral:
      return Eval::Const(expr->literal);
    case ExprKind::kBinary: {
      STETHO_ASSIGN_OR_RETURN(Eval l, EvalRow(expr->left));
      STETHO_ASSIGN_OR_RETURN(Eval r, EvalRow(expr->right));
      return EmitBinary(expr->bin_op, l, r);
    }
    case ExprKind::kUnary: {
      STETHO_ASSIGN_OR_RETURN(Eval inner, EvalRow(expr->left));
      if (expr->un_op == UnaryOp::kNeg) {
        return EmitBinary(BinaryOp::kSub, Eval::Const(Value::Int(0)), inner);
      }
      int out = inner.is_bat ? NewBat(DataType::kBool) : NewScalar(DataType::kBool);
      program_.Add(inner.is_bat ? "batcalc" : "calc", "not", {out},
                   {inner.ToArg()});
      return inner.is_bat ? Eval::BatVar(out, DataType::kBool)
                          : Eval::ScalarVar(out, DataType::kBool);
    }
    case ExprKind::kBetween: {
      STETHO_ASSIGN_OR_RETURN(Eval v, EvalRow(expr->left));
      STETHO_ASSIGN_OR_RETURN(Eval lo, EvalRow(expr->right));
      STETHO_ASSIGN_OR_RETURN(Eval hi, EvalRow(expr->third));
      STETHO_ASSIGN_OR_RETURN(Eval ge, EmitBinary(BinaryOp::kGe, v, lo));
      STETHO_ASSIGN_OR_RETURN(Eval le, EmitBinary(BinaryOp::kLe, v, hi));
      return EmitBinary(BinaryOp::kAnd, ge, le);
    }
    case ExprKind::kLike: {
      STETHO_ASSIGN_OR_RETURN(Eval v, EvalRow(expr->left));
      return EmitLike(v, expr->pattern);
    }
    case ExprKind::kCase: {
      STETHO_ASSIGN_OR_RETURN(Eval cond, EvalRow(expr->left));
      STETHO_ASSIGN_OR_RETURN(Eval then_e, EvalRow(expr->right));
      STETHO_ASSIGN_OR_RETURN(Eval else_e, EvalRow(expr->third));
      return EmitCase(cond, then_e, else_e);
    }
    case ExprKind::kAggregate:
      return Status::InvalidArgument(
          "aggregate '" + expr->ToString() + "' not allowed here");
    case ExprKind::kStar:
      return Status::InvalidArgument("* not allowed inside an expression");
  }
  return Status::Internal("unhandled expression kind");
}

Result<Eval> CompileSession::EvalAgg(const ExprPtr& expr) {
  switch (expr->kind) {
    case ExprKind::kAggregate: {
      // Evaluate the argument over the pre-aggregation rows.
      Eval arg;
      if (expr->agg_arg == nullptr) {  // COUNT(*)
        int idx = NewBat(DataType::kOid);
        program_.Add("bat", "mirror", {idx},
                     {Argument::Var(tables_[0].rowmap)});
        arg = Eval::BatVar(idx, DataType::kOid);
      } else {
        STETHO_ASSIGN_OR_RETURN(arg, EvalRow(expr->agg_arg));
        if (!arg.is_bat) {
          return Status::Unimplemented(
              "aggregating a constant expression is not supported");
        }
      }
      if (expr->agg_distinct) {
        // COUNT(DISTINCT x). NULLs group like any other value here (the
        // TPC-H columns are NULL-free); SQL would exclude them.
        if (grouped_) {
          // Refine the active grouping by x: each refined group is one
          // distinct (group, x) pair; count pairs per original group.
          int g2 = NewBat(DataType::kOid);
          int e2 = NewBat(DataType::kOid);
          int h2 = NewBat(DataType::kInt64);
          program_.Add("group", "subgroup", {g2, e2, h2},
                       {arg.ToArg(), Argument::Var(groups_var_)});
          int rep = NewBat(DataType::kOid);
          program_.Add("algebra", "projection", {rep},
                       {Argument::Var(e2), Argument::Var(groups_var_)});
          int out = NewBat(DataType::kInt64);
          program_.Add("aggr", "subcount", {out},
                       {Argument::Var(rep), Argument::Var(rep),
                        Argument::Var(extents_var_)});
          return Eval::BatVar(out, DataType::kInt64);
        }
        int g = NewBat(DataType::kOid);
        int e = NewBat(DataType::kOid);
        int h = NewBat(DataType::kInt64);
        program_.Add("group", "group", {g, e, h}, {arg.ToArg()});
        int out = NewScalar(DataType::kInt64);
        program_.Add("aggr", "count", {out}, {Argument::Var(e)});
        return Eval::ScalarVar(out, DataType::kInt64);
      }
      const char* scalar_fn = "count";
      const char* grouped_fn = "subcount";
      DataType out_type = DataType::kInt64;
      switch (expr->agg) {
        case AggFunc::kSum:
          scalar_fn = "sum";
          grouped_fn = "subsum";
          out_type = arg.type == DataType::kDouble ? DataType::kDouble
                                                   : DataType::kInt64;
          break;
        case AggFunc::kMin:
          scalar_fn = "min";
          grouped_fn = "submin";
          out_type = arg.type == DataType::kDouble ? DataType::kDouble
                                                   : DataType::kInt64;
          break;
        case AggFunc::kMax:
          scalar_fn = "max";
          grouped_fn = "submax";
          out_type = arg.type == DataType::kDouble ? DataType::kDouble
                                                   : DataType::kInt64;
          break;
        case AggFunc::kAvg:
          scalar_fn = "avg";
          grouped_fn = "subavg";
          out_type = DataType::kDouble;
          break;
        case AggFunc::kCount:
          scalar_fn = "count";
          grouped_fn = "subcount";
          out_type = DataType::kInt64;
          break;
      }
      if (grouped_) {
        int out = NewBat(out_type);
        program_.Add("aggr", grouped_fn, {out},
                     {arg.ToArg(), Argument::Var(groups_var_),
                      Argument::Var(extents_var_)});
        return Eval::BatVar(out, out_type);
      }
      int out = NewScalar(out_type);
      program_.Add("aggr", scalar_fn, {out}, {arg.ToArg()});
      return Eval::ScalarVar(out, out_type);
    }
    case ExprKind::kColumn: {
      if (!grouped_) {
        return Status::InvalidArgument(
            "column '" + expr->ToString() +
            "' must appear in GROUP BY or inside an aggregate");
      }
      std::string text = ToLower(expr->ToString());
      for (size_t i = 0; i < group_key_text_.size(); ++i) {
        // Match either the full qualified text or the bare column name.
        if (group_key_text_[i] == text ||
            EndsWith(group_key_text_[i], "." + text) ||
            EndsWith(text, "." + group_key_text_[i])) {
          int out = NewBat(group_key_rows_[i].type);
          program_.Add("algebra", "projection", {out},
                       {Argument::Var(extents_var_),
                        group_key_rows_[i].ToArg()});
          return Eval::BatVar(out, group_key_rows_[i].type);
        }
      }
      return Status::InvalidArgument("column '" + expr->ToString() +
                                     "' is not a GROUP BY key");
    }
    case ExprKind::kLiteral:
      return Eval::Const(expr->literal);
    case ExprKind::kBinary: {
      STETHO_ASSIGN_OR_RETURN(Eval l, EvalAgg(expr->left));
      STETHO_ASSIGN_OR_RETURN(Eval r, EvalAgg(expr->right));
      return EmitBinary(expr->bin_op, l, r);
    }
    case ExprKind::kUnary: {
      STETHO_ASSIGN_OR_RETURN(Eval inner, EvalAgg(expr->left));
      if (expr->un_op == UnaryOp::kNeg) {
        return EmitBinary(BinaryOp::kSub, Eval::Const(Value::Int(0)), inner);
      }
      int out = inner.is_bat ? NewBat(DataType::kBool) : NewScalar(DataType::kBool);
      program_.Add(inner.is_bat ? "batcalc" : "calc", "not", {out},
                   {inner.ToArg()});
      return inner.is_bat ? Eval::BatVar(out, DataType::kBool)
                          : Eval::ScalarVar(out, DataType::kBool);
    }
    case ExprKind::kCase: {
      STETHO_ASSIGN_OR_RETURN(Eval cond, EvalAgg(expr->left));
      STETHO_ASSIGN_OR_RETURN(Eval then_e, EvalAgg(expr->right));
      STETHO_ASSIGN_OR_RETURN(Eval else_e, EvalAgg(expr->third));
      return EmitCase(cond, then_e, else_e);
    }
    case ExprKind::kBetween:
    case ExprKind::kLike:
      return Status::Unimplemented(
          "BETWEEN/LIKE on aggregated values is not supported");
    case ExprKind::kStar:
      return Status::InvalidArgument("* not allowed inside an expression");
  }
  return Status::Internal("unhandled expression kind");
}

bool CompileSession::TryClassifySimple(const ExprPtr& e,
                                       SimplePred* pred) const {
  auto resolve = [this](const ExprPtr& col, size_t* ti) {
    auto r = ResolveColumn(col->table, col->column);
    if (!r.ok()) return false;
    *ti = r.value().first;
    return true;
  };
  if (e->kind == ExprKind::kBinary) {
    const ExprPtr* col = nullptr;
    const ExprPtr* lit = nullptr;
    bool flipped = false;
    if (e->left->kind == ExprKind::kColumn &&
        e->right->kind == ExprKind::kLiteral) {
      col = &e->left;
      lit = &e->right;
    } else if (e->right->kind == ExprKind::kColumn &&
               e->left->kind == ExprKind::kLiteral) {
      col = &e->right;
      lit = &e->left;
      flipped = true;
    } else {
      return false;
    }
    const char* op;
    switch (e->bin_op) {
      case BinaryOp::kEq:
        op = "==";
        break;
      case BinaryOp::kNe:
        op = "!=";
        break;
      case BinaryOp::kLt:
        op = flipped ? ">" : "<";
        break;
      case BinaryOp::kLe:
        op = flipped ? ">=" : "<=";
        break;
      case BinaryOp::kGt:
        op = flipped ? "<" : ">";
        break;
      case BinaryOp::kGe:
        op = flipped ? "<=" : ">=";
        break;
      default:
        return false;
    }
    if (!resolve(*col, &pred->table)) return false;
    pred->kind = SimplePred::Kind::kTheta;
    pred->column = (*col)->column;
    pred->theta_op = op;
    pred->value = (*lit)->literal;
    return true;
  }
  if (e->kind == ExprKind::kBetween &&
      e->left->kind == ExprKind::kColumn &&
      e->right->kind == ExprKind::kLiteral &&
      e->third->kind == ExprKind::kLiteral) {
    if (!resolve(e->left, &pred->table)) return false;
    pred->kind = SimplePred::Kind::kRange;
    pred->column = e->left->column;
    pred->low = e->right->literal;
    pred->high = e->third->literal;
    return true;
  }
  if (e->kind == ExprKind::kLike && e->left->kind == ExprKind::kColumn) {
    if (!resolve(e->left, &pred->table)) return false;
    pred->kind = SimplePred::Kind::kLike;
    pred->column = e->left->column;
    pred->pattern = e->pattern;
    return true;
  }
  return false;
}

Status CompileSession::SetupTables(const SelectStmt& stmt) {
  auto add_table = [this](const TableRef& ref) -> Status {
    STETHO_ASSIGN_OR_RETURN(storage::TablePtr t, catalog_->GetTable(ref.name));
    TableInfo info;
    info.alias = ToLower(ref.effective_alias());
    info.table = std::move(t);
    for (const TableInfo& existing : tables_) {
      if (existing.alias == info.alias) {
        return Status::InvalidArgument("duplicate table alias '" + info.alias + "'");
      }
    }
    tables_.push_back(std::move(info));
    return Status::OK();
  };
  STETHO_RETURN_IF_ERROR(add_table(stmt.from));
  for (const JoinClause& j : stmt.joins) {
    STETHO_RETURN_IF_ERROR(add_table(j.table));
  }

  mvc_ = NewScalar(DataType::kInt64);
  program_.Add("sql", "mvc", {mvc_}, {});
  for (TableInfo& t : tables_) {
    t.rowmap = NewBat(DataType::kOid);
    program_.Add("sql", "tid", {t.rowmap},
                 {Argument::Var(mvc_), Argument::Const(Value::String("sys")),
                  Argument::Const(Value::String(t.table->name()))});
    int64_t rows = static_cast<int64_t>(t.table->num_rows());
    program_.AnnotateCardinality(t.rowmap, rows, rows);
  }
  tables_[0].joined = true;
  return Status::OK();
}

Status CompileSession::ApplyPushdownsAndJoins(const SelectStmt& stmt) {
  // Split WHERE into pushdowns and residual conjuncts.
  std::vector<ExprPtr> conjuncts;
  if (stmt.where) SplitConjuncts(stmt.where, &conjuncts);
  std::vector<ExprPtr> residual;
  std::vector<SimplePred> pushdowns;
  for (const ExprPtr& c : conjuncts) {
    SimplePred pred;
    if (TryClassifySimple(c, &pred)) {
      pushdowns.push_back(std::move(pred));
    } else {
      residual.push_back(c);
    }
  }

  // Apply pushdown predicates per table: each narrows the candidate list.
  for (const SimplePred& pred : pushdowns) {
    TableInfo& t = tables_[pred.table];
    int schema_idx = t.table->schema().FindColumn(pred.column);
    DataType col_type = t.table->schema().column(static_cast<size_t>(schema_idx)).type;
    int base = EmitBind(pred.table, pred.column, col_type);
    int cand = NewBat(DataType::kOid);
    switch (pred.kind) {
      case SimplePred::Kind::kTheta:
        program_.Add("algebra", "thetaselect", {cand},
                     {Argument::Var(base), Argument::Var(t.rowmap),
                      Argument::Const(pred.value),
                      Argument::Const(Value::String(pred.theta_op))});
        break;
      case SimplePred::Kind::kRange:
        program_.Add("algebra", "select", {cand},
                     {Argument::Var(base), Argument::Var(t.rowmap),
                      Argument::Const(pred.low), Argument::Const(pred.high)});
        break;
      case SimplePred::Kind::kLike:
        program_.Add("algebra", "likeselect", {cand},
                     {Argument::Var(base), Argument::Var(t.rowmap),
                      Argument::Const(Value::String(pred.pattern))});
        break;
    }
    t.rowmap = cand;
  }

  // Joins: left-deep, each ON must be <joined>.col = <new>.col (either order).
  for (size_t j = 0; j < stmt.joins.size(); ++j) {
    const JoinClause& join = stmt.joins[j];
    const ExprPtr& on = join.on;
    if (on->kind != ExprKind::kBinary || on->bin_op != BinaryOp::kEq ||
        on->left->kind != ExprKind::kColumn ||
        on->right->kind != ExprKind::kColumn) {
      return Status::Unimplemented("JOIN ON must be an equality of columns: " +
                                   on->ToString());
    }
    STETHO_ASSIGN_OR_RETURN(auto lres,
                            ResolveColumn(on->left->table, on->left->column));
    STETHO_ASSIGN_OR_RETURN(auto rres,
                            ResolveColumn(on->right->table, on->right->column));
    auto [lt, ltype] = lres;
    auto [rt, rtype] = rres;
    const std::string* lcol = &on->left->column;
    const std::string* rcol = &on->right->column;
    if (!tables_[lt].joined && tables_[rt].joined) {
      std::swap(lt, rt);
      std::swap(ltype, rtype);
      std::swap(lcol, rcol);
    }
    if (!tables_[lt].joined || tables_[rt].joined) {
      return Status::Unimplemented(
          "JOIN ON must connect a new table to an already-joined one: " +
          on->ToString());
    }

    // Key columns over current rows of each side.
    int lbase = EmitBind(lt, *lcol, ltype);
    int lvals = NewBat(ltype);
    program_.Add("algebra", "projection", {lvals},
                 {Argument::Var(tables_[lt].rowmap), Argument::Var(lbase)});
    int rbase = EmitBind(rt, *rcol, rtype);
    int rvals = NewBat(rtype);
    program_.Add("algebra", "projection", {rvals},
                 {Argument::Var(tables_[rt].rowmap), Argument::Var(rbase)});

    int li = NewBat(DataType::kOid);
    int ri = NewBat(DataType::kOid);
    program_.Add("algebra", "join", {li, ri},
                 {Argument::Var(lvals), Argument::Var(rvals)});

    // Realign every joined table's rowmap through li; the new table via ri.
    for (TableInfo& t : tables_) {
      if (!t.joined) continue;
      int remapped = NewBat(DataType::kOid);
      program_.Add("algebra", "projection", {remapped},
                   {Argument::Var(li), Argument::Var(t.rowmap)});
      t.rowmap = remapped;
    }
    int remapped = NewBat(DataType::kOid);
    program_.Add("algebra", "projection", {remapped},
                 {Argument::Var(ri), Argument::Var(tables_[rt].rowmap)});
    tables_[rt].rowmap = remapped;
    tables_[rt].joined = true;
  }

  // Residual predicates over the joined rows.
  for (const ExprPtr& r : residual) {
    STETHO_RETURN_IF_ERROR(ApplyResidual(r));
  }
  return Status::OK();
}

Status CompileSession::ApplyResidual(const ExprPtr& residual) {
  STETHO_ASSIGN_OR_RETURN(Eval mask, EvalRow(residual));
  if (!mask.is_bat || mask.type != DataType::kBool) {
    return Status::TypeError("WHERE condition must be a boolean predicate: " +
                             residual->ToString());
  }
  // Select the surviving row indices, then remap every table's rowmap.
  int idx = NewBat(DataType::kOid);
  program_.Add("bat", "mirror", {idx}, {Argument::Var(tables_[0].rowmap)});
  int sel = NewBat(DataType::kOid);
  program_.Add("algebra", "selectmask", {sel},
               {Argument::Var(idx), mask.ToArg()});
  for (TableInfo& t : tables_) {
    int remapped = NewBat(DataType::kOid);
    program_.Add("algebra", "projection", {remapped},
                 {Argument::Var(sel), Argument::Var(t.rowmap)});
    t.rowmap = remapped;
  }
  return Status::OK();
}

Status CompileSession::EmitOrderLimitAndResults(
    const SelectStmt& stmt, std::vector<Eval> outputs,
    std::vector<std::string> names, const std::vector<ExprPtr>& output_exprs,
    bool aggregate_context) {
  // ORDER BY: resolve each key to an output column (by alias, ordinal, or
  // matching expression text) or evaluate it fresh.
  std::vector<std::pair<Eval, bool>> sort_keys;  // (key, desc)
  for (const OrderItem& item : stmt.order_by) {
    Eval key;
    bool found = false;
    if (item.expr->kind == ExprKind::kLiteral &&
        item.expr->literal.type() == DataType::kInt64) {
      int64_t ordinal = item.expr->literal.AsInt();
      if (ordinal < 1 || static_cast<size_t>(ordinal) > outputs.size()) {
        return Status::InvalidArgument("ORDER BY ordinal out of range");
      }
      key = outputs[static_cast<size_t>(ordinal - 1)];
      found = true;
    }
    if (!found) {
      std::string text = ToLower(item.expr->ToString());
      for (size_t i = 0; i < outputs.size(); ++i) {
        if (ToLower(names[i]) == text ||
            (output_exprs[i] != nullptr &&
             ToLower(output_exprs[i]->ToString()) == text)) {
          key = outputs[i];
          found = true;
          break;
        }
      }
    }
    if (!found) {
      if (post_projection_) {
        return Status::Unimplemented(
            "ORDER BY keys must appear in the select list when DISTINCT or "
            "HAVING is used: " + item.expr->ToString());
      }
      if (aggregate_context) {
        STETHO_ASSIGN_OR_RETURN(key, EvalAgg(item.expr));
      } else {
        STETHO_ASSIGN_OR_RETURN(key, EvalRow(item.expr));
      }
    }
    if (!key.is_bat) {
      return Status::InvalidArgument("ORDER BY key is not columnar: " +
                                     item.expr->ToString());
    }
    sort_keys.emplace_back(key, item.desc);
  }

  // Successive stable sorts, least-significant key first.
  for (size_t k = sort_keys.size(); k-- > 0;) {
    auto& [key, desc] = sort_keys[k];
    int sorted = NewBat(key.type);
    int perm = NewBat(DataType::kOid);
    program_.Add("algebra", "sort", {sorted, perm},
                 {key.ToArg(), Argument::Const(Value::Bool(desc))});
    auto regather = [&](Eval& e) {
      if (!e.is_bat) return;
      int out = NewBat(e.type);
      program_.Add("algebra", "projection", {out},
                   {Argument::Var(perm), e.ToArg()});
      e = Eval::BatVar(out, e.type);
    };
    for (Eval& out : outputs) regather(out);
    for (size_t k2 = 0; k2 < k; ++k2) regather(sort_keys[k2].first);
  }

  // LIMIT / OFFSET.
  if (stmt.limit >= 0 || stmt.offset > 0) {
    int64_t lo = stmt.offset;
    int64_t hi = stmt.limit >= 0 ? stmt.offset + stmt.limit
                                 : std::numeric_limits<int64_t>::max();
    for (Eval& out : outputs) {
      if (!out.is_bat) continue;
      int sliced = NewBat(out.type);
      program_.Add("algebra", "slice", {sliced},
                   {out.ToArg(), Argument::Const(Value::Int(lo)),
                    Argument::Const(Value::Int(hi))});
      out = Eval::BatVar(sliced, out.type);
    }
  }

  for (size_t i = 0; i < outputs.size(); ++i) {
    program_.Add("sql", "resultSet", {},
                 {Argument::Const(Value::String(names[i])), outputs[i].ToArg()});
  }
  return Status::OK();
}

Result<Program> CompileSession::Run(const SelectStmt& stmt) {
  if (stmt.items.empty()) {
    return Status::InvalidArgument("empty select list");
  }
  STETHO_RETURN_IF_ERROR(SetupTables(stmt));
  STETHO_RETURN_IF_ERROR(ApplyPushdownsAndJoins(stmt));

  bool has_aggregate = !stmt.group_by.empty();
  for (const SelectItem& item : stmt.items) {
    if (item.expr->ContainsAggregate()) has_aggregate = true;
  }

  std::vector<Eval> outputs;
  std::vector<std::string> names;
  std::vector<ExprPtr> output_exprs;

  if (!has_aggregate) {
    for (const SelectItem& item : stmt.items) {
      if (item.expr->kind == ExprKind::kStar) {
        for (const TableInfo& t : tables_) {
          for (const storage::ColumnDef& def : t.table->schema().columns()) {
            STETHO_ASSIGN_OR_RETURN(Eval e, ColumnOverRows(t.alias, def.name));
            outputs.push_back(e);
            names.push_back(def.name);
            output_exprs.push_back(MakeColumn(t.alias, def.name));
          }
        }
        continue;
      }
      STETHO_ASSIGN_OR_RETURN(Eval e, EvalRow(item.expr));
      outputs.push_back(e);
      names.push_back(item.OutputName());
      output_exprs.push_back(item.expr);
    }
    if (stmt.distinct) {
      STETHO_RETURN_IF_ERROR(ApplyDistinct(&outputs));
    }
    return FinishPlan(stmt, std::move(outputs), std::move(names),
                      output_exprs, /*aggregate_context=*/false);
  }
  if (stmt.distinct) {
    return Status::Unimplemented("DISTINCT combined with aggregates");
  }

  // Aggregate path: build the grouping chain first.
  grouped_ = !stmt.group_by.empty();
  if (grouped_) {
    for (const ExprPtr& key : stmt.group_by) {
      STETHO_ASSIGN_OR_RETURN(Eval kv, EvalRow(key));
      if (!kv.is_bat) {
        return Status::InvalidArgument("GROUP BY key is not columnar: " +
                                       key->ToString());
      }
      group_key_rows_.push_back(kv);
      group_key_text_.push_back(ToLower(key->ToString()));
    }
    for (size_t i = 0; i < group_key_rows_.size(); ++i) {
      int g = NewBat(DataType::kOid);
      int e = NewBat(DataType::kOid);
      int h = NewBat(DataType::kInt64);
      if (i == 0) {
        program_.Add("group", "group", {g, e, h},
                     {group_key_rows_[i].ToArg()});
      } else {
        program_.Add("group", "subgroup", {g, e, h},
                     {group_key_rows_[i].ToArg(), Argument::Var(groups_var_)});
      }
      groups_var_ = g;
      extents_var_ = e;
      histo_var_ = h;
    }
  }

  for (const SelectItem& item : stmt.items) {
    if (item.expr->kind == ExprKind::kStar) {
      return Status::InvalidArgument("* cannot be mixed with aggregates");
    }
    STETHO_ASSIGN_OR_RETURN(Eval e, EvalAgg(item.expr));
    outputs.push_back(e);
    names.push_back(item.OutputName());
    output_exprs.push_back(item.expr);
  }
  if (stmt.having) {
    STETHO_RETURN_IF_ERROR(ApplyHaving(stmt.having, &outputs));
  }
  return FinishPlan(stmt, std::move(outputs), std::move(names), output_exprs,
                    /*aggregate_context=*/true);
}

}  // namespace

Result<Program> Compiler::Compile(const SelectStmt& stmt) const {
  CompileSession session(catalog_);
  return session.Run(stmt);
}

Result<Program> Compiler::CompileSql(const storage::Catalog* catalog,
                                     const std::string& sql) {
  STETHO_ASSIGN_OR_RETURN(SelectStmt stmt, ParseSelect(sql));
  Compiler compiler(catalog);
  return compiler.Compile(stmt);
}

}  // namespace stetho::sql
