#ifndef STETHO_SQL_COMPILER_H_
#define STETHO_SQL_COMPILER_H_

#include <string>

#include "common/status.h"
#include "mal/program.h"
#include "sql/ast.h"
#include "storage/table.h"

namespace stetho::sql {

/// Compiles a parsed SELECT statement into a MAL program, mirroring
/// MonetDB's column-at-a-time plan shape: sql.mvc / sql.tid / sql.bind feed
/// candidate-list selects, hash joins over projected key columns, group /
/// aggr chains, and sql.resultSet sinks.
///
/// Predicate conjuncts of the form <column> <cmp> <literal>, BETWEEN, and
/// LIKE are pushed down into algebra.select/thetaselect/likeselect before
/// joins; everything else becomes a batcalc mask + algebra.selectmask
/// residual after joins.
class Compiler {
 public:
  explicit Compiler(const storage::Catalog* catalog) : catalog_(catalog) {}

  /// Compiles one statement. The returned program passes
  /// mal::Program::Validate() and is ready for the optimizer/interpreter.
  Result<mal::Program> Compile(const SelectStmt& stmt) const;

  /// Convenience: parse + compile.
  static Result<mal::Program> CompileSql(const storage::Catalog* catalog,
                                         const std::string& sql);

 private:
  const storage::Catalog* catalog_;
};

}  // namespace stetho::sql

#endif  // STETHO_SQL_COMPILER_H_
