#ifndef STETHO_SQL_AST_H_
#define STETHO_SQL_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "storage/value.h"

namespace stetho::sql {

struct Expr;
using ExprPtr = std::shared_ptr<Expr>;

enum class ExprKind {
  kColumn,     ///< [table.]column reference
  kLiteral,    ///< constant value
  kBinary,     ///< left OP right
  kUnary,      ///< NOT / unary minus
  kAggregate,  ///< SUM/MIN/MAX/AVG/COUNT(arg | *)
  kBetween,    ///< left BETWEEN low AND high
  kLike,       ///< left LIKE 'pattern'
  kCase,       ///< CASE WHEN cond THEN a ELSE b END
  kStar,       ///< bare * in the select list
};

enum class BinaryOp {
  kAdd, kSub, kMul, kDiv,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAnd, kOr,
};

enum class UnaryOp { kNot, kNeg };

enum class AggFunc { kSum, kMin, kMax, kAvg, kCount };

const char* BinaryOpName(BinaryOp op);   // "+", "<=", "AND", ...
const char* AggFuncName(AggFunc fn);     // "sum", ...

/// One SQL expression node. A single struct with a kind tag keeps the tree
/// easy to walk in the compiler; unused fields stay empty.
struct Expr {
  ExprKind kind;

  // kColumn
  std::string table;   // optional qualifier (table name or alias)
  std::string column;

  // kLiteral
  storage::Value literal;

  // kBinary / kUnary / kBetween / kLike / kCase operands:
  //   binary: left OP right
  //   unary: left
  //   between: left in [right, third]
  //   like: left LIKE pattern
  //   case: left=condition, right=then, third=else
  BinaryOp bin_op = BinaryOp::kAdd;
  UnaryOp un_op = UnaryOp::kNot;
  ExprPtr left;
  ExprPtr right;
  ExprPtr third;
  std::string pattern;

  // kAggregate
  AggFunc agg = AggFunc::kCount;
  ExprPtr agg_arg;         // null = COUNT(*)
  bool agg_distinct = false;  // COUNT(DISTINCT x)

  /// Renders roughly-canonical SQL (used for default column names, group-key
  /// matching, and diagnostics).
  std::string ToString() const;

  /// True when any node in the subtree is an aggregate call.
  bool ContainsAggregate() const;
};

/// --- Factories ---
ExprPtr MakeColumn(std::string table, std::string column);
ExprPtr MakeLiteral(storage::Value v);
ExprPtr MakeBinary(BinaryOp op, ExprPtr l, ExprPtr r);
ExprPtr MakeUnary(UnaryOp op, ExprPtr e);
ExprPtr MakeAggregate(AggFunc fn, ExprPtr arg);
ExprPtr MakeBetween(ExprPtr e, ExprPtr lo, ExprPtr hi);
ExprPtr MakeLike(ExprPtr e, std::string pattern);
ExprPtr MakeCase(ExprPtr cond, ExprPtr then_e, ExprPtr else_e);
ExprPtr MakeStar();

/// SELECT-list entry.
struct SelectItem {
  ExprPtr expr;
  std::string alias;  // empty = derived from expr

  /// Output column name: alias if present, else expr text.
  std::string OutputName() const;
};

/// Base table reference with optional alias.
struct TableRef {
  std::string name;
  std::string alias;  // empty = name

  const std::string& effective_alias() const {
    return alias.empty() ? name : alias;
  }
};

/// JOIN <table> ON <condition> (inner equi-joins).
struct JoinClause {
  TableRef table;
  ExprPtr on;
};

struct OrderItem {
  ExprPtr expr;
  bool desc = false;
};

/// A parsed SELECT statement.
struct SelectStmt {
  bool distinct = false;
  std::vector<SelectItem> items;
  TableRef from;
  std::vector<JoinClause> joins;
  ExprPtr where;                  // null = no WHERE
  std::vector<ExprPtr> group_by;
  ExprPtr having;                 // null = no HAVING
  std::vector<OrderItem> order_by;
  int64_t limit = -1;             // -1 = no LIMIT
  int64_t offset = 0;

  std::string ToString() const;
};

}  // namespace stetho::sql

#endif  // STETHO_SQL_AST_H_
