#include "sql/ast.h"

#include "common/string_util.h"

namespace stetho::sql {

const char* BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNe:
      return "<>";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kAnd:
      return "AND";
    case BinaryOp::kOr:
      return "OR";
  }
  return "?";
}

const char* AggFuncName(AggFunc fn) {
  switch (fn) {
    case AggFunc::kSum:
      return "sum";
    case AggFunc::kMin:
      return "min";
    case AggFunc::kMax:
      return "max";
    case AggFunc::kAvg:
      return "avg";
    case AggFunc::kCount:
      return "count";
  }
  return "?";
}

std::string Expr::ToString() const {
  switch (kind) {
    case ExprKind::kColumn:
      return table.empty() ? column : table + "." + column;
    case ExprKind::kLiteral:
      if (literal.type() == storage::DataType::kString) {
        return "'" + literal.AsString() + "'";
      }
      return literal.ToString();
    case ExprKind::kBinary:
      return "(" + left->ToString() + " " + BinaryOpName(bin_op) + " " +
             right->ToString() + ")";
    case ExprKind::kUnary:
      return un_op == UnaryOp::kNot ? "(NOT " + left->ToString() + ")"
                                    : "(-" + left->ToString() + ")";
    case ExprKind::kAggregate:
      return std::string(AggFuncName(agg)) + "(" +
             (agg_distinct ? "DISTINCT " : "") +
             (agg_arg ? agg_arg->ToString() : "*") + ")";
    case ExprKind::kBetween:
      return "(" + left->ToString() + " BETWEEN " + right->ToString() +
             " AND " + third->ToString() + ")";
    case ExprKind::kLike:
      return "(" + left->ToString() + " LIKE '" + pattern + "')";
    case ExprKind::kCase:
      return "CASE WHEN " + left->ToString() + " THEN " + right->ToString() +
             " ELSE " + third->ToString() + " END";
    case ExprKind::kStar:
      return "*";
  }
  return "?";
}

bool Expr::ContainsAggregate() const {
  if (kind == ExprKind::kAggregate) return true;
  for (const ExprPtr& child : {left, right, third, agg_arg}) {
    if (child && child->ContainsAggregate()) return true;
  }
  return false;
}

ExprPtr MakeColumn(std::string table, std::string column) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kColumn;
  e->table = std::move(table);
  e->column = std::move(column);
  return e;
}

ExprPtr MakeLiteral(storage::Value v) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kLiteral;
  e->literal = std::move(v);
  return e;
}

ExprPtr MakeBinary(BinaryOp op, ExprPtr l, ExprPtr r) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kBinary;
  e->bin_op = op;
  e->left = std::move(l);
  e->right = std::move(r);
  return e;
}

ExprPtr MakeUnary(UnaryOp op, ExprPtr inner) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kUnary;
  e->un_op = op;
  e->left = std::move(inner);
  return e;
}

ExprPtr MakeAggregate(AggFunc fn, ExprPtr arg) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kAggregate;
  e->agg = fn;
  e->agg_arg = std::move(arg);
  return e;
}

ExprPtr MakeBetween(ExprPtr v, ExprPtr lo, ExprPtr hi) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kBetween;
  e->left = std::move(v);
  e->right = std::move(lo);
  e->third = std::move(hi);
  return e;
}

ExprPtr MakeLike(ExprPtr v, std::string pattern) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kLike;
  e->left = std::move(v);
  e->pattern = std::move(pattern);
  return e;
}

ExprPtr MakeCase(ExprPtr cond, ExprPtr then_e, ExprPtr else_e) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kCase;
  e->left = std::move(cond);
  e->right = std::move(then_e);
  e->third = std::move(else_e);
  return e;
}

ExprPtr MakeStar() {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kStar;
  return e;
}

std::string SelectItem::OutputName() const {
  if (!alias.empty()) return alias;
  return expr->ToString();
}

std::string SelectStmt::ToString() const {
  std::string out = distinct ? "SELECT DISTINCT " : "SELECT ";
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ", ";
    out += items[i].expr->ToString();
    if (!items[i].alias.empty()) out += " AS " + items[i].alias;
  }
  out += " FROM " + from.name;
  if (!from.alias.empty()) out += " " + from.alias;
  for (const JoinClause& j : joins) {
    out += " JOIN " + j.table.name;
    if (!j.table.alias.empty()) out += " " + j.table.alias;
    out += " ON " + j.on->ToString();
  }
  if (where) out += " WHERE " + where->ToString();
  if (!group_by.empty()) {
    out += " GROUP BY ";
    for (size_t i = 0; i < group_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += group_by[i]->ToString();
    }
  }
  if (having) out += " HAVING " + having->ToString();
  if (!order_by.empty()) {
    out += " ORDER BY ";
    for (size_t i = 0; i < order_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += order_by[i].expr->ToString();
      if (order_by[i].desc) out += " DESC";
    }
  }
  if (limit >= 0) out += StrFormat(" LIMIT %lld", static_cast<long long>(limit));
  if (offset > 0) out += StrFormat(" OFFSET %lld", static_cast<long long>(offset));
  return out;
}

}  // namespace stetho::sql
