#ifndef STETHO_SQL_LEXER_H_
#define STETHO_SQL_LEXER_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace stetho::sql {

/// Token categories produced by the SQL lexer.
enum class TokenKind {
  kIdent,    ///< identifier or keyword (keywords resolved by the parser)
  kInt,      ///< integer literal
  kFloat,    ///< floating-point literal
  kString,   ///< 'single quoted' string literal (quotes stripped)
  kSymbol,   ///< operator / punctuation, text holds the symbol (e.g. "<=")
  kEnd,      ///< end of input
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;   // raw text (uppercased for idents? no — preserved)
  size_t offset = 0;  // position in the input, for error messages

  bool IsSymbol(const char* s) const {
    return kind == TokenKind::kSymbol && text == s;
  }
  /// Case-insensitive keyword check (only meaningful for kIdent).
  bool IsKeyword(const char* kw) const;
};

/// Tokenizes a SQL string. Symbols recognized: ( ) , . ; * + - / % = <> != <
/// <= > >=. Comments: "-- ..." to end of line.
Result<std::vector<Token>> Tokenize(const std::string& sql);

}  // namespace stetho::sql

#endif  // STETHO_SQL_LEXER_H_
