#include "sql/parser.h"

#include "common/string_util.h"
#include "sql/lexer.h"

namespace stetho::sql {
namespace {

using storage::Value;

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<SelectStmt> ParseStatement() {
    STETHO_ASSIGN_OR_RETURN(SelectStmt stmt, ParseSelectBody());
    Consume(";");
    if (Peek().kind != TokenKind::kEnd) {
      return Error("unexpected trailing input");
    }
    return stmt;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_++]; }
  bool Consume(const char* symbol) {
    if (Peek().IsSymbol(symbol)) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool ConsumeKeyword(const char* kw) {
    if (Peek().IsKeyword(kw)) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status Error(const std::string& msg) const {
    return Status::ParseError(
        StrFormat("%s near offset %zu ('%s')", msg.c_str(), Peek().offset,
                  Peek().text.c_str()));
  }

  /// Reserved words that terminate an implicit alias.
  static bool IsReserved(const Token& t) {
    static const char* kReserved[] = {
        "select", "from",  "where",  "group", "by",    "order",  "limit",
        "offset", "join",  "on",     "and",   "or",    "not",    "between",
        "like",   "as",    "asc",    "desc",  "case",  "when",   "then",
        "else",   "end",   "inner",  "null",  "having", "distinct",
    };
    if (t.kind != TokenKind::kIdent) return false;
    for (const char* kw : kReserved) {
      if (t.IsKeyword(kw)) return true;
    }
    return false;
  }

  Result<SelectStmt> ParseSelectBody() {
    SelectStmt stmt;
    if (!ConsumeKeyword("select")) return Error("expected SELECT");
    if (ConsumeKeyword("distinct")) stmt.distinct = true;

    // Select list.
    while (true) {
      SelectItem item;
      if (Peek().IsSymbol("*")) {
        Advance();
        item.expr = MakeStar();
      } else {
        STETHO_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (ConsumeKeyword("as")) {
          if (Peek().kind != TokenKind::kIdent) return Error("expected alias");
          item.alias = Advance().text;
        } else if (Peek().kind == TokenKind::kIdent && !IsReserved(Peek())) {
          item.alias = Advance().text;
        }
      }
      stmt.items.push_back(std::move(item));
      if (!Consume(",")) break;
    }

    if (!ConsumeKeyword("from")) return Error("expected FROM");
    STETHO_ASSIGN_OR_RETURN(stmt.from, ParseTableRef());

    while (Peek().IsKeyword("join") || Peek().IsKeyword("inner")) {
      ConsumeKeyword("inner");
      if (!ConsumeKeyword("join")) return Error("expected JOIN");
      JoinClause join;
      STETHO_ASSIGN_OR_RETURN(join.table, ParseTableRef());
      if (!ConsumeKeyword("on")) return Error("expected ON");
      STETHO_ASSIGN_OR_RETURN(join.on, ParseExpr());
      stmt.joins.push_back(std::move(join));
    }

    if (ConsumeKeyword("where")) {
      STETHO_ASSIGN_OR_RETURN(stmt.where, ParseExpr());
    }
    if (ConsumeKeyword("group")) {
      if (!ConsumeKeyword("by")) return Error("expected BY after GROUP");
      while (true) {
        STETHO_ASSIGN_OR_RETURN(ExprPtr key, ParseExpr());
        stmt.group_by.push_back(std::move(key));
        if (!Consume(",")) break;
      }
    }
    if (ConsumeKeyword("having")) {
      if (stmt.group_by.empty()) {
        return Error("HAVING requires GROUP BY");
      }
      STETHO_ASSIGN_OR_RETURN(stmt.having, ParseExpr());
    }
    if (ConsumeKeyword("order")) {
      if (!ConsumeKeyword("by")) return Error("expected BY after ORDER");
      while (true) {
        OrderItem item;
        STETHO_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (ConsumeKeyword("desc")) {
          item.desc = true;
        } else {
          ConsumeKeyword("asc");
        }
        stmt.order_by.push_back(std::move(item));
        if (!Consume(",")) break;
      }
    }
    if (ConsumeKeyword("limit")) {
      if (Peek().kind != TokenKind::kInt) return Error("expected LIMIT count");
      STETHO_ASSIGN_OR_RETURN(stmt.limit, ParseInt64(Advance().text));
      if (ConsumeKeyword("offset")) {
        if (Peek().kind != TokenKind::kInt) return Error("expected OFFSET count");
        STETHO_ASSIGN_OR_RETURN(stmt.offset, ParseInt64(Advance().text));
      }
    }
    return stmt;
  }

  Result<TableRef> ParseTableRef() {
    if (Peek().kind != TokenKind::kIdent || IsReserved(Peek())) {
      return Error("expected table name");
    }
    TableRef ref;
    ref.name = Advance().text;
    if (ConsumeKeyword("as")) {
      if (Peek().kind != TokenKind::kIdent) return Error("expected table alias");
      ref.alias = Advance().text;
    } else if (Peek().kind == TokenKind::kIdent && !IsReserved(Peek())) {
      ref.alias = Advance().text;
    }
    return ref;
  }

  /// Expression grammar, lowest precedence first:
  ///   or_expr   := and_expr (OR and_expr)*
  ///   and_expr  := not_expr (AND not_expr)*
  ///   not_expr  := NOT not_expr | predicate
  ///   predicate := additive [(cmp additive) | BETWEEN .. AND .. | LIKE 'p']
  ///   additive  := term ((+|-) term)*
  ///   term      := factor ((*|/) factor)*
  ///   factor    := -factor | primary
  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    STETHO_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
    while (ConsumeKeyword("or")) {
      STETHO_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
      lhs = MakeBinary(BinaryOp::kOr, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseAnd() {
    STETHO_ASSIGN_OR_RETURN(ExprPtr lhs, ParseNot());
    while (ConsumeKeyword("and")) {
      STETHO_ASSIGN_OR_RETURN(ExprPtr rhs, ParseNot());
      lhs = MakeBinary(BinaryOp::kAnd, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseNot() {
    if (ConsumeKeyword("not")) {
      STETHO_ASSIGN_OR_RETURN(ExprPtr inner, ParseNot());
      return MakeUnary(UnaryOp::kNot, std::move(inner));
    }
    return ParsePredicate();
  }

  Result<ExprPtr> ParsePredicate() {
    STETHO_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive());
    if (ConsumeKeyword("between")) {
      STETHO_ASSIGN_OR_RETURN(ExprPtr lo, ParseAdditive());
      if (!ConsumeKeyword("and")) return Error("expected AND in BETWEEN");
      STETHO_ASSIGN_OR_RETURN(ExprPtr hi, ParseAdditive());
      return MakeBetween(std::move(lhs), std::move(lo), std::move(hi));
    }
    if (ConsumeKeyword("like")) {
      if (Peek().kind != TokenKind::kString) {
        return Error("LIKE requires a string literal pattern");
      }
      return MakeLike(std::move(lhs), Advance().text);
    }
    struct {
      const char* sym;
      BinaryOp op;
    } static const kCmps[] = {
        {"=", BinaryOp::kEq},  {"<>", BinaryOp::kNe}, {"!=", BinaryOp::kNe},
        {"<=", BinaryOp::kLe}, {">=", BinaryOp::kGe}, {"<", BinaryOp::kLt},
        {">", BinaryOp::kGt},
    };
    for (const auto& c : kCmps) {
      if (Consume(c.sym)) {
        STETHO_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
        return MakeBinary(c.op, std::move(lhs), std::move(rhs));
      }
    }
    return lhs;
  }

  Result<ExprPtr> ParseAdditive() {
    STETHO_ASSIGN_OR_RETURN(ExprPtr lhs, ParseTerm());
    while (true) {
      if (Consume("+")) {
        STETHO_ASSIGN_OR_RETURN(ExprPtr rhs, ParseTerm());
        lhs = MakeBinary(BinaryOp::kAdd, std::move(lhs), std::move(rhs));
      } else if (Consume("-")) {
        STETHO_ASSIGN_OR_RETURN(ExprPtr rhs, ParseTerm());
        lhs = MakeBinary(BinaryOp::kSub, std::move(lhs), std::move(rhs));
      } else {
        return lhs;
      }
    }
  }

  Result<ExprPtr> ParseTerm() {
    STETHO_ASSIGN_OR_RETURN(ExprPtr lhs, ParseFactor());
    while (true) {
      if (Consume("*")) {
        STETHO_ASSIGN_OR_RETURN(ExprPtr rhs, ParseFactor());
        lhs = MakeBinary(BinaryOp::kMul, std::move(lhs), std::move(rhs));
      } else if (Consume("/")) {
        STETHO_ASSIGN_OR_RETURN(ExprPtr rhs, ParseFactor());
        lhs = MakeBinary(BinaryOp::kDiv, std::move(lhs), std::move(rhs));
      } else {
        return lhs;
      }
    }
  }

  Result<ExprPtr> ParseFactor() {
    if (Consume("-")) {
      STETHO_ASSIGN_OR_RETURN(ExprPtr inner, ParseFactor());
      // Fold negation into numeric literals immediately.
      if (inner->kind == ExprKind::kLiteral) {
        const Value& v = inner->literal;
        if (v.type() == storage::DataType::kInt64) {
          return MakeLiteral(Value::Int(-v.AsInt()));
        }
        if (v.type() == storage::DataType::kDouble) {
          return MakeLiteral(Value::Double(-v.AsDouble()));
        }
      }
      return MakeUnary(UnaryOp::kNeg, std::move(inner));
    }
    return ParsePrimary();
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& tok = Peek();
    switch (tok.kind) {
      case TokenKind::kInt: {
        STETHO_ASSIGN_OR_RETURN(int64_t v, ParseInt64(Advance().text));
        return MakeLiteral(Value::Int(v));
      }
      case TokenKind::kFloat: {
        STETHO_ASSIGN_OR_RETURN(double v, ParseDouble(Advance().text));
        return MakeLiteral(Value::Double(v));
      }
      case TokenKind::kString:
        return MakeLiteral(Value::String(Advance().text));
      case TokenKind::kSymbol:
        if (Consume("(")) {
          STETHO_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
          if (!Consume(")")) return Error("expected ')'");
          return inner;
        }
        return Error("unexpected symbol in expression");
      case TokenKind::kIdent:
        break;
      default:
        return Error("unexpected end of expression");
    }

    if (tok.IsKeyword("null")) {
      Advance();
      return MakeLiteral(Value::Null());
    }
    if (tok.IsKeyword("case")) return ParseCase();

    // Aggregate functions.
    static const struct {
      const char* name;
      AggFunc fn;
    } kAggs[] = {{"sum", AggFunc::kSum},
                 {"min", AggFunc::kMin},
                 {"max", AggFunc::kMax},
                 {"avg", AggFunc::kAvg},
                 {"count", AggFunc::kCount}};
    for (const auto& a : kAggs) {
      if (tok.IsKeyword(a.name) && Peek(1).IsSymbol("(")) {
        Advance();  // function name
        Advance();  // '('
        ExprPtr arg;
        bool distinct = false;
        if (Peek().IsSymbol("*")) {
          if (a.fn != AggFunc::kCount) {
            return Error("only COUNT accepts *");
          }
          Advance();
        } else {
          if (ConsumeKeyword("distinct")) {
            if (a.fn != AggFunc::kCount) {
              return Error("DISTINCT aggregates are only supported for COUNT");
            }
            distinct = true;
          }
          STETHO_ASSIGN_OR_RETURN(arg, ParseExpr());
        }
        if (!Consume(")")) return Error("expected ')' after aggregate");
        ExprPtr agg = MakeAggregate(a.fn, std::move(arg));
        agg->agg_distinct = distinct;
        return agg;
      }
    }

    if (IsReserved(tok)) return Error("unexpected keyword in expression");

    // Column reference: ident [. ident]
    std::string first = Advance().text;
    if (Consume(".")) {
      if (Peek().kind != TokenKind::kIdent) return Error("expected column name");
      return MakeColumn(std::move(first), Advance().text);
    }
    return MakeColumn("", std::move(first));
  }

  Result<ExprPtr> ParseCase() {
    if (!ConsumeKeyword("case")) return Error("expected CASE");
    if (!ConsumeKeyword("when")) return Error("expected WHEN");
    STETHO_ASSIGN_OR_RETURN(ExprPtr cond, ParseExpr());
    if (!ConsumeKeyword("then")) return Error("expected THEN");
    STETHO_ASSIGN_OR_RETURN(ExprPtr then_e, ParseExpr());
    ExprPtr else_e;
    if (ConsumeKeyword("else")) {
      STETHO_ASSIGN_OR_RETURN(else_e, ParseExpr());
    } else {
      else_e = MakeLiteral(Value::Null());
    }
    if (!ConsumeKeyword("end")) return Error("expected END");
    return MakeCase(std::move(cond), std::move(then_e), std::move(else_e));
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<SelectStmt> ParseSelect(const std::string& sql) {
  STETHO_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.ParseStatement();
}

}  // namespace stetho::sql
