#include "dot/graph.h"

#include <deque>

namespace stetho::dot {

GraphNode& Graph::AddNode(const std::string& id) {
  auto it = index_.find(id);
  if (it != index_.end()) return nodes_[static_cast<size_t>(it->second)];
  index_[id] = static_cast<int>(nodes_.size());
  nodes_.push_back(GraphNode{id, {}});
  return nodes_.back();
}

GraphEdge& Graph::AddEdge(const std::string& from, const std::string& to) {
  AddNode(from);
  AddNode(to);
  edges_.push_back(GraphEdge{from, to, {}});
  return edges_.back();
}

int Graph::FindNode(const std::string& id) const {
  auto it = index_.find(id);
  return it != index_.end() ? it->second : -1;
}

std::vector<int> Graph::Roots() const {
  std::vector<int> indegree(nodes_.size(), 0);
  for (const GraphEdge& e : edges_) {
    int to = FindNode(e.to);
    if (to >= 0) ++indegree[static_cast<size_t>(to)];
  }
  std::vector<int> roots;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (indegree[i] == 0) roots.push_back(static_cast<int>(i));
  }
  return roots;
}

std::vector<std::vector<int>> Graph::OutAdjacency() const {
  std::vector<std::vector<int>> adj(nodes_.size());
  for (const GraphEdge& e : edges_) {
    int from = FindNode(e.from);
    int to = FindNode(e.to);
    if (from >= 0 && to >= 0) adj[static_cast<size_t>(from)].push_back(to);
  }
  return adj;
}

std::vector<std::vector<int>> Graph::InAdjacency() const {
  std::vector<std::vector<int>> adj(nodes_.size());
  for (const GraphEdge& e : edges_) {
    int from = FindNode(e.from);
    int to = FindNode(e.to);
    if (from >= 0 && to >= 0) adj[static_cast<size_t>(to)].push_back(from);
  }
  return adj;
}

Result<std::vector<int>> Graph::TopologicalOrder() const {
  std::vector<int> indegree(nodes_.size(), 0);
  auto out = OutAdjacency();
  for (const auto& targets : out) {
    for (int t : targets) ++indegree[static_cast<size_t>(t)];
  }
  std::deque<int> ready;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (indegree[i] == 0) ready.push_back(static_cast<int>(i));
  }
  std::vector<int> order;
  order.reserve(nodes_.size());
  while (!ready.empty()) {
    int n = ready.front();
    ready.pop_front();
    order.push_back(n);
    for (int t : out[static_cast<size_t>(n)]) {
      if (--indegree[static_cast<size_t>(t)] == 0) ready.push_back(t);
    }
  }
  if (order.size() != nodes_.size()) {
    return Status::Internal("graph contains a cycle");
  }
  return order;
}

}  // namespace stetho::dot
