#ifndef STETHO_DOT_PARSER_H_
#define STETHO_DOT_PARSER_H_

#include <string>

#include "common/status.h"
#include "dot/graph.h"

namespace stetho::dot {

/// Parses a dot-language document into a Graph. Supported subset (what
/// GraphViz-generated MAL plan files use):
///
///   (di)graph [name] { stmt* }
///   stmt := node_id [attr_list] ;
///         | node_id (-> | --) node_id [attr_list] ;
///         | ID = ID ;                 (graph attribute, stored on the graph)
///         | node [attr_list] ;        (default node attributes, ignored)
///   attr_list := '[' ID '=' (ID | "string") (',' ...)* ']'
///
/// Identifiers are alphanumeric/underscore/dot sequences, numerals, or
/// double-quoted strings with backslash escapes. Comments: //, /* */, #.
Result<Graph> ParseDot(const std::string& text);

}  // namespace stetho::dot

#endif  // STETHO_DOT_PARSER_H_
