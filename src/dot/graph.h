#ifndef STETHO_DOT_GRAPH_H_
#define STETHO_DOT_GRAPH_H_

#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace stetho::dot {

/// A node of a parsed DOT graph. `id` is the DOT identifier ("n12"); the
/// trace↔plan mapping relies on the paper's convention that pc N maps to
/// node "nN" and the MAL statement text lives in the "label" attribute.
struct GraphNode {
  std::string id;
  std::map<std::string, std::string> attrs;

  /// The "label" attribute, or the id when absent.
  const std::string& label() const {
    auto it = attrs.find("label");
    return it != attrs.end() ? it->second : id;
  }
};

struct GraphEdge {
  std::string from;
  std::string to;
  std::map<std::string, std::string> attrs;
};

/// In-memory graph structure built from a dot file (paper §4: "the svg file
/// gets parsed and an in memory graph structure gets created"). Node order
/// is insertion order; ids are unique.
class Graph {
 public:
  Graph() = default;
  explicit Graph(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }
  bool directed() const { return directed_; }
  void set_directed(bool d) { directed_ = d; }

  /// Adds (or merges attributes into) a node.
  GraphNode& AddNode(const std::string& id);
  /// Adds an edge; endpoints are implicitly created.
  GraphEdge& AddEdge(const std::string& from, const std::string& to);

  size_t num_nodes() const { return nodes_.size(); }
  size_t num_edges() const { return edges_.size(); }
  const std::vector<GraphNode>& nodes() const { return nodes_; }
  const std::vector<GraphEdge>& edges() const { return edges_; }
  GraphNode& node(size_t i) { return nodes_[i]; }
  const GraphNode& node(size_t i) const { return nodes_[i]; }

  /// Index of node `id`, or -1.
  int FindNode(const std::string& id) const;

  /// Indices of nodes with no incoming edges (the "root node[s]" used to
  /// traverse the graph).
  std::vector<int> Roots() const;

  /// Outgoing / incoming neighbor indices per node.
  std::vector<std::vector<int>> OutAdjacency() const;
  std::vector<std::vector<int>> InAdjacency() const;

  /// Topological order (Kahn); Internal error when the graph has a cycle.
  Result<std::vector<int>> TopologicalOrder() const;

 private:
  std::string name_ = "G";
  bool directed_ = true;
  std::vector<GraphNode> nodes_;
  std::vector<GraphEdge> edges_;
  // id -> node index. Hashed rather than ordered: FindNode sits on the hot
  // path of adjacency construction, edge routing, and crossing counting.
  std::unordered_map<std::string, int> index_;
};

}  // namespace stetho::dot

#endif  // STETHO_DOT_GRAPH_H_
