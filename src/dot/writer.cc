#include "dot/writer.h"

#include "common/string_util.h"

namespace stetho::dot {
namespace {

std::string NodeName(int pc) { return StrFormat("n%d", pc); }

std::string Truncate(const std::string& text, size_t limit) {
  if (limit == 0 || text.size() <= limit) return text;
  return text.substr(0, limit) + "...";
}

}  // namespace

std::string ProgramToDot(const mal::Program& program,
                         const DotWriterOptions& options) {
  std::string out = "digraph \"" + EscapeQuoted(options.graph_name) + "\" {\n";
  out += "  node [shape=" + options.node_shape + "];\n";
  for (const mal::Instruction& ins : program.instructions()) {
    std::string label =
        Truncate(program.InstructionToString(ins), options.max_label_chars);
    out += "  " + NodeName(ins.pc) + " [label=\"" + EscapeQuoted(label) +
           "\"];\n";
  }
  auto deps = program.BuildDependencies();
  for (size_t pc = 0; pc < deps.size(); ++pc) {
    for (int producer : deps[pc]) {
      // Dataflow direction: producer -> consumer.
      out += "  " + NodeName(producer) + " -> " +
             NodeName(static_cast<int>(pc)) + ";\n";
    }
  }
  out += "}\n";
  return out;
}

std::string GraphToDot(const Graph& graph) {
  std::string out;
  out += graph.directed() ? "digraph" : "graph";
  out += " \"" + EscapeQuoted(graph.name()) + "\" {\n";
  for (const GraphNode& node : graph.nodes()) {
    out += "  " + node.id;
    if (!node.attrs.empty()) {
      out += " [";
      bool first = true;
      for (const auto& [k, v] : node.attrs) {
        if (!first) out += ", ";
        first = false;
        out += k + "=\"" + EscapeQuoted(v) + "\"";
      }
      out += "]";
    }
    out += ";\n";
  }
  const char* arrow = graph.directed() ? " -> " : " -- ";
  for (const GraphEdge& edge : graph.edges()) {
    out += "  " + edge.from + arrow + edge.to;
    if (!edge.attrs.empty()) {
      out += " [";
      bool first = true;
      for (const auto& [k, v] : edge.attrs) {
        if (!first) out += ", ";
        first = false;
        out += k + "=\"" + EscapeQuoted(v) + "\"";
      }
      out += "]";
    }
    out += ";\n";
  }
  out += "}\n";
  return out;
}

Graph ProgramToGraph(const mal::Program& program) {
  Graph graph(program.function_name());
  for (const mal::Instruction& ins : program.instructions()) {
    GraphNode& node = graph.AddNode(NodeName(ins.pc));
    node.attrs["label"] = program.InstructionToString(ins);
  }
  auto deps = program.BuildDependencies();
  for (size_t pc = 0; pc < deps.size(); ++pc) {
    for (int producer : deps[pc]) {
      graph.AddEdge(NodeName(producer), NodeName(static_cast<int>(pc)));
    }
  }
  return graph;
}

}  // namespace stetho::dot
