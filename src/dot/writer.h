#ifndef STETHO_DOT_WRITER_H_
#define STETHO_DOT_WRITER_H_

#include <string>

#include "dot/graph.h"
#include "mal/program.h"

namespace stetho::dot {

/// Options for rendering a MAL plan to DOT.
struct DotWriterOptions {
  /// Graph name emitted in the header.
  std::string graph_name = "user.main";
  /// Node shape attribute.
  std::string node_shape = "box";
  /// Truncate statement labels beyond this many characters (0 = no limit).
  size_t max_label_chars = 0;
};

/// Renders the dataflow DAG of a MAL program in the dot language. Node pc N
/// is named "nN" and carries the rendered statement as its label — exactly
/// the mapping the Stethoscope uses to join traces with the plan graph
/// (paper §3.3). The MonetDB server emits this file before execution begins.
std::string ProgramToDot(const mal::Program& program,
                         const DotWriterOptions& options = {});

/// Renders an arbitrary Graph back to dot (round-trip support).
std::string GraphToDot(const Graph& graph);

/// Builds the in-memory Graph directly from a program (the same structure
/// ParseDot(ProgramToDot(p)) yields, without the text round-trip).
Graph ProgramToGraph(const mal::Program& program);

}  // namespace stetho::dot

#endif  // STETHO_DOT_WRITER_H_
