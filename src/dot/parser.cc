#include "dot/parser.h"

#include <cctype>

#include "common/string_util.h"

namespace stetho::dot {
namespace {

/// Minimal tokenizer for the dot language subset.
class DotScanner {
 public:
  explicit DotScanner(const std::string& text) : text_(text) {}

  void SkipSpaceAndComments() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '#') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else if (c == '/' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '/') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else if (c == '/' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '*') {
        pos_ += 2;
        while (pos_ + 1 < text_.size() &&
               !(text_[pos_] == '*' && text_[pos_ + 1] == '/')) {
          ++pos_;
        }
        pos_ = pos_ + 2 <= text_.size() ? pos_ + 2 : text_.size();
      } else {
        return;
      }
    }
  }

  bool AtEnd() {
    SkipSpaceAndComments();
    return pos_ >= text_.size();
  }

  char Peek() {
    SkipSpaceAndComments();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  bool Consume(char c) {
    SkipSpaceAndComments();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  /// True when the next two characters form the given digraph edge op.
  bool ConsumeArrow(bool* directed) {
    SkipSpaceAndComments();
    if (pos_ + 1 < text_.size() && text_[pos_] == '-') {
      if (text_[pos_ + 1] == '>') {
        pos_ += 2;
        *directed = true;
        return true;
      }
      if (text_[pos_ + 1] == '-') {
        pos_ += 2;
        *directed = false;
        return true;
      }
    }
    return false;
  }

  /// Reads an identifier: bare word, numeral, or quoted string.
  Result<std::string> ReadId() {
    SkipSpaceAndComments();
    if (pos_ >= text_.size()) {
      return Status::ParseError("unexpected end of dot input");
    }
    char c = text_[pos_];
    if (c == '"') {
      ++pos_;
      std::string out;
      while (pos_ < text_.size() && text_[pos_] != '"') {
        if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) ++pos_;
        out.push_back(text_[pos_]);
        ++pos_;
      }
      if (pos_ >= text_.size()) {
        return Status::ParseError("unterminated quoted id in dot input");
      }
      ++pos_;
      return out;
    }
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.' ||
        c == '-') {
      size_t start = pos_;
      while (pos_ < text_.size()) {
        char d = text_[pos_];
        if (std::isalnum(static_cast<unsigned char>(d)) || d == '_' ||
            d == '.' || d == '-') {
          ++pos_;
        } else {
          break;
        }
      }
      return text_.substr(start, pos_ - start);
    }
    return Status::ParseError(
        StrFormat("unexpected character '%c' at offset %zu in dot input", c,
                  pos_));
  }

 private:
  const std::string& text_;
  size_t pos_ = 0;
};

/// Parses an optional [k=v, ...] attribute list.
Result<std::map<std::string, std::string>> ParseAttrList(DotScanner* scan) {
  std::map<std::string, std::string> attrs;
  if (!scan->Consume('[')) return attrs;
  if (scan->Consume(']')) return attrs;
  while (true) {
    STETHO_ASSIGN_OR_RETURN(std::string key, scan->ReadId());
    if (!scan->Consume('=')) {
      return Status::ParseError("expected '=' in attribute list");
    }
    STETHO_ASSIGN_OR_RETURN(std::string value, scan->ReadId());
    attrs[key] = std::move(value);
    if (scan->Consume(',') || scan->Consume(';')) continue;
    if (scan->Consume(']')) break;
    return Status::ParseError("expected ',' or ']' in attribute list");
  }
  return attrs;
}

}  // namespace

Result<Graph> ParseDot(const std::string& text) {
  DotScanner scan(text);
  Graph graph;

  STETHO_ASSIGN_OR_RETURN(std::string kind, scan.ReadId());
  if (EqualsIgnoreCase(kind, "strict")) {
    STETHO_ASSIGN_OR_RETURN(kind, scan.ReadId());
  }
  if (EqualsIgnoreCase(kind, "digraph")) {
    graph.set_directed(true);
  } else if (EqualsIgnoreCase(kind, "graph")) {
    graph.set_directed(false);
  } else {
    return Status::ParseError("dot input must start with (di)graph");
  }
  if (scan.Peek() != '{') {
    STETHO_ASSIGN_OR_RETURN(std::string name, scan.ReadId());
    graph.set_name(std::move(name));
  }
  if (!scan.Consume('{')) return Status::ParseError("expected '{'");

  while (!scan.Consume('}')) {
    if (scan.AtEnd()) return Status::ParseError("missing '}' in dot input");
    STETHO_ASSIGN_OR_RETURN(std::string id, scan.ReadId());

    // Graph-level attribute: ID = ID ;
    if (scan.Consume('=')) {
      STETHO_ASSIGN_OR_RETURN(std::string value, scan.ReadId());
      (void)value;  // graph attributes are not needed downstream
      scan.Consume(';');
      continue;
    }

    // Default attribute statements: node [...] / edge [...] / graph [...]
    if ((EqualsIgnoreCase(id, "node") || EqualsIgnoreCase(id, "edge") ||
         EqualsIgnoreCase(id, "graph")) &&
        scan.Peek() == '[') {
      STETHO_ASSIGN_OR_RETURN(auto attrs, ParseAttrList(&scan));
      (void)attrs;
      scan.Consume(';');
      continue;
    }

    bool directed_edge = false;
    if (scan.ConsumeArrow(&directed_edge)) {
      STETHO_ASSIGN_OR_RETURN(std::string to, scan.ReadId());
      GraphEdge& edge = graph.AddEdge(id, to);
      STETHO_ASSIGN_OR_RETURN(edge.attrs, ParseAttrList(&scan));
      scan.Consume(';');
      continue;
    }

    GraphNode& node = graph.AddNode(id);
    STETHO_ASSIGN_OR_RETURN(auto attrs, ParseAttrList(&scan));
    for (auto& [k, v] : attrs) node.attrs[k] = std::move(v);
    scan.Consume(';');
  }
  return graph;
}

}  // namespace stetho::dot
