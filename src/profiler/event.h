#ifndef STETHO_PROFILER_EVENT_H_
#define STETHO_PROFILER_EVENT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace stetho::profiler {

/// Execution state reported by a trace event. Every MAL instruction is
/// represented in the trace by two events: a "start" marking the beginning
/// of interpretation and a "done" marking its end (paper §3.3).
enum class EventState {
  kStart = 0,
  kDone = 1,
};

const char* EventStateName(EventState state);

/// One profiled MAL-instruction event — the unit streamed over UDP to the
/// textual Stethoscope and written to trace files. Field set mirrors the
/// paper's Fig. 3: event sequence number, timestamp, program counter, worker
/// thread, state, elapsed microseconds, resident memory, and the MAL
/// statement text.
struct TraceEvent {
  int64_t event = 0;       ///< global sequence number ("event" attribute).
                           ///< Delivered events are numbered contiguously
                           ///< per Profiler (filtered events consume no
                           ///< number), so a receiver-side hole means
                           ///< transport loss — the net::StreamHealth
                           ///< accounting and the trace-sequence-gap lint
                           ///< check both build on this.
  int64_t time_us = 0;     ///< server clock at emission, microseconds
  int pc = 0;              ///< program counter: index into the MAL plan
  int thread = 0;          ///< query-local admission slot in [0, dop). The
                           ///< contract: the start and the done event of one
                           ///< pc carry the SAME slot, even when work
                           ///< stealing runs them on different pool workers
                           ///< (the interpreter stamps both from the slot it
                           ///< acquired at dispatch), so per-thread analysis
                           ///< keeps its per-query meaning. Checked by
                           ///< trace-span-conformance.
  EventState state = EventState::kStart;
  int64_t usec = 0;        ///< instruction elapsed time (0 for start events)
  int64_t rss_bytes = 0;   ///< engine-wide live column memory at emission
  std::string stmt;        ///< rendered MAL statement

  bool operator==(const TraceEvent& other) const = default;
};

/// Renders the single-line trace format:
///   [ event, time_us, pc, thread, "state", usec, rss_bytes, "stmt" ]
std::string FormatTraceLine(const TraceEvent& event);

/// Parses a line produced by FormatTraceLine. Tolerates surrounding
/// whitespace; ParseError on malformed lines.
Result<TraceEvent> ParseTraceLine(std::string_view line);

}  // namespace stetho::profiler

#endif  // STETHO_PROFILER_EVENT_H_
