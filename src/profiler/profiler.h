#ifndef STETHO_PROFILER_PROFILER_H_
#define STETHO_PROFILER_PROFILER_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string_view>
#include <vector>

#include "common/clock.h"
#include "profiler/event.h"
#include "profiler/filter.h"
#include "profiler/sink.h"

namespace stetho::profiler {

/// The MAL profiler (paper §3): intercepts instruction start/done events in
/// the execution engine, applies the active filter, stamps a timestamp and a
/// global sequence number, and fans out to the registered sinks (ring
/// buffer, trace file, UDP stream).
///
/// Thread-safe: worker threads emit concurrently; filter swaps and sink
/// registration may happen while a query runs.
class Profiler {
 public:
  explicit Profiler(Clock* clock) : clock_(clock) {}

  /// Adds a sink. Sinks are shared so the caller can keep inspecting them.
  void AddSink(std::shared_ptr<EventSink> sink);
  void ClearSinks();
  size_t num_sinks() const;

  /// Replaces the active filter (set remotely by Stethoscope clients).
  void SetFilter(EventFilter filter);
  EventFilter GetFilter() const;

  /// Turns the profiler on/off without losing sinks (off = emit nothing).
  void SetEnabled(bool enabled) { enabled_.store(enabled, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Emits an instruction event. `event.event` and `event.time_us` are
  /// assigned here; all other fields come from the caller.
  void Emit(TraceEvent event);

  /// Convenience: emits a start event for (pc, thread, stmt). The statement
  /// text is taken by view — the interpreter renders each statement once per
  /// program and passes the interned string here; `TraceEvent.stmt` is only
  /// materialized for events that survive the filter.
  void EmitStart(int pc, int thread, int64_t rss_bytes, std::string_view stmt);
  /// Convenience: emits a done event with the measured duration.
  void EmitDone(int pc, int thread, int64_t usec, int64_t rss_bytes,
                std::string_view stmt);

  /// Total events emitted (post-filter).
  int64_t events_emitted() const { return emitted_.load(std::memory_order_relaxed); }
  /// Total events dropped by the filter.
  int64_t events_filtered() const { return filtered_.load(std::memory_order_relaxed); }

  Clock* clock() const { return clock_; }

 private:
  /// Immutable snapshot of the fan-out configuration. Writers (AddSink /
  /// SetFilter — rare, client-driven) build a fresh snapshot and swap the
  /// pointer under `mu_`; the per-event hot path only copies one shared_ptr
  /// under the lock instead of the whole sink vector and filter.
  struct Dispatch {
    std::vector<std::shared_ptr<EventSink>> sinks;
    EventFilter filter;
  };

  std::shared_ptr<const Dispatch> Snapshot() const;
  void EmitImpl(TraceEvent& event, std::string_view stmt);

  Clock* clock_;
  std::atomic<bool> enabled_{true};
  std::atomic<int64_t> next_event_{0};
  std::atomic<int64_t> emitted_{0};
  std::atomic<int64_t> filtered_{0};

  mutable std::mutex mu_;  // guards dispatch_ (pointer swap only)
  std::mutex stamp_mu_;    // seq number + timestamp advance together
  std::shared_ptr<const Dispatch> dispatch_ = std::make_shared<Dispatch>();
};

}  // namespace stetho::profiler

#endif  // STETHO_PROFILER_PROFILER_H_
