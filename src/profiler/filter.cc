#include "profiler/filter.h"

#include "common/string_util.h"

namespace stetho::profiler {
namespace {

/// Extracts "module." prefix from a rendered MAL statement. Statements look
/// like "X_3:bat[:oid] := sql.tid(...);" or "io.print(...);".
std::string_view StatementModule(std::string_view stmt) {
  size_t start = 0;
  size_t assign = stmt.find(":=");
  if (assign != std::string_view::npos) start = assign + 2;
  while (start < stmt.size() && stmt[start] == ' ') ++start;
  size_t dot = stmt.find('.', start);
  if (dot == std::string_view::npos) return {};
  return stmt.substr(start, dot - start);
}

}  // namespace

bool EventFilter::Matches(const TraceEvent& event,
                          std::string_view stmt) const {
  if (event.state == EventState::kStart && !pass_start_) return false;
  if (event.state == EventState::kDone && !pass_done_) return false;
  if (event.pc < pc_lo_ || event.pc > pc_hi_) return false;
  if (min_usec_ > 0 && event.state == EventState::kDone &&
      event.usec < min_usec_) {
    return false;
  }
  if (!modules_.empty()) {
    std::string_view module = StatementModule(stmt);
    bool hit = false;
    for (const std::string& m : modules_) {
      if (module == m) {
        hit = true;
        break;
      }
    }
    if (!hit) return false;
  }
  return true;
}

std::string EventFilter::Serialize() const {
  std::string out;
  out += StrFormat("start=%d;done=%d;", pass_start_ ? 1 : 0, pass_done_ ? 1 : 0);
  out += StrFormat("min_usec=%lld;", static_cast<long long>(min_usec_));
  out += StrFormat("pc_lo=%d;pc_hi=%d;", pc_lo_, pc_hi_);
  if (!modules_.empty()) {
    out += "modules=" + Join(modules_, ",") + ";";
  }
  return out;
}

Result<EventFilter> EventFilter::Deserialize(const std::string& text) {
  EventFilter filter;
  for (const std::string& piece : SplitAndTrim(text, ';')) {
    size_t eq = piece.find('=');
    if (eq == std::string::npos) {
      return Status::ParseError("filter piece missing '=': " + piece);
    }
    std::string key = piece.substr(0, eq);
    std::string val = piece.substr(eq + 1);
    if (key == "start") {
      STETHO_ASSIGN_OR_RETURN(int64_t v, ParseInt64(val));
      filter.pass_start_ = (v != 0);
    } else if (key == "done") {
      STETHO_ASSIGN_OR_RETURN(int64_t v, ParseInt64(val));
      filter.pass_done_ = (v != 0);
    } else if (key == "min_usec") {
      STETHO_ASSIGN_OR_RETURN(filter.min_usec_, ParseInt64(val));
    } else if (key == "pc_lo") {
      STETHO_ASSIGN_OR_RETURN(int64_t v, ParseInt64(val));
      filter.pc_lo_ = static_cast<int>(v);
    } else if (key == "pc_hi") {
      STETHO_ASSIGN_OR_RETURN(int64_t v, ParseInt64(val));
      filter.pc_hi_ = static_cast<int>(v);
    } else if (key == "modules") {
      filter.modules_ = SplitAndTrim(val, ',');
    } else {
      return Status::ParseError("unknown filter key '" + key + "'");
    }
  }
  return filter;
}

}  // namespace stetho::profiler
