#ifndef STETHO_PROFILER_FILTER_H_
#define STETHO_PROFILER_FILTER_H_

#include <string>
#include <string_view>
#include <vector>

#include "profiler/event.h"

namespace stetho::profiler {

/// Server-side filter options (paper §3: "The profiler accepts filter options
/// set through Stethoscope, which enables it to profile only a subset of
/// event types"). The default filter passes everything.
class EventFilter {
 public:
  EventFilter() = default;

  /// --- Builders (chainable) ---
  /// Pass only start or only done events.
  EventFilter& OnlyState(EventState state) {
    pass_start_ = (state == EventState::kStart);
    pass_done_ = (state == EventState::kDone);
    return *this;
  }
  /// Restrict to instructions of the given MAL modules (e.g. "algebra").
  EventFilter& AddModule(std::string module) {
    modules_.push_back(std::move(module));
    return *this;
  }
  /// Drop done events faster than this threshold (µs). Start events pass.
  EventFilter& MinUsec(int64_t usec) {
    min_usec_ = usec;
    return *this;
  }
  /// Restrict to a pc window [lo, hi].
  EventFilter& PcRange(int lo, int hi) {
    pc_lo_ = lo;
    pc_hi_ = hi;
    return *this;
  }

  /// Returns true when `event` passes all configured criteria.
  bool Matches(const TraceEvent& event) const {
    return Matches(event, event.stmt);
  }
  /// Hot-path variant: the statement text travels separately as a view so
  /// the profiler can filter before materializing `TraceEvent.stmt`.
  bool Matches(const TraceEvent& event, std::string_view stmt) const;

  /// Serializes to "key=value;..." so a client can ship filters to a server.
  std::string Serialize() const;
  static Result<EventFilter> Deserialize(const std::string& text);

 private:
  bool pass_start_ = true;
  bool pass_done_ = true;
  std::vector<std::string> modules_;  // empty = all modules
  int64_t min_usec_ = 0;
  int pc_lo_ = 0;
  int pc_hi_ = 1 << 30;
};

}  // namespace stetho::profiler

#endif  // STETHO_PROFILER_FILTER_H_
