#include "profiler/sink.h"

#include "obs/metrics.h"

namespace stetho::profiler {
namespace {

obs::Counter* RingDroppedCounter() {
  static obs::Counter* counter = obs::Registry::Default()->GetOrCreateCounter(
      "stetho_profiler_ring_dropped_total",
      "Profiler events evicted from ring-buffer sinks by overwrite");
  return counter;
}

}  // namespace

void RingBufferSink::Consume(const TraceEvent& event) {
  std::lock_guard<std::mutex> lock(mu_);
  buffer_.push_back(event);
  ++total_;
  while (buffer_.size() > capacity_) {
    buffer_.pop_front();
    ++dropped_;
    RingDroppedCounter()->Increment();
  }
}

std::vector<TraceEvent> RingBufferSink::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<TraceEvent>(buffer_.begin(), buffer_.end());
}

size_t RingBufferSink::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return buffer_.size();
}

int64_t RingBufferSink::total_consumed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

int64_t RingBufferSink::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

void RingBufferSink::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  buffer_.clear();
}

FileSink::~FileSink() {
  if (file_ != nullptr) std::fclose(file_);
}

Result<std::unique_ptr<FileSink>> FileSink::Open(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IoError("cannot open trace file '" + path + "' for writing");
  }
  return std::unique_ptr<FileSink>(new FileSink(path, f));
}

void FileSink::Consume(const TraceEvent& event) {
  std::string line = FormatTraceLine(event);
  std::lock_guard<std::mutex> lock(mu_);
  std::fputs(line.c_str(), file_);
  std::fputc('\n', file_);
}

Status FileSink::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  if (std::fflush(file_) != 0) {
    return Status::IoError("flush failed for '" + path_ + "'");
  }
  return Status::OK();
}

}  // namespace stetho::profiler
