#include "profiler/sink.h"

#include "obs/metrics.h"

namespace stetho::profiler {
namespace {

obs::Counter* RingDroppedCounter() {
  static obs::Counter* counter = obs::Registry::Default()->GetOrCreateCounter(
      "stetho_profiler_ring_dropped_total",
      "Profiler events evicted from ring-buffer sinks by overwrite");
  return counter;
}

}  // namespace

void RingBufferSink::Consume(const TraceEvent& event) {
  std::lock_guard<std::mutex> lock(mu_);
  buffer_.push_back(event);
  ++total_;
  while (buffer_.size() > capacity_) {
    buffer_.pop_front();
    ++dropped_;
    RingDroppedCounter()->Increment();
  }
}

void RingBufferSink::ConsumeBatch(const TraceEvent* events, size_t n) {
  if (n == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  // A batch larger than the ring would push events only to evict them
  // again; keep the last `capacity_` and count the rest straight as drops.
  size_t skip = n > capacity_ ? n - capacity_ : 0;
  for (size_t i = skip; i < n; ++i) buffer_.push_back(events[i]);
  total_ += static_cast<int64_t>(n);
  int64_t evicted = static_cast<int64_t>(skip);
  while (buffer_.size() > capacity_) {
    buffer_.pop_front();
    ++evicted;
  }
  if (evicted > 0) {
    dropped_ += evicted;
    RingDroppedCounter()->Increment(evicted);
  }
}

std::vector<TraceEvent> RingBufferSink::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<TraceEvent>(buffer_.begin(), buffer_.end());
}

size_t RingBufferSink::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return buffer_.size();
}

int64_t RingBufferSink::total_consumed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

int64_t RingBufferSink::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

void RingBufferSink::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  buffer_.clear();
}

FileSink::~FileSink() {
  if (file_ != nullptr) std::fclose(file_);
}

Result<std::unique_ptr<FileSink>> FileSink::Open(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IoError("cannot open trace file '" + path + "' for writing");
  }
  return std::unique_ptr<FileSink>(new FileSink(path, f));
}

void FileSink::Consume(const TraceEvent& event) {
  std::string line = FormatTraceLine(event);
  std::lock_guard<std::mutex> lock(mu_);
  std::fputs(line.c_str(), file_);
  std::fputc('\n', file_);
}

void FileSink::ConsumeBatch(const TraceEvent* events, size_t n) {
  if (n == 0) return;
  std::string lines;
  for (size_t i = 0; i < n; ++i) {
    lines += FormatTraceLine(events[i]);
    lines += '\n';
  }
  std::lock_guard<std::mutex> lock(mu_);
  std::fwrite(lines.data(), 1, lines.size(), file_);
}

Status FileSink::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  if (std::fflush(file_) != 0) {
    return Status::IoError("flush failed for '" + path_ + "'");
  }
  return Status::OK();
}

}  // namespace stetho::profiler
