#include "profiler/profiler.h"

namespace stetho::profiler {

void Profiler::AddSink(std::shared_ptr<EventSink> sink) {
  std::lock_guard<std::mutex> lock(mu_);
  sinks_.push_back(std::move(sink));
}

void Profiler::ClearSinks() {
  std::lock_guard<std::mutex> lock(mu_);
  sinks_.clear();
}

size_t Profiler::num_sinks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sinks_.size();
}

void Profiler::SetFilter(EventFilter filter) {
  std::lock_guard<std::mutex> lock(mu_);
  filter_ = std::move(filter);
}

EventFilter Profiler::GetFilter() const {
  std::lock_guard<std::mutex> lock(mu_);
  return filter_;
}

void Profiler::Emit(TraceEvent event) {
  if (!enabled()) return;
  event.event = next_event_.fetch_add(1, std::memory_order_relaxed);
  event.time_us = clock_->NowMicros();

  // Copy the sink list under the lock, dispatch outside it so slow sinks
  // (file IO, UDP) never serialize worker threads against each other more
  // than necessary.
  std::vector<std::shared_ptr<EventSink>> sinks;
  EventFilter filter;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sinks = sinks_;
    filter = filter_;
  }
  if (!filter.Matches(event)) {
    filtered_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  emitted_.fetch_add(1, std::memory_order_relaxed);
  for (const auto& sink : sinks) sink->Consume(event);
}

void Profiler::EmitStart(int pc, int thread, int64_t rss_bytes,
                         std::string stmt) {
  TraceEvent e;
  e.pc = pc;
  e.thread = thread;
  e.state = EventState::kStart;
  e.usec = 0;
  e.rss_bytes = rss_bytes;
  e.stmt = std::move(stmt);
  Emit(std::move(e));
}

void Profiler::EmitDone(int pc, int thread, int64_t usec, int64_t rss_bytes,
                        std::string stmt) {
  TraceEvent e;
  e.pc = pc;
  e.thread = thread;
  e.state = EventState::kDone;
  e.usec = usec;
  e.rss_bytes = rss_bytes;
  e.stmt = std::move(stmt);
  Emit(std::move(e));
}

}  // namespace stetho::profiler
