#include "profiler/profiler.h"

#include "obs/metrics.h"

namespace stetho::profiler {
namespace {

// Process-wide mirrors of the per-instance emitted/filtered stats, so the
// metrics exposition shows profiler throughput without a Profiler* in hand.
obs::Counter* EmittedCounter() {
  static obs::Counter* counter = obs::Registry::Default()->GetOrCreateCounter(
      "stetho_profiler_events_emitted_total",
      "Profiler events delivered to sinks (post-filter)");
  return counter;
}

obs::Counter* FilteredCounter() {
  static obs::Counter* counter = obs::Registry::Default()->GetOrCreateCounter(
      "stetho_profiler_events_filtered_total",
      "Profiler events suppressed by the active filter");
  return counter;
}

}  // namespace

std::shared_ptr<const Profiler::Dispatch> Profiler::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dispatch_;
}

void Profiler::AddSink(std::shared_ptr<EventSink> sink) {
  std::lock_guard<std::mutex> lock(mu_);
  auto next = std::make_shared<Dispatch>(*dispatch_);
  next->sinks.push_back(std::move(sink));
  dispatch_ = std::move(next);
}

void Profiler::ClearSinks() {
  std::lock_guard<std::mutex> lock(mu_);
  auto next = std::make_shared<Dispatch>(*dispatch_);
  next->sinks.clear();
  dispatch_ = std::move(next);
}

size_t Profiler::num_sinks() const { return Snapshot()->sinks.size(); }

void Profiler::SetFilter(EventFilter filter) {
  std::lock_guard<std::mutex> lock(mu_);
  auto next = std::make_shared<Dispatch>(*dispatch_);
  next->filter = std::move(filter);
  dispatch_ = std::move(next);
}

EventFilter Profiler::GetFilter() const { return Snapshot()->filter; }

/// Hot path shared by Emit/EmitStart/EmitDone. `event.stmt` is empty on
/// entry; `stmt` carries the statement text by view and is copied into the
/// event only once it is known to be delivered.
void Profiler::EmitImpl(TraceEvent& event, std::string_view stmt) {
  // Grab the current dispatch snapshot (one shared_ptr copy under the
  // lock); fan-out happens outside it so slow sinks (file IO, UDP) never
  // serialize worker threads against each other more than necessary.
  std::shared_ptr<const Dispatch> dispatch = Snapshot();
  // The filter runs BEFORE stamping: delivered events carry a contiguous
  // sequence (any hole a receiver observes is transport loss — the
  // net::StreamHealth contract), so suppressed events must not consume
  // sequence numbers. The filter reads none of the stamped fields.
  if (!dispatch->filter.Matches(event, stmt)) {
    filtered_.fetch_add(1, std::memory_order_relaxed);
    FilteredCounter()->Increment();
    return;
  }
  {
    // Stamp sequence number and timestamp together: the trace contract
    // (analysis' trace-conformance check) demands timestamps be monotone in
    // event order, which concurrent workers would otherwise violate when one
    // is preempted between the two reads.
    std::lock_guard<std::mutex> lock(stamp_mu_);
    event.event = next_event_.fetch_add(1, std::memory_order_relaxed);
    event.time_us = clock_->NowMicros();
  }
  emitted_.fetch_add(1, std::memory_order_relaxed);
  EmittedCounter()->Increment();
  event.stmt.assign(stmt.data(), stmt.size());
  for (const auto& sink : dispatch->sinks) sink->Consume(event);
}

void Profiler::Emit(TraceEvent event) {
  if (!enabled()) return;
  std::string stmt = std::move(event.stmt);
  event.stmt.clear();
  EmitImpl(event, stmt);
}

void Profiler::EmitStart(int pc, int thread, int64_t rss_bytes,
                         std::string_view stmt) {
  if (!enabled()) return;
  TraceEvent e;
  e.pc = pc;
  e.thread = thread;
  e.state = EventState::kStart;
  e.usec = 0;
  e.rss_bytes = rss_bytes;
  EmitImpl(e, stmt);
}

void Profiler::EmitDone(int pc, int thread, int64_t usec, int64_t rss_bytes,
                        std::string_view stmt) {
  if (!enabled()) return;
  TraceEvent e;
  e.pc = pc;
  e.thread = thread;
  e.state = EventState::kDone;
  e.usec = usec;
  e.rss_bytes = rss_bytes;
  EmitImpl(e, stmt);
}

}  // namespace stetho::profiler
