#ifndef STETHO_PROFILER_SINK_H_
#define STETHO_PROFILER_SINK_H_

#include <cstdio>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "profiler/event.h"

namespace stetho::profiler {

/// Destination for profiled events. Implementations must be thread-safe:
/// the engine emits from multiple worker threads concurrently.
class EventSink {
 public:
  virtual ~EventSink() = default;
  virtual void Consume(const TraceEvent& event) = 0;
  /// Consumes `n` events in order — semantically identical to calling
  /// Consume per event. Overrides amortize per-event costs (one lock
  /// acquisition per batch); the base implementation just loops.
  virtual void ConsumeBatch(const TraceEvent* events, size_t n) {
    for (size_t i = 0; i < n; ++i) Consume(events[i]);
  }
  /// Flushes buffered output (file/stream sinks).
  virtual Status Flush() { return Status::OK(); }
  /// Events this sink consumed but could not retain or deliver (ring
  /// overwrites, failed/short datagrams). 0 for sinks that never drop.
  /// Anything nonzero means the trace a client sees is incomplete.
  virtual int64_t dropped() const { return 0; }
};

/// Keeps the most recent `capacity` events in memory. This backs both unit
/// tests and the online monitor's sampling buffer (paper §4.2: "As the trace
/// file grows in size, its content is sampled in a buffer").
class RingBufferSink : public EventSink {
 public:
  explicit RingBufferSink(size_t capacity) : capacity_(capacity) {}

  void Consume(const TraceEvent& event) override;
  /// One lock acquisition for the whole batch.
  void ConsumeBatch(const TraceEvent* events, size_t n) override;

  /// Snapshot of buffered events, oldest first.
  std::vector<TraceEvent> Snapshot() const;
  size_t size() const;
  /// Total number of events ever consumed (including evicted ones).
  int64_t total_consumed() const;
  /// Events evicted by ring overwrite — silently lost to any reader that
  /// snapshots later. Also counted process-wide as
  /// `stetho_profiler_ring_dropped_total`.
  int64_t dropped() const override;
  void Clear();

 private:
  mutable std::mutex mu_;
  size_t capacity_;
  std::deque<TraceEvent> buffer_;
  int64_t total_ = 0;
  int64_t dropped_ = 0;
};

/// Appends FormatTraceLine output to a file — the paper's offline "dumped in
/// a file" path.
class FileSink : public EventSink {
 public:
  ~FileSink() override;

  /// Opens (truncates) `path` for writing.
  static Result<std::unique_ptr<FileSink>> Open(const std::string& path);

  void Consume(const TraceEvent& event) override;
  /// Formats all lines outside the lock, then writes them in one locked
  /// operation.
  void ConsumeBatch(const TraceEvent* events, size_t n) override;
  Status Flush() override;
  const std::string& path() const { return path_; }

 private:
  FileSink(std::string path, std::FILE* file)
      : path_(std::move(path)), file_(file) {}

  std::mutex mu_;
  std::string path_;
  std::FILE* file_;
};

/// Invokes a callback per event. The callback must be thread-safe.
class CallbackSink : public EventSink {
 public:
  explicit CallbackSink(std::function<void(const TraceEvent&)> fn)
      : fn_(std::move(fn)) {}

  void Consume(const TraceEvent& event) override { fn_(event); }

 private:
  std::function<void(const TraceEvent&)> fn_;
};

}  // namespace stetho::profiler

#endif  // STETHO_PROFILER_SINK_H_
