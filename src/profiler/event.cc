#include "profiler/event.h"

#include <vector>

#include "common/string_util.h"

namespace stetho::profiler {

const char* EventStateName(EventState state) {
  switch (state) {
    case EventState::kStart:
      return "start";
    case EventState::kDone:
      return "done";
  }
  return "?";
}

std::string FormatTraceLine(const TraceEvent& e) {
  return StrFormat(
      "[ %lld,\t%lld,\t%d,\t%d,\t\"%s\",\t%lld,\t%lld,\t\"%s\" ]",
      static_cast<long long>(e.event), static_cast<long long>(e.time_us),
      e.pc, e.thread, EventStateName(e.state), static_cast<long long>(e.usec),
      static_cast<long long>(e.rss_bytes), EscapeQuoted(e.stmt).c_str());
}

namespace {

/// Splits the inside of the brackets on commas that are not inside quotes.
Result<std::vector<std::string>> SplitFields(std::string_view body) {
  std::vector<std::string> fields;
  std::string cur;
  bool in_quote = false;
  for (size_t i = 0; i < body.size(); ++i) {
    char c = body[i];
    if (in_quote) {
      if (c == '\\' && i + 1 < body.size()) {
        cur.push_back(c);
        cur.push_back(body[++i]);
        continue;
      }
      if (c == '"') in_quote = false;
      cur.push_back(c);
      continue;
    }
    if (c == '"') {
      in_quote = true;
      cur.push_back(c);
      continue;
    }
    if (c == ',') {
      fields.push_back(std::move(cur));
      cur.clear();
      continue;
    }
    cur.push_back(c);
  }
  if (in_quote) return Status::ParseError("unterminated quote in trace line");
  fields.push_back(std::move(cur));
  return fields;
}

/// Strips surrounding quotes (after trimming) and unescapes.
Result<std::string> Unquote(std::string_view field) {
  std::string_view t = TrimView(field);
  if (t.size() < 2 || t.front() != '"' || t.back() != '"') {
    return Status::ParseError("expected quoted field: " + std::string(field));
  }
  return UnescapeQuoted(t.substr(1, t.size() - 2));
}

}  // namespace

Result<TraceEvent> ParseTraceLine(std::string_view line) {
  std::string_view t = TrimView(line);
  if (t.size() < 2 || t.front() != '[' || t.back() != ']') {
    return Status::ParseError("trace line must be bracketed: " +
                              std::string(line.substr(0, 60)));
  }
  STETHO_ASSIGN_OR_RETURN(std::vector<std::string> fields,
                          SplitFields(t.substr(1, t.size() - 2)));
  if (fields.size() != 8) {
    return Status::ParseError(
        StrFormat("trace line has %zu fields, expected 8", fields.size()));
  }
  TraceEvent e;
  STETHO_ASSIGN_OR_RETURN(e.event, ParseInt64(fields[0]));
  STETHO_ASSIGN_OR_RETURN(e.time_us, ParseInt64(fields[1]));
  STETHO_ASSIGN_OR_RETURN(int64_t pc, ParseInt64(fields[2]));
  e.pc = static_cast<int>(pc);
  STETHO_ASSIGN_OR_RETURN(int64_t thread, ParseInt64(fields[3]));
  e.thread = static_cast<int>(thread);
  STETHO_ASSIGN_OR_RETURN(std::string state, Unquote(fields[4]));
  if (state == "start") {
    e.state = EventState::kStart;
  } else if (state == "done") {
    e.state = EventState::kDone;
  } else {
    return Status::ParseError("unknown event state '" + state + "'");
  }
  STETHO_ASSIGN_OR_RETURN(e.usec, ParseInt64(fields[5]));
  STETHO_ASSIGN_OR_RETURN(e.rss_bytes, ParseInt64(fields[6]));
  STETHO_ASSIGN_OR_RETURN(e.stmt, Unquote(fields[7]));
  return e;
}

}  // namespace stetho::profiler
