#include "layout/sugiyama.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <numeric>
#include <utility>

#include "engine/worker_pool.h"
#include "obs/span.h"

namespace stetho::layout {
namespace {

/// Assigns each node the longest path length from any root.
Result<std::vector<int>> AssignLayers(const dot::Graph& graph) {
  STETHO_ASSIGN_OR_RETURN(std::vector<int> order, graph.TopologicalOrder());
  auto in = graph.InAdjacency();
  std::vector<int> layer(graph.num_nodes(), 0);
  for (int n : order) {
    int best = 0;
    for (int p : in[static_cast<size_t>(n)]) {
      best = std::max(best, layer[static_cast<size_t>(p)] + 1);
    }
    layer[static_cast<size_t>(n)] = best;
  }
  return layer;
}

/// Fenwick (binary indexed) tree over positions 0..n-1 counting inserted
/// elements; the crossing counters use it to count, for each span in
/// (from, to)-sorted order, how many earlier spans end strictly to its
/// right — an inversion count in O(log n) per span.
class AccumulationTree {
 public:
  explicit AccumulationTree(size_t n) : tree_(n + 1, 0) {}

  void Add(int pos) {
    for (int i = pos + 1; i < static_cast<int>(tree_.size()); i += i & -i) {
      ++tree_[static_cast<size_t>(i)];
    }
  }

  int64_t CountLessEqual(int pos) const {
    int64_t sum = 0;
    for (int i = pos + 1; i > 0; i -= i & -i) {
      sum += tree_[static_cast<size_t>(i)];
    }
    return sum;
  }

 private:
  std::vector<int32_t> tree_;
};

/// Runs fn(0..n-1) with helpers from the pool; the calling thread
/// participates, so progress never depends on a free worker. Work items are
/// claimed from a shared atomic cursor; fn must only write state owned by
/// item i, which keeps the result identical to the sequential loop.
void ParallelFor(engine::WorkerPool* pool, int n,
                 const std::function<void(int)>& fn) {
  if (pool == nullptr || n <= 1) {
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<int> next{0};
  std::atomic<int> active{0};
  std::mutex mu;
  std::condition_variable cv;
  int helpers = std::min(n - 1, 3);
  pool->EnsureWorkers(helpers);
  active.store(helpers, std::memory_order_relaxed);
  for (int h = 0; h < helpers; ++h) {
    pool->Submit([&next, &active, &mu, &cv, &fn, n] {
      int i;
      while ((i = next.fetch_add(1, std::memory_order_relaxed)) < n) fn(i);
      if (active.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(mu);
        cv.notify_one();
      }
    });
  }
  int i;
  while ((i = next.fetch_add(1, std::memory_order_relaxed)) < n) fn(i);
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&active] {
    return active.load(std::memory_order_acquire) == 0;
  });
}

/// Shared state for the ordering phase. `position[v]` is v's index inside
/// its layer and is kept in sync with `layers` after every mutation.
struct OrderingContext {
  const std::vector<std::vector<int>>& out_adj;
  const std::vector<std::vector<int>>& in_adj;
  const std::vector<int>& layer_of;
  std::vector<std::vector<int>>& layers;
  std::vector<int>& position;
};

/// Crossings between layer `li` and `li+1` for the current ordering.
/// Spans are emitted in from-position order, sorted by (from, to), and
/// inversions counted with the accumulation tree; ties in either endpoint
/// are non-crossings and fall out of the strict count naturally.
int64_t PairCrossings(const OrderingContext& ctx, int li) {
  const auto& lay = ctx.layers[static_cast<size_t>(li)];
  std::vector<std::pair<int, int>> spans;
  for (int u : lay) {
    for (int v : ctx.out_adj[static_cast<size_t>(u)]) {
      if (ctx.layer_of[static_cast<size_t>(v)] == li + 1) {
        spans.emplace_back(ctx.position[static_cast<size_t>(u)],
                           ctx.position[static_cast<size_t>(v)]);
      }
    }
  }
  if (spans.size() < 2) return 0;
  std::sort(spans.begin(), spans.end());
  AccumulationTree tree(ctx.layers[static_cast<size_t>(li) + 1].size());
  int64_t crossings = 0;
  int64_t inserted = 0;
  for (const auto& [from, to] : spans) {
    crossings += inserted - tree.CountLessEqual(to);
    tree.Add(to);
    ++inserted;
  }
  return crossings;
}

/// Total crossings of the current ordering. Layer pairs are independent
/// reads, so with a pool they are counted concurrently and summed in a
/// fixed order.
int64_t TotalCrossings(const OrderingContext& ctx, engine::WorkerPool* pool) {
  int pairs = static_cast<int>(ctx.layers.size()) - 1;
  if (pairs <= 0) return 0;
  std::vector<int64_t> per_pair(static_cast<size_t>(pairs), 0);
  ParallelFor(pool, pairs, [&ctx, &per_pair](int li) {
    per_pair[static_cast<size_t>(li)] = PairCrossings(ctx, li);
  });
  return std::accumulate(per_pair.begin(), per_pair.end(), int64_t{0});
}

/// GKNV weighted median of sorted neighbor positions; `fallback` keeps
/// neighbor-less nodes where they are.
double MedianValue(std::vector<int>& positions, double fallback) {
  if (positions.empty()) return fallback;
  std::sort(positions.begin(), positions.end());
  size_t m = positions.size() / 2;
  if (positions.size() % 2 == 1) return positions[m];
  if (positions.size() == 2) return (positions[0] + positions[1]) / 2.0;
  double left = positions[m - 1] - positions[0];
  double right = positions[positions.size() - 1] - positions[m];
  if (left + right == 0) return (positions[m - 1] + positions[m]) / 2.0;
  return (positions[m - 1] * right + positions[m] * left) / (left + right);
}

double MeanValue(const std::vector<int>& positions, double fallback) {
  if (positions.empty()) return fallback;
  double sum = 0;
  for (int p : positions) sum += p;
  return sum / static_cast<double>(positions.size());
}

/// Reorders one layer by the median/mean of neighbor positions. Keys are
/// precomputed per node — the seed recomputed the barycenter inside the
/// sort comparator, turning every sweep into O(k log k · deg) key work.
void OrderLayer(OrderingContext& ctx, int li, bool down, bool median,
                std::vector<double>& key, std::vector<int>& scratch) {
  auto& lay = ctx.layers[static_cast<size_t>(li)];
  for (int v : lay) {
    const auto& neighbors = down ? ctx.in_adj[static_cast<size_t>(v)]
                                 : ctx.out_adj[static_cast<size_t>(v)];
    scratch.clear();
    for (int n : neighbors) {
      scratch.push_back(ctx.position[static_cast<size_t>(n)]);
    }
    double fallback = ctx.position[static_cast<size_t>(v)];
    key[static_cast<size_t>(v)] =
        median ? MedianValue(scratch, fallback) : MeanValue(scratch, fallback);
  }
  std::stable_sort(lay.begin(), lay.end(), [&key](int a, int b) {
    return key[static_cast<size_t>(a)] < key[static_cast<size_t>(b)];
  });
  for (size_t i = 0; i < lay.size(); ++i) {
    ctx.position[static_cast<size_t>(lay[i])] = static_cast<int>(i);
  }
}

/// One adjacent-transpose pass over layer `li`: swap neighboring nodes
/// whenever that strictly reduces crossings against the two adjacent
/// layers. Reads only the (frozen) positions of adjacent layers and writes
/// only its own layer, so even and odd layers can run in parallel phases.
bool TransposeLayer(OrderingContext& ctx, int li) {
  auto& lay = ctx.layers[static_cast<size_t>(li)];
  bool improved = false;
  for (size_t i = 0; i + 1 < lay.size(); ++i) {
    int u = lay[i];
    int v = lay[i + 1];
    int64_t keep = 0;
    int64_t swapped = 0;
    auto tally = [&ctx, &keep, &swapped](const std::vector<int>& nu,
                                         const std::vector<int>& nv,
                                         int adjacent_layer) {
      for (int a : nu) {
        if (ctx.layer_of[static_cast<size_t>(a)] != adjacent_layer) continue;
        int pa = ctx.position[static_cast<size_t>(a)];
        for (int b : nv) {
          if (ctx.layer_of[static_cast<size_t>(b)] != adjacent_layer) continue;
          int pb = ctx.position[static_cast<size_t>(b)];
          if (pa > pb) {
            ++keep;
          } else if (pb > pa) {
            ++swapped;
          }
        }
      }
    };
    tally(ctx.in_adj[static_cast<size_t>(u)], ctx.in_adj[static_cast<size_t>(v)],
          li - 1);
    tally(ctx.out_adj[static_cast<size_t>(u)],
          ctx.out_adj[static_cast<size_t>(v)], li + 1);
    if (swapped < keep) {
      std::swap(lay[i], lay[i + 1]);
      ctx.position[static_cast<size_t>(lay[i])] = static_cast<int>(i);
      ctx.position[static_cast<size_t>(lay[i + 1])] = static_cast<int>(i) + 1;
      improved = true;
    }
  }
  return improved;
}

}  // namespace

Result<GraphLayout> LayoutGraph(const dot::Graph& graph,
                                const LayoutOptions& options) {
  obs::Span span(obs::Tracer::Default(), "layout", "phase");
  GraphLayout layout;
  size_t n = graph.num_nodes();
  layout.nodes.resize(n);
  layout.edges.resize(graph.num_edges());
  if (n == 0) return layout;

  STETHO_ASSIGN_OR_RETURN(std::vector<int> layer, AssignLayers(graph));
  int num_layers = 1 + *std::max_element(layer.begin(), layer.end());

  // Group nodes per layer, initial order = insertion order.
  std::vector<std::vector<int>> layers(static_cast<size_t>(num_layers));
  for (size_t i = 0; i < n; ++i) {
    layers[static_cast<size_t>(layer[i])].push_back(static_cast<int>(i));
  }

  auto out_adj = graph.OutAdjacency();
  auto in_adj = graph.InAdjacency();

  std::vector<int> position(n, 0);
  auto refresh_positions = [&layers, &position] {
    for (const auto& lay : layers) {
      for (size_t i = 0; i < lay.size(); ++i) {
        position[static_cast<size_t>(lay[i])] = static_cast<int>(i);
      }
    }
  };
  refresh_positions();
  OrderingContext ctx{out_adj, in_adj, layer, layers, position};

  engine::WorkerPool* pool = nullptr;
  if (static_cast<int>(n) >= options.parallel_min_nodes) {
    pool = options.pool != nullptr ? options.pool
                                   : engine::WorkerPool::Default();
  }

  // Crossing reduction: alternate downward (order by parents) and upward
  // (order by children) sweeps, each followed by adjacent-transpose
  // refinement. The best ordering seen — including the initial one — is
  // kept, and the loop exits as soon as a sweep stops improving, so
  // `barycenter_sweeps` is a ceiling rather than a fixed cost.
  int64_t crossings = TotalCrossings(ctx, pool);
  if (options.barycenter_sweeps > 0 && num_layers > 1 && crossings > 0) {
    int64_t best = crossings;
    std::vector<std::vector<int>> best_layers = layers;
    std::vector<double> key(n, 0);
    std::vector<int> scratch;
    std::vector<int> parity_layers[2];
    for (int li = 0; li < num_layers; ++li) {
      parity_layers[li % 2].push_back(li);
    }
    for (int sweep = 0; sweep < options.barycenter_sweeps && best > 0;
         ++sweep) {
      bool down = (sweep % 2 == 0);
      for (int li = down ? 1 : num_layers - 2;
           down ? li < num_layers : li >= 0; down ? ++li : --li) {
        OrderLayer(ctx, li, down, options.median, key, scratch);
      }
      for (int pass = 0; pass < options.transpose_passes; ++pass) {
        std::atomic<bool> changed{false};
        for (const auto& phase : parity_layers) {
          ParallelFor(pool, static_cast<int>(phase.size()),
                      [&ctx, &phase, &changed](int i) {
                        if (TransposeLayer(ctx, phase[static_cast<size_t>(i)])) {
                          changed.store(true, std::memory_order_relaxed);
                        }
                      });
        }
        if (!changed.load(std::memory_order_relaxed)) break;
      }
      int64_t cur = TotalCrossings(ctx, pool);
      if (cur < best) {
        best = cur;
        best_layers = layers;
      } else {
        break;  // converged: this sweep did not improve on the best ordering
      }
    }
    layers = std::move(best_layers);
    refresh_positions();
    crossings = best;
  }

  // Node sizes from labels.
  for (size_t i = 0; i < n; ++i) {
    NodeLayout& nl = layout.nodes[i];
    nl.node = static_cast<int>(i);
    nl.layer = layer[i];
    double w = options.min_node_width +
               options.char_width * static_cast<double>(graph.node(i).label().size());
    nl.width = std::min(w, options.max_node_width);
    nl.height = options.node_height;
  }

  // Coordinate assignment: lay out each layer left-to-right, then center
  // every layer horizontally against the widest one.
  std::vector<double> layer_width(static_cast<size_t>(num_layers), 0);
  for (int li = 0; li < num_layers; ++li) {
    const auto& lay = layers[static_cast<size_t>(li)];
    double w = 0;
    for (size_t i = 0; i < lay.size(); ++i) {
      if (i > 0) w += options.node_gap;
      w += layout.nodes[static_cast<size_t>(lay[i])].width;
    }
    layer_width[static_cast<size_t>(li)] = w;
  }
  double max_width = *std::max_element(layer_width.begin(), layer_width.end());

  for (int li = 0; li < num_layers; ++li) {
    const auto& lay = layers[static_cast<size_t>(li)];
    double x = options.margin +
               (max_width - layer_width[static_cast<size_t>(li)]) / 2.0;
    double y = options.margin + options.node_height / 2.0 +
               static_cast<double>(li) * (options.node_height + options.layer_gap);
    for (int node : lay) {
      NodeLayout& nl = layout.nodes[static_cast<size_t>(node)];
      nl.x = x + nl.width / 2.0;
      nl.y = y;
      x += nl.width + options.node_gap;
    }
  }

  layout.width = max_width + 2 * options.margin;
  layout.height = options.margin * 2 + options.node_height +
                  static_cast<double>(num_layers - 1) *
                      (options.node_height + options.layer_gap);

  // Edge routing: straight polyline bottom-port -> top-port.
  for (size_t e = 0; e < graph.num_edges(); ++e) {
    const dot::GraphEdge& edge = graph.edges()[e];
    int from = graph.FindNode(edge.from);
    int to = graph.FindNode(edge.to);
    EdgeLayout& el = layout.edges[e];
    el.edge = static_cast<int>(e);
    if (from < 0 || to < 0) continue;
    const NodeLayout& a = layout.nodes[static_cast<size_t>(from)];
    const NodeLayout& b = layout.nodes[static_cast<size_t>(to)];
    el.points.push_back({a.x, a.y + a.height / 2.0});
    el.points.push_back({b.x, b.y - b.height / 2.0});
  }

  // Within a layer x grows with position (widths are positive), so the
  // ordering-based count equals the coordinate-based CountCrossings.
  layout.crossings = crossings;
  return layout;
}

int64_t CountCrossings(const dot::Graph& graph, const GraphLayout& layout) {
  // Same-layer-pair spans sorted by (x_from, x_to); an accumulation tree
  // counts, per span, the earlier spans ending strictly to its right —
  // exactly the strict interleavings the naive pairwise scan counts, in
  // O(E log E) instead of O(E^2).
  struct Span {
    int layer;
    double x_from;
    double x_to;
  };
  std::vector<Span> spans;
  spans.reserve(graph.num_edges());
  for (const dot::GraphEdge& edge : graph.edges()) {
    int from = graph.FindNode(edge.from);
    int to = graph.FindNode(edge.to);
    if (from < 0 || to < 0) continue;
    const NodeLayout& a = layout.nodes[static_cast<size_t>(from)];
    const NodeLayout& b = layout.nodes[static_cast<size_t>(to)];
    if (b.layer != a.layer + 1) continue;  // long edges approximated away
    spans.push_back({a.layer, a.x, b.x});
  }
  std::sort(spans.begin(), spans.end(), [](const Span& a, const Span& b) {
    if (a.layer != b.layer) return a.layer < b.layer;
    if (a.x_from != b.x_from) return a.x_from < b.x_from;
    return a.x_to < b.x_to;
  });
  int64_t crossings = 0;
  std::vector<double> targets;
  size_t i = 0;
  while (i < spans.size()) {
    size_t j = i;
    while (j < spans.size() && spans[j].layer == spans[i].layer) ++j;
    targets.clear();
    for (size_t k = i; k < j; ++k) targets.push_back(spans[k].x_to);
    std::sort(targets.begin(), targets.end());
    targets.erase(std::unique(targets.begin(), targets.end()), targets.end());
    AccumulationTree tree(targets.size());
    int64_t inserted = 0;
    for (size_t k = i; k < j; ++k) {
      int rank = static_cast<int>(
          std::lower_bound(targets.begin(), targets.end(), spans[k].x_to) -
          targets.begin());
      crossings += inserted - tree.CountLessEqual(rank);
      tree.Add(rank);
      ++inserted;
    }
    i = j;
  }
  return crossings;
}

int64_t CountCrossingsNaive(const dot::Graph& graph,
                            const GraphLayout& layout) {
  // The seed's O(E^2) pairwise scan, kept verbatim as the oracle for the
  // BIT-based CountCrossings.
  struct Span {
    int layer;
    double x_from;
    double x_to;
  };
  std::vector<Span> spans;
  spans.reserve(graph.num_edges());
  for (const dot::GraphEdge& edge : graph.edges()) {
    int from = graph.FindNode(edge.from);
    int to = graph.FindNode(edge.to);
    if (from < 0 || to < 0) continue;
    const NodeLayout& a = layout.nodes[static_cast<size_t>(from)];
    const NodeLayout& b = layout.nodes[static_cast<size_t>(to)];
    if (b.layer != a.layer + 1) continue;
    spans.push_back({a.layer, a.x, b.x});
  }
  int64_t crossings = 0;
  for (size_t i = 0; i < spans.size(); ++i) {
    for (size_t j = i + 1; j < spans.size(); ++j) {
      if (spans[i].layer != spans[j].layer) continue;
      double d1 = spans[i].x_from - spans[j].x_from;
      double d2 = spans[i].x_to - spans[j].x_to;
      if (d1 * d2 < 0) ++crossings;
    }
  }
  return crossings;
}

}  // namespace stetho::layout
