#include "layout/sugiyama.h"

#include <algorithm>
#include <numeric>

#include "obs/span.h"

namespace stetho::layout {
namespace {

/// Assigns each node the longest path length from any root.
Result<std::vector<int>> AssignLayers(const dot::Graph& graph) {
  STETHO_ASSIGN_OR_RETURN(std::vector<int> order, graph.TopologicalOrder());
  auto in = graph.InAdjacency();
  std::vector<int> layer(graph.num_nodes(), 0);
  for (int n : order) {
    int best = 0;
    for (int p : in[static_cast<size_t>(n)]) {
      best = std::max(best, layer[static_cast<size_t>(p)] + 1);
    }
    layer[static_cast<size_t>(n)] = best;
  }
  return layer;
}

/// Median helper for barycenter ordering: average position of neighbors.
double Barycenter(const std::vector<int>& neighbors,
                  const std::vector<double>& position, double fallback) {
  if (neighbors.empty()) return fallback;
  double sum = 0;
  for (int n : neighbors) sum += position[static_cast<size_t>(n)];
  return sum / static_cast<double>(neighbors.size());
}

}  // namespace

Result<GraphLayout> LayoutGraph(const dot::Graph& graph,
                                const LayoutOptions& options) {
  obs::Span span(obs::Tracer::Default(), "layout", "phase");
  GraphLayout layout;
  size_t n = graph.num_nodes();
  layout.nodes.resize(n);
  layout.edges.resize(graph.num_edges());
  if (n == 0) return layout;

  STETHO_ASSIGN_OR_RETURN(std::vector<int> layer, AssignLayers(graph));
  int num_layers = 1 + *std::max_element(layer.begin(), layer.end());

  // Group nodes per layer, initial order = insertion order.
  std::vector<std::vector<int>> layers(static_cast<size_t>(num_layers));
  for (size_t i = 0; i < n; ++i) {
    layers[static_cast<size_t>(layer[i])].push_back(static_cast<int>(i));
  }

  auto out_adj = graph.OutAdjacency();
  auto in_adj = graph.InAdjacency();

  // Barycenter crossing reduction: alternate downward (order by parents)
  // and upward (order by children) sweeps.
  std::vector<double> position(n, 0);
  auto refresh_positions = [&] {
    for (const auto& lay : layers) {
      for (size_t i = 0; i < lay.size(); ++i) {
        position[static_cast<size_t>(lay[i])] = static_cast<double>(i);
      }
    }
  };
  refresh_positions();
  for (int sweep = 0; sweep < options.barycenter_sweeps; ++sweep) {
    bool down = (sweep % 2 == 0);
    for (int li = down ? 1 : num_layers - 2;
         down ? li < num_layers : li >= 0; down ? ++li : --li) {
      auto& lay = layers[static_cast<size_t>(li)];
      std::stable_sort(lay.begin(), lay.end(), [&](int a, int b) {
        const auto& na = down ? in_adj[static_cast<size_t>(a)]
                              : out_adj[static_cast<size_t>(a)];
        const auto& nb = down ? in_adj[static_cast<size_t>(b)]
                              : out_adj[static_cast<size_t>(b)];
        double ba = Barycenter(na, position, position[static_cast<size_t>(a)]);
        double bb = Barycenter(nb, position, position[static_cast<size_t>(b)]);
        return ba < bb;
      });
      for (size_t i = 0; i < lay.size(); ++i) {
        position[static_cast<size_t>(lay[i])] = static_cast<double>(i);
      }
    }
    refresh_positions();
  }

  // Node sizes from labels.
  for (size_t i = 0; i < n; ++i) {
    NodeLayout& nl = layout.nodes[i];
    nl.node = static_cast<int>(i);
    nl.layer = layer[i];
    double w = options.min_node_width +
               options.char_width * static_cast<double>(graph.node(i).label().size());
    nl.width = std::min(w, options.max_node_width);
    nl.height = options.node_height;
  }

  // Coordinate assignment: lay out each layer left-to-right, then center
  // every layer horizontally against the widest one.
  std::vector<double> layer_width(static_cast<size_t>(num_layers), 0);
  for (int li = 0; li < num_layers; ++li) {
    const auto& lay = layers[static_cast<size_t>(li)];
    double w = 0;
    for (size_t i = 0; i < lay.size(); ++i) {
      if (i > 0) w += options.node_gap;
      w += layout.nodes[static_cast<size_t>(lay[i])].width;
    }
    layer_width[static_cast<size_t>(li)] = w;
  }
  double max_width = *std::max_element(layer_width.begin(), layer_width.end());

  for (int li = 0; li < num_layers; ++li) {
    const auto& lay = layers[static_cast<size_t>(li)];
    double x = options.margin +
               (max_width - layer_width[static_cast<size_t>(li)]) / 2.0;
    double y = options.margin + options.node_height / 2.0 +
               static_cast<double>(li) * (options.node_height + options.layer_gap);
    for (int node : lay) {
      NodeLayout& nl = layout.nodes[static_cast<size_t>(node)];
      nl.x = x + nl.width / 2.0;
      nl.y = y;
      x += nl.width + options.node_gap;
    }
  }

  layout.width = max_width + 2 * options.margin;
  layout.height = options.margin * 2 + options.node_height +
                  static_cast<double>(num_layers - 1) *
                      (options.node_height + options.layer_gap);

  // Edge routing: straight polyline bottom-port -> top-port.
  for (size_t e = 0; e < graph.num_edges(); ++e) {
    const dot::GraphEdge& edge = graph.edges()[e];
    int from = graph.FindNode(edge.from);
    int to = graph.FindNode(edge.to);
    EdgeLayout& el = layout.edges[e];
    el.edge = static_cast<int>(e);
    if (from < 0 || to < 0) continue;
    const NodeLayout& a = layout.nodes[static_cast<size_t>(from)];
    const NodeLayout& b = layout.nodes[static_cast<size_t>(to)];
    el.points.push_back({a.x, a.y + a.height / 2.0});
    el.points.push_back({b.x, b.y - b.height / 2.0});
  }

  layout.crossings = CountCrossings(graph, layout);
  return layout;
}

int64_t CountCrossings(const dot::Graph& graph, const GraphLayout& layout) {
  // For each pair of edges between the same pair of consecutive layers,
  // count an inversion when their endpoints interleave.
  struct Span {
    int layer;
    double x_from;
    double x_to;
  };
  std::vector<Span> spans;
  spans.reserve(graph.num_edges());
  for (const dot::GraphEdge& edge : graph.edges()) {
    int from = graph.FindNode(edge.from);
    int to = graph.FindNode(edge.to);
    if (from < 0 || to < 0) continue;
    const NodeLayout& a = layout.nodes[static_cast<size_t>(from)];
    const NodeLayout& b = layout.nodes[static_cast<size_t>(to)];
    if (b.layer != a.layer + 1) continue;  // long edges approximated away
    spans.push_back({a.layer, a.x, b.x});
  }
  int64_t crossings = 0;
  for (size_t i = 0; i < spans.size(); ++i) {
    for (size_t j = i + 1; j < spans.size(); ++j) {
      if (spans[i].layer != spans[j].layer) continue;
      double d1 = spans[i].x_from - spans[j].x_from;
      double d2 = spans[i].x_to - spans[j].x_to;
      if (d1 * d2 < 0) ++crossings;
    }
  }
  return crossings;
}

}  // namespace stetho::layout
