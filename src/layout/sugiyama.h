#ifndef STETHO_LAYOUT_SUGIYAMA_H_
#define STETHO_LAYOUT_SUGIYAMA_H_

#include <vector>

#include "common/status.h"
#include "dot/graph.h"

namespace stetho::layout {

struct Point {
  double x = 0;
  double y = 0;
};

/// Tunables for the layered (Sugiyama-style) DAG layout.
struct LayoutOptions {
  double char_width = 7.0;      ///< label width estimate per character
  double node_height = 28.0;
  double min_node_width = 40.0;
  double max_node_width = 420.0;
  double layer_gap = 56.0;      ///< vertical distance between layers
  double node_gap = 24.0;       ///< horizontal gap between nodes in a layer
  double margin = 24.0;
  int barycenter_sweeps = 4;    ///< crossing-reduction iterations
};

/// Placement of one node; (x, y) is the node center.
struct NodeLayout {
  int node = -1;   ///< index into Graph::nodes()
  int layer = 0;
  double x = 0;
  double y = 0;
  double width = 0;
  double height = 0;
};

/// Routed edge: polyline from the source's bottom port to the target's top
/// port.
struct EdgeLayout {
  int edge = -1;   ///< index into Graph::edges()
  std::vector<Point> points;
};

/// Complete layout of a graph.
struct GraphLayout {
  double width = 0;
  double height = 0;
  std::vector<NodeLayout> nodes;  ///< indexed like Graph::nodes()
  std::vector<EdgeLayout> edges;  ///< indexed like Graph::edges()

  /// Number of edge crossings in the final ordering (a layout quality
  /// metric; exposed for tests and the layout benchmark).
  int64_t crossings = 0;
};

/// Computes a layered layout of a DAG: longest-path layer assignment,
/// barycenter crossing reduction, and sequential coordinate assignment with
/// per-layer centering. This is the GraphViz-dot substitute the Stethoscope
/// pipeline uses to place MAL plan graphs. Fails on cyclic graphs.
Result<GraphLayout> LayoutGraph(const dot::Graph& graph,
                                const LayoutOptions& options = {});

/// Counts pairwise edge crossings between consecutive layers for a given
/// ordering (exposed for property tests).
int64_t CountCrossings(const dot::Graph& graph, const GraphLayout& layout);

}  // namespace stetho::layout

#endif  // STETHO_LAYOUT_SUGIYAMA_H_
