#ifndef STETHO_LAYOUT_SUGIYAMA_H_
#define STETHO_LAYOUT_SUGIYAMA_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "dot/graph.h"

namespace stetho::engine {
class WorkerPool;
}  // namespace stetho::engine

namespace stetho::layout {

struct Point {
  double x = 0;
  double y = 0;
};

/// Tunables for the layered (Sugiyama-style) DAG layout.
struct LayoutOptions {
  double char_width = 7.0;      ///< label width estimate per character
  double node_height = 28.0;
  double min_node_width = 40.0;
  double max_node_width = 420.0;
  double layer_gap = 56.0;      ///< vertical distance between layers
  double node_gap = 24.0;       ///< horizontal gap between nodes in a layer
  double margin = 24.0;
  /// Maximum crossing-reduction sweeps; 0 disables ordering entirely
  /// (insertion order is kept). Sweeps stop early once a sweep no longer
  /// improves the crossing count, so this is a ceiling, not a fixed cost.
  int barycenter_sweeps = 4;
  /// Order by the median of neighbor positions (the GKNV median heuristic)
  /// instead of their mean.
  bool median = true;
  /// Adjacent-transpose refinement passes after each ordering sweep; each
  /// pass swaps neighboring nodes whenever the swap strictly reduces
  /// crossings. 0 disables.
  int transpose_passes = 2;
  /// Pool for per-layer parallel phases (transpose runs even/odd layers
  /// concurrently; crossing counts run per layer pair). nullptr uses
  /// engine::WorkerPool::Default(). Results are identical with or without a
  /// pool — parallelism only changes scheduling, never the ordering.
  engine::WorkerPool* pool = nullptr;
  /// Graphs below this node count run single-threaded regardless of pool.
  int parallel_min_nodes = 768;
};

/// Placement of one node; (x, y) is the node center.
struct NodeLayout {
  int node = -1;   ///< index into Graph::nodes()
  int layer = 0;
  double x = 0;
  double y = 0;
  double width = 0;
  double height = 0;
};

/// Routed edge: polyline from the source's bottom port to the target's top
/// port.
struct EdgeLayout {
  int edge = -1;   ///< index into Graph::edges()
  std::vector<Point> points;
};

/// Complete layout of a graph.
struct GraphLayout {
  double width = 0;
  double height = 0;
  std::vector<NodeLayout> nodes;  ///< indexed like Graph::nodes()
  std::vector<EdgeLayout> edges;  ///< indexed like Graph::edges()

  /// Number of edge crossings in the final ordering (a layout quality
  /// metric; exposed for tests and the layout benchmark).
  int64_t crossings = 0;
};

/// Computes a layered layout of a DAG: longest-path layer assignment,
/// median/barycenter crossing reduction with adjacent-transpose refinement
/// and early-exit convergence, and sequential coordinate assignment with
/// per-layer centering. This is the GraphViz-dot substitute the Stethoscope
/// pipeline uses to place MAL plan graphs. Fails on cyclic graphs.
Result<GraphLayout> LayoutGraph(const dot::Graph& graph,
                                const LayoutOptions& options = {});

/// Counts edge crossings between consecutive layers for a given ordering
/// with an accumulation tree (binary indexed tree): O(E log E) instead of
/// the pairwise O(E^2) scan. Exact same count as CountCrossingsNaive.
int64_t CountCrossings(const dot::Graph& graph, const GraphLayout& layout);

/// The original pairwise crossing counter, kept as the oracle for property
/// tests against the BIT-based CountCrossings.
int64_t CountCrossingsNaive(const dot::Graph& graph,
                            const GraphLayout& layout);

}  // namespace stetho::layout

#endif  // STETHO_LAYOUT_SUGIYAMA_H_
