#ifndef STETHO_LAYOUT_SVG_H_
#define STETHO_LAYOUT_SVG_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "dot/graph.h"
#include "layout/sugiyama.h"

namespace stetho::layout {

/// Options for SVG emission.
struct SvgOptions {
  std::string default_fill = "#f2f2f2";
  std::string stroke = "#333333";
  std::string font_family = "monospace";
  double font_size = 11.0;
  /// Node attribute consulted for per-node fill (set by the Stethoscope
  /// coloring algorithms): "fillcolor".
  std::string fill_attr = "fillcolor";
};

/// Renders a laid-out graph as a standalone SVG document. Nodes become
/// <g class="node" id="..."><rect/><text/></g> groups; edges become <line
/// class="edge" data-from="..." data-to="..."/> elements, so the document is
/// self-describing and can be parsed back into a graph (the paper's
/// dot -> svg -> in-memory-graph pipeline).
std::string LayoutToSvg(const dot::Graph& graph, const GraphLayout& layout,
                        const SvgOptions& options = {});

/// One node recovered from an SVG document.
struct SvgNode {
  std::string id;
  std::string label;
  std::string fill;
  double x = 0;       ///< rect top-left
  double y = 0;
  double width = 0;
  double height = 0;
};

struct SvgEdge {
  std::string from;
  std::string to;
};

/// A parsed SVG plan rendering.
struct SvgDocument {
  double width = 0;
  double height = 0;
  std::vector<SvgNode> nodes;
  std::vector<SvgEdge> edges;
};

/// Parses an SVG produced by LayoutToSvg back into geometry + topology.
Result<SvgDocument> ParseSvg(const std::string& text);

/// Rebuilds the in-memory Graph (ids, labels, edges) from a parsed SVG.
dot::Graph SvgToGraph(const SvgDocument& doc);

}  // namespace stetho::layout

#endif  // STETHO_LAYOUT_SVG_H_
