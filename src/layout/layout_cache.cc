#include "layout/layout_cache.h"

#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>

#include "obs/metrics.h"

namespace stetho::layout {
namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

void HashBytes(uint64_t* h, const void* data, size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < len; ++i) {
    *h ^= p[i];
    *h *= kFnvPrime;
  }
}

void HashString(uint64_t* h, const std::string& s) {
  uint64_t len = s.size();
  HashBytes(h, &len, sizeof(len));  // length-prefixed: "ab","c" != "a","bc"
  HashBytes(h, s.data(), s.size());
}

void HashDouble(uint64_t* h, double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  HashBytes(h, &bits, sizeof(bits));
}

void HashInt(uint64_t* h, int64_t v) { HashBytes(h, &v, sizeof(v)); }

size_t DefaultCapacity() {
  const char* env = std::getenv("STETHO_LAYOUT_CACHE");
  if (env == nullptr || *env == '\0') return LayoutCache::kDefaultCapacity;
  char* end = nullptr;
  long v = std::strtol(env, &end, 10);
  if (end == env || v < 0) return LayoutCache::kDefaultCapacity;
  return static_cast<size_t>(v);
}

obs::Counter* HitCounter() {
  static obs::Counter* c = obs::Registry::Default()->GetOrCreateCounter(
      "stetho_layout_cache_hits_total",
      "Layout cache lookups served from cached geometry");
  return c;
}

obs::Counter* MissCounter() {
  static obs::Counter* c = obs::Registry::Default()->GetOrCreateCounter(
      "stetho_layout_cache_misses_total",
      "Layout cache lookups that ran the full Sugiyama pipeline");
  return c;
}

}  // namespace

LayoutCache::LayoutCache(size_t capacity) : capacity_(capacity) {}

LayoutCache* LayoutCache::Default() {
  static LayoutCache* cache = new LayoutCache(DefaultCapacity());
  return cache;
}

uint64_t LayoutCache::HashKey(const dot::Graph& graph,
                              const LayoutOptions& options) {
  uint64_t h = kFnvOffset;
  HashInt(&h, static_cast<int64_t>(graph.num_nodes()));
  for (const dot::GraphNode& node : graph.nodes()) {
    HashString(&h, node.id);
    HashString(&h, node.label());
  }
  HashInt(&h, static_cast<int64_t>(graph.num_edges()));
  for (const dot::GraphEdge& edge : graph.edges()) {
    HashString(&h, edge.from);
    HashString(&h, edge.to);
  }
  // Every option that affects geometry; pool / parallel_min_nodes are
  // deliberately absent (parallelism never changes the output).
  HashDouble(&h, options.char_width);
  HashDouble(&h, options.node_height);
  HashDouble(&h, options.min_node_width);
  HashDouble(&h, options.max_node_width);
  HashDouble(&h, options.layer_gap);
  HashDouble(&h, options.node_gap);
  HashDouble(&h, options.margin);
  HashInt(&h, options.barycenter_sweeps);
  HashInt(&h, options.median ? 1 : 0);
  HashInt(&h, options.transpose_passes);
  return h;
}

Result<std::shared_ptr<const GraphLayout>> LayoutCache::GetOrCompute(
    const dot::Graph& graph, const LayoutOptions& options) {
  if (capacity_ == 0) {
    MissCounter()->Increment();
    STETHO_ASSIGN_OR_RETURN(GraphLayout layout, LayoutGraph(graph, options));
    return std::make_shared<const GraphLayout>(std::move(layout));
  }
  uint64_t key = HashKey(graph, options);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it != index_.end()) {
      mru_.splice(mru_.begin(), mru_, it->second);
      HitCounter()->Increment();
      return it->second->layout;
    }
  }
  // Miss: compute outside the lock so concurrent misses on different
  // graphs do not serialize behind one Sugiyama run.
  MissCounter()->Increment();
  STETHO_ASSIGN_OR_RETURN(GraphLayout layout, LayoutGraph(graph, options));
  auto shared = std::make_shared<const GraphLayout>(std::move(layout));
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    // A concurrent caller inserted the same key first; keep its entry.
    mru_.splice(mru_.begin(), mru_, it->second);
    return it->second->layout;
  }
  mru_.push_front(Entry{key, shared});
  index_[key] = mru_.begin();
  while (mru_.size() > capacity_) {
    index_.erase(mru_.back().key);
    mru_.pop_back();
  }
  return shared;
}

size_t LayoutCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return mru_.size();
}

void LayoutCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  mru_.clear();
  index_.clear();
}

}  // namespace stetho::layout
