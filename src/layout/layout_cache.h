#ifndef STETHO_LAYOUT_LAYOUT_CACHE_H_
#define STETHO_LAYOUT_LAYOUT_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "common/status.h"
#include "dot/graph.h"
#include "layout/sugiyama.h"

namespace stetho::layout {

/// Content-hash-keyed LRU cache of computed layouts.
///
/// Replay seeks, rewind, session re-focus, and repeated MonitorQuery runs
/// of the same plan all re-enter the layout stage with an unchanged graph;
/// the cache turns those calls into a hash of the graph content plus a map
/// lookup, returning a shared_ptr to the immutable geometry. The key
/// covers node ids, labels, edge endpoints, and every LayoutOptions field
/// that affects geometry (the pool / parallel threshold fields are
/// excluded: parallelism is deterministic and never changes the output).
///
/// Hits and misses are exported as `stetho_layout_cache_hits_total` /
/// `stetho_layout_cache_misses_total`. A capacity of 0 disables caching:
/// every call computes and nothing is stored. The process-wide Default()
/// capacity honors the STETHO_LAYOUT_CACHE environment variable
/// (default 32 entries).
class LayoutCache {
 public:
  static constexpr size_t kDefaultCapacity = 32;

  explicit LayoutCache(size_t capacity = kDefaultCapacity);

  LayoutCache(const LayoutCache&) = delete;
  LayoutCache& operator=(const LayoutCache&) = delete;

  /// Process-wide shared instance (capacity from STETHO_LAYOUT_CACHE).
  static LayoutCache* Default();

  /// Returns the cached layout for (graph, options), computing and
  /// inserting it on a miss. The layout is computed outside the cache
  /// lock, so concurrent misses on different graphs do not serialize.
  Result<std::shared_ptr<const GraphLayout>> GetOrCompute(
      const dot::Graph& graph, const LayoutOptions& options = {});

  /// FNV-1a 64 content hash of graph + geometry-relevant options — the
  /// cache key. Exposed for tests.
  static uint64_t HashKey(const dot::Graph& graph,
                          const LayoutOptions& options);

  size_t size() const;
  size_t capacity() const { return capacity_; }
  void Clear();

 private:
  struct Entry {
    uint64_t key = 0;
    std::shared_ptr<const GraphLayout> layout;
  };

  const size_t capacity_;
  mutable std::mutex mu_;
  std::list<Entry> mru_;  // front = most recently used
  std::unordered_map<uint64_t, std::list<Entry>::iterator> index_;
};

}  // namespace stetho::layout

#endif  // STETHO_LAYOUT_LAYOUT_CACHE_H_
