#include "layout/svg.h"

#include <cctype>
#include <map>

#include "common/string_util.h"
#include "obs/span.h"

namespace stetho::layout {

std::string LayoutToSvg(const dot::Graph& graph, const GraphLayout& layout,
                        const SvgOptions& options) {
  obs::Span span(obs::Tracer::Default(), "svg", "phase");
  std::string out = StrFormat(
      "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%.0f\" "
      "height=\"%.0f\" viewBox=\"0 0 %.0f %.0f\">\n",
      layout.width, layout.height, layout.width, layout.height);

  // Edges first so nodes draw on top.
  for (const EdgeLayout& el : layout.edges) {
    if (el.points.size() < 2 || el.edge < 0) continue;
    const dot::GraphEdge& edge = graph.edges()[static_cast<size_t>(el.edge)];
    const Point& a = el.points.front();
    const Point& b = el.points.back();
    out += StrFormat(
        "  <line class=\"edge\" data-from=\"%s\" data-to=\"%s\" "
        "x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" stroke=\"%s\"/>\n",
        EscapeXml(edge.from).c_str(), EscapeXml(edge.to).c_str(), a.x, a.y,
        b.x, b.y, options.stroke.c_str());
  }

  for (const NodeLayout& nl : layout.nodes) {
    if (nl.node < 0) continue;
    const dot::GraphNode& node = graph.node(static_cast<size_t>(nl.node));
    std::string fill = options.default_fill;
    auto it = node.attrs.find(options.fill_attr);
    if (it != node.attrs.end() && !it->second.empty()) fill = it->second;
    out += StrFormat("  <g class=\"node\" id=\"%s\">\n",
                     EscapeXml(node.id).c_str());
    out += StrFormat(
        "    <rect x=\"%.1f\" y=\"%.1f\" width=\"%.1f\" height=\"%.1f\" "
        "fill=\"%s\" stroke=\"%s\"/>\n",
        nl.x - nl.width / 2.0, nl.y - nl.height / 2.0, nl.width, nl.height,
        EscapeXml(fill).c_str(), options.stroke.c_str());
    out += StrFormat(
        "    <text x=\"%.1f\" y=\"%.1f\" text-anchor=\"middle\" "
        "font-family=\"%s\" font-size=\"%.1f\">%s</text>\n",
        nl.x, nl.y + options.font_size / 3.0, options.font_family.c_str(),
        options.font_size, EscapeXml(node.label()).c_str());
    out += "  </g>\n";
  }
  out += "</svg>\n";
  return out;
}

namespace {

/// One parsed XML tag: name + attributes; `closing` for </name>.
struct XmlTag {
  std::string name;
  std::map<std::string, std::string> attrs;
  bool closing = false;
  bool self_closing = false;
};

std::string UnescapeXml(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '&') {
      out.push_back(s[i]);
      continue;
    }
    auto try_entity = [&](std::string_view entity, char c) {
      if (s.substr(i, entity.size()) == entity) {
        out.push_back(c);
        i += entity.size() - 1;
        return true;
      }
      return false;
    };
    if (try_entity("&amp;", '&') || try_entity("&lt;", '<') ||
        try_entity("&gt;", '>') || try_entity("&quot;", '"') ||
        try_entity("&apos;", '\'')) {
      continue;
    }
    out.push_back(s[i]);
  }
  return out;
}

/// Minimal forward-only XML reader sufficient for our own SVG output.
class XmlReader {
 public:
  explicit XmlReader(const std::string& text) : text_(text) {}

  /// Advances to the next tag. Returns false at end of input. Text content
  /// between the previous position and the tag is stored in `pending_text`.
  bool NextTag(XmlTag* tag, std::string* pending_text) {
    pending_text->clear();
    size_t lt = text_.find('<', pos_);
    if (lt == std::string::npos) return false;
    *pending_text = UnescapeXml(
        std::string_view(text_).substr(pos_, lt - pos_));
    size_t gt = text_.find('>', lt);
    if (gt == std::string::npos) return false;
    std::string_view body = std::string_view(text_).substr(lt + 1, gt - lt - 1);
    pos_ = gt + 1;

    tag->attrs.clear();
    tag->closing = false;
    tag->self_closing = false;
    if (!body.empty() && body.front() == '/') {
      tag->closing = true;
      body.remove_prefix(1);
    }
    if (!body.empty() && body.back() == '/') {
      tag->self_closing = true;
      body.remove_suffix(1);
    }
    if (!body.empty() && (body.front() == '?' || body.front() == '!')) {
      tag->name = "";
      return true;  // declaration/comment — caller skips
    }
    size_t i = 0;
    while (i < body.size() && !std::isspace(static_cast<unsigned char>(body[i]))) {
      ++i;
    }
    tag->name = std::string(body.substr(0, i));
    // Attributes: key="value"
    while (i < body.size()) {
      while (i < body.size() && std::isspace(static_cast<unsigned char>(body[i]))) {
        ++i;
      }
      size_t eq = body.find('=', i);
      if (eq == std::string_view::npos) break;
      std::string key = Trim(body.substr(i, eq - i));
      size_t q1 = body.find('"', eq);
      if (q1 == std::string_view::npos) break;
      size_t q2 = body.find('"', q1 + 1);
      if (q2 == std::string_view::npos) break;
      tag->attrs[key] = UnescapeXml(body.substr(q1 + 1, q2 - q1 - 1));
      i = q2 + 1;
    }
    return true;
  }

 private:
  const std::string& text_;
  size_t pos_ = 0;
};

double AttrDouble(const XmlTag& tag, const char* name) {
  auto it = tag.attrs.find(name);
  if (it == tag.attrs.end()) return 0;
  auto v = ParseDouble(it->second);
  return v.ok() ? v.value() : 0;
}

std::string AttrString(const XmlTag& tag, const char* name) {
  auto it = tag.attrs.find(name);
  return it != tag.attrs.end() ? it->second : std::string();
}

}  // namespace

Result<SvgDocument> ParseSvg(const std::string& text) {
  SvgDocument doc;
  XmlReader reader(text);
  XmlTag tag;
  std::string pending;
  bool saw_svg = false;
  SvgNode current;
  bool in_node = false;
  bool in_text = false;

  while (reader.NextTag(&tag, &pending)) {
    if (in_text && !pending.empty()) {
      current.label += pending;
    }
    if (tag.name.empty()) continue;
    if (tag.name == "svg" && !tag.closing) {
      saw_svg = true;
      doc.width = AttrDouble(tag, "width");
      doc.height = AttrDouble(tag, "height");
      continue;
    }
    if (tag.name == "line" && AttrString(tag, "class") == "edge") {
      SvgEdge edge;
      edge.from = AttrString(tag, "data-from");
      edge.to = AttrString(tag, "data-to");
      if (edge.from.empty() || edge.to.empty()) {
        return Status::ParseError("edge element missing data-from/data-to");
      }
      doc.edges.push_back(std::move(edge));
      continue;
    }
    if (tag.name == "g" && !tag.closing && AttrString(tag, "class") == "node") {
      current = SvgNode();
      current.id = AttrString(tag, "id");
      in_node = true;
      continue;
    }
    if (tag.name == "rect" && in_node) {
      current.x = AttrDouble(tag, "x");
      current.y = AttrDouble(tag, "y");
      current.width = AttrDouble(tag, "width");
      current.height = AttrDouble(tag, "height");
      current.fill = AttrString(tag, "fill");
      continue;
    }
    if (tag.name == "text" && in_node) {
      in_text = !tag.closing && !tag.self_closing;
      continue;
    }
    if (tag.name == "g" && tag.closing && in_node) {
      if (current.id.empty()) {
        return Status::ParseError("node group missing id");
      }
      doc.nodes.push_back(std::move(current));
      in_node = false;
      in_text = false;
      continue;
    }
  }
  if (!saw_svg) return Status::ParseError("input is not an SVG document");
  return doc;
}

dot::Graph SvgToGraph(const SvgDocument& doc) {
  dot::Graph graph("svg");
  for (const SvgNode& node : doc.nodes) {
    dot::GraphNode& gn = graph.AddNode(node.id);
    gn.attrs["label"] = node.label;
    if (!node.fill.empty()) gn.attrs["fillcolor"] = node.fill;
  }
  for (const SvgEdge& edge : doc.edges) {
    graph.AddEdge(edge.from, edge.to);
  }
  return graph;
}

}  // namespace stetho::layout
