// mal_lint — static analysis over MAL plans, dot graphs, and trace files.
//
//   mal_lint [flags] <file>...
//
// Input kinds are inferred from the extension and can be forced with flags:
//   *.dot            parsed with dot::ParseDot        (--dot <file>)
//   *.trace          read with scope::ReadTraceFile   (--trace <file>)
//   *.json           obs::ParseChromeTrace span export (--spans <file>)
//   anything else    parsed with mal::ParseProgram    (--plan <file>)
//
// All inputs are linted together in one analysis::CheckContext, so passing a
// plan + dot + trace triple cross-validates the pc ↔ "nN" ↔ label contract
// and the start/done pairing of the trace against the plan; adding a Chrome
// trace export (stethoscope --trace-json) checks the profiler stream against
// the platform's own kernel spans (trace-span-conformance).
//
// Flags:
//   --json             emit diagnostics as a JSON array instead of text
//   --sarif            emit diagnostics as a SARIF 2.1.0 log (CI annotators)
//   --list-checks      print the check catalog and exit
//   --schedule         also print the happens-before schedule report
//                      (makespan, critical path, slack; needs plan + trace)
//   --memory           also print the static memory profile (per-pc live
//                      bytes, sequential peak, parallel bound, heaviest
//                      live ranges; needs a plan — a trace refines the dop)
//   --fail-on=SEV      exit 1 when any finding is at or above SEV
//                      (note|warning|error; default error)
//   --baseline FILE    suppress findings whose fingerprint is listed in FILE
//                      so CI gates on new findings only
//   --write-baseline   print the baseline for the current findings instead
//                      of diagnostics (redirect to create/refresh FILE)
//   --profile FILE     load a cross-run profile store and enable the
//                      trace-perf-regression check (the trace is compared
//                      against the stored baseline for its plan shape)
//   --write-profile FILE
//                      fold the supplied trace (keyed by the plan when one
//                      is given, else by the trace's own statement text)
//                      into FILE and exit — the way committed baseline
//                      profiles are recorded
//
// Exit status: 0 clean (below the --fail-on threshold), 1 findings at or
// above the threshold, 2 usage or input failure.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/hb.h"
#include "analysis/liveness.h"
#include "analysis/perfdiff.h"
#include "analysis/runner.h"
#include "common/string_util.h"
#include "dot/parser.h"
#include "engine/kernel.h"
#include "mal/parser.h"
#include "obs/trace_export.h"
#include "scope/trace.h"

using namespace stetho;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: mal_lint [--json|--sarif] [--list-checks] [--schedule] "
               "[--memory] "
               "[--fail-on=<note|warning|error>] [--baseline <file>] "
               "[--write-baseline] [--profile <file>] "
               "[--write-profile <file>] "
               "[--plan|--dot|--trace|--spans] <file>...\n"
               "       kind is inferred from the extension (.dot, .trace, "
               ".json for Chrome-trace span exports; anything else is a MAL "
               "plan)\n");
  return 2;
}

int ListChecks() {
  for (const auto& check : analysis::Runner::Default().checks()) {
    std::printf("%-22s %s\n", check->id(), check->description());
  }
  return 0;
}

Result<std::string> ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

enum class InputKind { kAuto, kPlan, kDot, kTrace, kSpans };

InputKind KindFromExtension(const std::string& path) {
  if (EndsWith(path, ".dot")) return InputKind::kDot;
  if (EndsWith(path, ".trace")) return InputKind::kTrace;
  if (EndsWith(path, ".json")) return InputKind::kSpans;
  return InputKind::kPlan;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool sarif = false;
  bool schedule = false;
  bool memory = false;
  bool write_baseline = false;
  std::string profile_path;
  std::string write_profile_path;
  analysis::Severity fail_on = analysis::Severity::kError;
  std::vector<std::string> baseline;
  InputKind forced = InputKind::kAuto;
  std::vector<std::pair<InputKind, std::string>> inputs;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--json") == 0) {
      json = true;
    } else if (std::strcmp(arg, "--sarif") == 0) {
      sarif = true;
    } else if (std::strcmp(arg, "--schedule") == 0) {
      schedule = true;
    } else if (std::strcmp(arg, "--memory") == 0) {
      memory = true;
    } else if (std::strcmp(arg, "--write-baseline") == 0) {
      write_baseline = true;
    } else if (std::strncmp(arg, "--fail-on=", 10) == 0) {
      const char* level = arg + 10;
      if (std::strcmp(level, "note") == 0) {
        fail_on = analysis::Severity::kNote;
      } else if (std::strcmp(level, "warning") == 0) {
        fail_on = analysis::Severity::kWarning;
      } else if (std::strcmp(level, "error") == 0) {
        fail_on = analysis::Severity::kError;
      } else {
        std::fprintf(stderr, "--fail-on: unknown severity \"%s\"\n", level);
        return Usage();
      }
    } else if (std::strcmp(arg, "--baseline") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--baseline needs a file argument\n");
        return Usage();
      }
      auto text = ReadWholeFile(argv[++i]);
      if (!text.ok()) {
        std::fprintf(stderr, "%s: %s\n", argv[i],
                     text.status().ToString().c_str());
        return 2;
      }
      std::vector<std::string> parsed =
          analysis::ParseBaseline(text.value());
      baseline.insert(baseline.end(), parsed.begin(), parsed.end());
    } else if (std::strcmp(arg, "--profile") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--profile needs a file argument\n");
        return Usage();
      }
      profile_path = argv[++i];
    } else if (std::strcmp(arg, "--write-profile") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--write-profile needs a file argument\n");
        return Usage();
      }
      write_profile_path = argv[++i];
    } else if (std::strcmp(arg, "--list-checks") == 0) {
      return ListChecks();
    } else if (std::strcmp(arg, "--plan") == 0) {
      forced = InputKind::kPlan;
    } else if (std::strcmp(arg, "--dot") == 0) {
      forced = InputKind::kDot;
    } else if (std::strcmp(arg, "--trace") == 0) {
      forced = InputKind::kTrace;
    } else if (std::strcmp(arg, "--spans") == 0) {
      forced = InputKind::kSpans;
    } else if (arg[0] == '-') {
      std::fprintf(stderr, "unknown flag: %s\n", arg);
      return Usage();
    } else {
      InputKind kind =
          forced != InputKind::kAuto ? forced : KindFromExtension(arg);
      inputs.emplace_back(kind, arg);
      forced = InputKind::kAuto;  // a forcing flag applies to the next file
    }
  }
  if (inputs.empty()) return Usage();

  std::optional<mal::Program> program;
  std::optional<dot::Graph> graph;
  std::optional<std::vector<profiler::TraceEvent>> trace;
  std::optional<std::vector<obs::SpanRecord>> spans;

  for (const auto& [kind, path] : inputs) {
    switch (kind) {
      case InputKind::kPlan: {
        auto text = ReadWholeFile(path);
        if (!text.ok()) {
          std::fprintf(stderr, "%s: %s\n", path.c_str(),
                       text.status().ToString().c_str());
          return 2;
        }
        auto parsed = mal::ParseProgramLenient(text.value());
        if (!parsed.ok()) {
          std::fprintf(stderr, "%s: %s\n", path.c_str(),
                       parsed.status().ToString().c_str());
          return 2;
        }
        program = std::move(parsed).value();
        break;
      }
      case InputKind::kDot: {
        auto text = ReadWholeFile(path);
        if (!text.ok()) {
          std::fprintf(stderr, "%s: %s\n", path.c_str(),
                       text.status().ToString().c_str());
          return 2;
        }
        auto parsed = dot::ParseDot(text.value());
        if (!parsed.ok()) {
          std::fprintf(stderr, "%s: %s\n", path.c_str(),
                       parsed.status().ToString().c_str());
          return 2;
        }
        graph = std::move(parsed).value();
        break;
      }
      case InputKind::kTrace: {
        auto events = scope::ReadTraceFile(path);
        if (!events.ok()) {
          std::fprintf(stderr, "%s: %s\n", path.c_str(),
                       events.status().ToString().c_str());
          return 2;
        }
        trace = std::move(events).value();
        break;
      }
      case InputKind::kSpans: {
        auto text = ReadWholeFile(path);
        if (!text.ok()) {
          std::fprintf(stderr, "%s: %s\n", path.c_str(),
                       text.status().ToString().c_str());
          return 2;
        }
        auto parsed = obs::ParseChromeTrace(text.value());
        if (!parsed.ok()) {
          std::fprintf(stderr, "%s: %s\n", path.c_str(),
                       parsed.status().ToString().c_str());
          return 2;
        }
        spans = std::move(parsed).value();
        break;
      }
      case InputKind::kAuto:
        break;  // unreachable
    }
  }

  if (!write_profile_path.empty()) {
    // Record mode: fold the trace into the profile file and exit. Keyed by
    // the plan's shape hash when a plan was given (the contract the server
    // folds under) so the recorded baseline lines up with live lookups.
    if (!trace.has_value()) {
      std::fprintf(stderr, "--write-profile needs a trace input\n");
      return 2;
    }
    obs::QueryObservation observation =
        analysis::ObservationFromTrace(trace.value());
    if (program.has_value()) {
      observation.shape_hash = analysis::PlanShapeHash(program.value());
    }
    obs::ProfileStore store;
    // Merge into an existing profile so repeated recordings accumulate
    // runs instead of overwriting them (a missing file starts fresh).
    (void)store.LoadFile(write_profile_path);
    Status folded = store.Fold(observation);
    if (!folded.ok()) {
      std::fprintf(stderr, "--write-profile: %s\n",
                   folded.ToString().c_str());
      return 2;
    }
    Status saved = store.SaveFile(write_profile_path);
    if (!saved.ok()) {
      std::fprintf(stderr, "--write-profile: %s\n", saved.ToString().c_str());
      return 2;
    }
    std::printf("folded %zu pcs (shape %016llx) into %s\n",
                observation.pcs.size(),
                static_cast<unsigned long long>(observation.shape_hash),
                write_profile_path.c_str());
    return 0;
  }

  std::optional<obs::ProfileStore> profile;
  if (!profile_path.empty()) {
    profile.emplace();
    Status loaded = profile->LoadFile(profile_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s: %s\n", profile_path.c_str(),
                   loaded.ToString().c_str());
      return 2;
    }
  }

  analysis::CheckContext ctx;
  if (program.has_value()) {
    ctx.program = &program.value();
    ctx.registry = engine::ModuleRegistry::Default();
  }
  if (graph.has_value()) ctx.graph = &graph.value();
  if (trace.has_value()) ctx.trace = &trace.value();
  if (spans.has_value()) ctx.spans = &spans.value();
  if (profile.has_value()) ctx.profile = &profile.value();

  std::vector<analysis::Diagnostic> diagnostics = analysis::ApplyBaseline(
      analysis::Runner::Default().Run(ctx), baseline);

  if (write_baseline) {
    std::fputs(analysis::FormatBaseline(diagnostics).c_str(), stdout);
    return 0;
  }
  if (sarif) {
    // The first input file names the analyzed artifact in the log.
    std::fputs(analysis::DiagnosticsToSarif(diagnostics, inputs.front().second)
                   .c_str(),
               stdout);
  } else if (json) {
    std::fputs(analysis::DiagnosticsToJson(diagnostics).c_str(), stdout);
  } else {
    std::fputs(analysis::FormatDiagnostics(diagnostics).c_str(), stdout);
    std::printf("%zu diagnostics (%zu errors, %zu warnings, %zu notes)\n",
                diagnostics.size(),
                analysis::CountSeverity(diagnostics, analysis::Severity::kError),
                analysis::CountSeverity(diagnostics,
                                        analysis::Severity::kWarning),
                analysis::CountSeverity(diagnostics, analysis::Severity::kNote));
  }
  if (schedule) {
    if (!program.has_value() || !trace.has_value()) {
      std::fprintf(stderr,
                   "--schedule needs both a plan and a trace input\n");
      return 2;
    }
    analysis::ScheduleReport report =
        analysis::AnalyzeSchedule(program.value(), trace.value());
    std::fputs(
        analysis::FormatScheduleReport(report, program.value()).c_str(),
        stdout);
  }
  if (memory) {
    if (!program.has_value()) {
      std::fprintf(stderr, "--memory needs a plan input\n");
      return 2;
    }
    // With a trace, profile at the dop the engine actually used (distinct
    // admission slots); otherwise report the sequential picture.
    int dop = 1;
    if (trace.has_value()) {
      std::vector<int> threads;
      for (const profiler::TraceEvent& e : trace.value()) {
        threads.push_back(e.thread);
      }
      std::sort(threads.begin(), threads.end());
      threads.erase(std::unique(threads.begin(), threads.end()),
                    threads.end());
      dop = std::max<int>(1, static_cast<int>(threads.size()));
    }
    analysis::MemoryReport report = analysis::AnalyzeMemory(program.value());
    std::fputs(
        analysis::FormatMemoryReport(program.value(), report, dop).c_str(),
        stdout);
  }
  return analysis::AnyAtOrAbove(diagnostics, fail_on) ? 1 : 0;
}
