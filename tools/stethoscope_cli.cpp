// stethoscope — the command-line entry point a downstream user runs.
//
//   stethoscope explain "<sql>"          print the optimized MAL plan
//   stethoscope run "<sql>"              execute; print an ASCII result table
//   stethoscope record "<sql>" <prefix>  run and write <prefix>.dot/.trace
//   stethoscope replay <dot> <trace>     offline analysis of recorded files
//   stethoscope monitor "<sql>"          online monitoring report
//   stethoscope session <dot> <trace>    interactive session (commands on
//                                        stdin; try "help")
//   stethoscope diff <a.trace> <b.trace> [plan.mal]
//                                        per-pc performance diff of two
//                                        recorded traces (plan adds
//                                        critical-path attribution)
//   stethoscope queries                  list the built-in query suite
//
// Common flags (before the subcommand):
//   --sf <double>      TPC-H scale factor           (default 0.01)
//   --dop <int>        worker threads               (default hardware)
//   --mitosis <int>    mitosis partitions           (default 8)
//   --seed <int>       data generator seed          (default 19920712)
//   --sequential       force sequential execution (the anomaly)
//   --metrics          print the metrics registry (Prometheus text) on exit
//   --trace-json <f>   record platform spans; write Chrome trace JSON to <f>
//                      (load in Perfetto / chrome://tracing)
//   --watch            (monitor) print a live status line per analysis round
//                      (progress %%, ETA, pipe health) and the final stream
//                      health + server progress scoreboard
//   --drop <p>         (monitor) inject seeded datagram loss with
//                      probability p on the server->monitor stream — a bad
//                      network day on demand, for watching the pipeline
//                      health accounting react
//
// A SQL argument that names a built-in query ("q1", "paper"...) is expanded
// to its text.

#include <cstdio>
#include <cstring>
#include <fstream>

#include "analysis/perfdiff.h"
#include "common/string_util.h"
#include "dot/parser.h"
#include "mal/parser.h"
#include "layout/layout_cache.h"
#include "layout/sugiyama.h"
#include "layout/svg.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/trace_export.h"
#include "profiler/sink.h"
#include "scope/analysis.h"
#include "scope/online.h"
#include "scope/replayer.h"
#include "scope/session.h"
#include "scope/timeline.h"
#include "scope/trace.h"
#include "server/mserver.h"
#include "server/result_printer.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

using namespace stetho;

namespace {

struct CliOptions {
  double sf = 0.01;
  int dop = 0;
  int mitosis = 8;
  uint64_t seed = 19920712;
  bool sequential = false;
  bool metrics = false;
  std::string trace_json;  // empty = span recording off
  bool watch = false;
  double drop_p = 0;  // monitor-stream fault injection
};

int Fail(const Status& st) {
  std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
  return 1;
}

int Usage() {
  std::fprintf(stderr,
               "usage: stethoscope [flags] <explain|run|record|replay|"
               "monitor|diff|queries> [args]\n"
               "flags: --sf N  --dop N  --mitosis N  --seed N  --sequential\n"
               "       --metrics  --trace-json FILE  --watch  --drop P\n");
  return 2;
}

std::string ResolveSql(const std::string& arg) {
  auto q = tpch::GetQuery(arg);
  return q.ok() ? q.value().sql : arg;
}

std::unique_ptr<server::Mserver> MakeServer(const CliOptions& cli) {
  tpch::TpchConfig data;
  data.scale_factor = cli.sf;
  data.seed = cli.seed;
  auto catalog = tpch::GenerateTpch(data);
  if (!catalog.ok()) {
    std::fprintf(stderr, "dbgen: %s\n", catalog.status().ToString().c_str());
    return nullptr;
  }
  server::MserverOptions options;
  options.dop = cli.dop;
  options.mitosis_pieces = cli.mitosis;
  options.force_sequential = cli.sequential;
  return std::make_unique<server::Mserver>(std::move(catalog.value()), options);
}

void PrintAnalyses(const std::vector<profiler::TraceEvent>& events) {
  std::printf("\n-- thread utilization --\n%s",
              scope::AnalyzeThreadUtilization(events).ToString().c_str());
  auto ops = scope::AnalyzeOperators(events);
  std::printf("\n-- operators (top 10 by total time) --\n");
  for (size_t i = 0; i < ops.size() && i < 10; ++i) {
    std::printf("  %-24s calls=%-5lld total=%-8lldus max=%-8lldus "
                "peak_rss=%lldB\n",
                ops[i].op.c_str(), static_cast<long long>(ops[i].calls),
                static_cast<long long>(ops[i].total_usec),
                static_cast<long long>(ops[i].max_usec),
                static_cast<long long>(ops[i].max_rss_bytes));
  }
  auto clusters = scope::FindCostlyClusters(events, 500);
  std::printf("\n-- costly clusters (>=500us) --\n");
  for (size_t i = 0; i < clusters.size() && i < 5; ++i) {
    std::printf("  events [%zu..%zu]: %zu instructions, %lldus\n",
                clusters[i].first_event, clusters[i].last_event,
                clusters[i].pcs.size(),
                static_cast<long long>(clusters[i].total_usec));
  }
}

int CmdQueries() {
  for (const auto& q : tpch::TpchQueries()) {
    std::printf("%-14s %s\n", q.id.c_str(), q.title.c_str());
  }
  return 0;
}

int CmdExplain(const CliOptions& cli, const std::string& sql) {
  auto server = MakeServer(cli);
  if (!server) return 1;
  auto plan = server->Explain(ResolveSql(sql));
  if (!plan.ok()) return Fail(plan.status());
  std::printf("%s", plan.value().ToString().c_str());
  return 0;
}

int CmdRun(const CliOptions& cli, const std::string& sql) {
  auto server = MakeServer(cli);
  if (!server) return 1;
  auto ring = std::make_shared<profiler::RingBufferSink>(1 << 16);
  server->profiler()->AddSink(ring);
  auto outcome = server->ExecuteSql(ResolveSql(sql));
  if (!outcome.ok()) return Fail(outcome.status());
  if (obs::Tracer::Default()->enabled()) {
    // With span recording on, also run the visualization pipeline over the
    // plan's dot file so one invocation traces the full platform lifecycle:
    // parse → optimize → execute → layout → svg.
    auto graph = dot::ParseDot(outcome.value().dot);
    if (graph.ok()) {
      auto layout =
          layout::LayoutCache::Default()->GetOrCompute(graph.value());
      if (layout.ok()) {
        (void)layout::LayoutToSvg(graph.value(), *layout.value(),
                                  layout::SvgOptions());
      }
    }
  }
  std::printf("%s", server::FormatResultTable(outcome.value().result).c_str());
  std::printf("%lld us, plan of %zu instructions, peak memory %lld bytes\n",
              static_cast<long long>(outcome.value().result.total_usec),
              outcome.value().plan.size(),
              static_cast<long long>(outcome.value().result.peak_rss_bytes));
  PrintAnalyses(ring->Snapshot());
  return 0;
}

int CmdRecord(const CliOptions& cli, const std::string& sql,
              const std::string& prefix) {
  auto server = MakeServer(cli);
  if (!server) return 1;
  auto sink = profiler::FileSink::Open(prefix + ".trace");
  if (!sink.ok()) return Fail(sink.status());
  server->profiler()->AddSink(std::move(sink).value());
  auto outcome = server->ExecuteSql(ResolveSql(sql));
  if (!outcome.ok()) return Fail(outcome.status());
  std::ofstream(prefix + ".dot") << outcome.value().dot;
  std::printf("wrote %s.dot and %s.trace (%zu instructions, %zu events)\n",
              prefix.c_str(), prefix.c_str(), outcome.value().plan.size(),
              2 * outcome.value().plan.size());
  return 0;
}

int CmdReplay(const std::string& dot_path, const std::string& trace_path) {
  std::ifstream dot_in(dot_path);
  if (!dot_in) return Fail(Status::IoError("cannot read " + dot_path));
  std::string dot_text((std::istreambuf_iterator<char>(dot_in)),
                       std::istreambuf_iterator<char>());
  auto graph = dot::ParseDot(dot_text);
  if (!graph.ok()) return Fail(graph.status());
  auto events = scope::ReadTraceFile(trace_path);
  if (!events.ok()) return Fail(events.status());
  std::printf("replaying %zu events over %zu plan nodes\n",
              events.value().size(), graph.value().num_nodes());

  scope::ReplayOptions replay;
  replay.render_interval_us = 0;
  auto replayer =
      scope::OfflineReplayer::Create(graph.value(), events.value(), replay);
  if (!replayer.ok()) return Fail(replayer.status());
  auto played = replayer.value()->Play(1e12, events.value().size());
  if (!played.ok()) return Fail(played.status());

  std::ofstream(trace_path + ".view.svg")
      << replayer.value()->BirdsEyeView().ToSvg();
  std::ofstream(trace_path + ".timeline.svg")
      << scope::RenderUtilizationTimeline(events.value());
  std::ofstream(trace_path + ".memory.svg")
      << scope::RenderMemoryCurve(events.value());
  std::printf("wrote %s.{view,timeline,memory}.svg\n", trace_path.c_str());
  PrintAnalyses(events.value());
  return 0;
}

int CmdSession(const std::string& dot_path, const std::string& trace_path) {
  std::ifstream dot_in(dot_path);
  if (!dot_in) return Fail(Status::IoError("cannot read " + dot_path));
  std::string dot_text((std::istreambuf_iterator<char>(dot_in)),
                       std::istreambuf_iterator<char>());
  auto graph = dot::ParseDot(dot_text);
  if (!graph.ok()) return Fail(graph.status());
  auto events = scope::ReadTraceFile(trace_path);
  if (!events.ok()) return Fail(events.status());

  scope::ReplayOptions replay;
  replay.render_interval_us = 0;
  auto replayer =
      scope::OfflineReplayer::Create(graph.value(), events.value(), replay);
  if (!replayer.ok()) return Fail(replayer.status());
  scope::InteractiveSession session(replayer.value().get(),
                                    SteadyClock::Default(),
                                    /*animation_ms=*/0);
  std::printf("interactive session over %zu nodes / %zu events. 'help' "
              "lists commands, ctrl-d exits.\n",
              graph.value().num_nodes(), events.value().size());
  char line[1024];
  while (std::printf("> "), std::fflush(stdout),
         std::fgets(line, sizeof(line), stdin) != nullptr) {
    std::string command = Trim(line);
    if (command.empty()) continue;
    if (command == "quit" || command == "exit") break;
    auto response = session.Execute(command);
    if (response.ok()) {
      std::printf("%s\n", response.value().c_str());
    } else {
      std::printf("error: %s\n", response.status().ToString().c_str());
    }
  }
  return 0;
}

int CmdDiff(const std::string& a_path, const std::string& b_path,
            const char* plan_path) {
  auto a = scope::ReadTraceFile(a_path);
  if (!a.ok()) return Fail(a.status());
  auto b = scope::ReadTraceFile(b_path);
  if (!b.ok()) return Fail(b.status());
  mal::Program plan;
  bool have_plan = false;
  if (plan_path != nullptr) {
    std::ifstream plan_in(plan_path);
    if (!plan_in) {
      return Fail(Status::IoError(std::string("cannot read ") + plan_path));
    }
    std::string text((std::istreambuf_iterator<char>(plan_in)),
                     std::istreambuf_iterator<char>());
    auto parsed = mal::ParseProgram(text);
    if (!parsed.ok()) return Fail(parsed.status());
    plan = std::move(parsed).value();
    have_plan = true;
  }
  analysis::TraceDiff diff = analysis::DiffTraces(
      a.value(), b.value(), have_plan ? &plan : nullptr);
  std::printf("a: %s (%zu events)\nb: %s (%zu events)\n%s", a_path.c_str(),
              a.value().size(), b_path.c_str(), b.value().size(),
              analysis::FormatTraceDiff(diff).c_str());
  return 0;
}

int CmdMonitor(const CliOptions& cli, const std::string& sql) {
  auto server = MakeServer(cli);
  if (!server) return 1;
  scope::OnlineOptions online;
  online.render_interval_us = 1000;
  online.fault.drop_p = cli.drop_p;
  if (cli.watch) {
    online.status_line = [](const std::string& line) {
      std::printf("%s\n", line.c_str());
      std::fflush(stdout);
    };
  }
  scope::OnlineMonitor monitor(server.get(), online);
  auto report = monitor.MonitorQuery(ResolveSql(sql));
  if (!report.ok()) return Fail(report.status());
  const scope::OnlineReport& r = report.value();
  std::printf("plan nodes: %zu; events: %lld; color updates: %zu; "
              "analysis rounds: %zu\n",
              r.graph_nodes, static_cast<long long>(r.events_received),
              r.color_updates, r.analysis_rounds);
  std::printf("%s\n", r.pipe_health.ToString().c_str());
  if (r.injected_dropped > 0) {
    std::printf("(injected: %lld dropped)\n",
                static_cast<long long>(r.injected_dropped));
  }
  std::printf("%s\n", r.parallelism.summary.c_str());
  if (cli.watch) {
    std::printf("-- progress scoreboard --\n%s",
                server->ProgressText().c_str());
    // Latency distribution footer: estimated quantiles over every
    // populated histogram, the same numbers MetricsText() exposes.
    const std::string summary =
        obs::Registry::Default()->HistogramSummaryText();
    if (!summary.empty()) {
      std::printf("-- histogram quantiles --\n%s", summary.c_str());
    }
    if (!r.stragglers.empty()) {
      std::printf("-- stragglers vs stored baseline --\n");
      for (const scope::StragglerFlag& s : r.stragglers) {
        std::printf("  pc %-4d %lldus vs median %.0fus%s\n", s.pc,
                    static_cast<long long>(s.usec), s.baseline_median,
                    s.completed ? "" : " (still running when flagged)");
      }
    }
  }
  std::printf("%s", server::FormatResultTable(r.outcome.result).c_str());
  PrintAnalyses(r.events);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  int i = 1;
  for (; i < argc; ++i) {
    std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (flag == "--sf") {
      const char* v = next();
      if (!v) return Usage();
      cli.sf = std::atof(v);
    } else if (flag == "--dop") {
      const char* v = next();
      if (!v) return Usage();
      cli.dop = std::atoi(v);
    } else if (flag == "--mitosis") {
      const char* v = next();
      if (!v) return Usage();
      cli.mitosis = std::atoi(v);
    } else if (flag == "--seed") {
      const char* v = next();
      if (!v) return Usage();
      cli.seed = static_cast<uint64_t>(std::atoll(v));
    } else if (flag == "--sequential") {
      cli.sequential = true;
    } else if (flag == "--metrics") {
      cli.metrics = true;
    } else if (flag == "--watch") {
      cli.watch = true;
    } else if (flag == "--drop") {
      const char* v = next();
      if (!v) return Usage();
      cli.drop_p = std::atof(v);
    } else if (flag == "--trace-json") {
      const char* v = next();
      if (!v) return Usage();
      cli.trace_json = v;
    } else {
      break;  // subcommand
    }
  }
  if (i >= argc) return Usage();
  if (cli.metrics || cli.watch || !cli.trace_json.empty()) {
    // Opt in to the paid observability paths (latency histograms, pass
    // timing) and to flight-recorder dumps on query aborts.
    obs::SetEnabled(true);
    obs::FlightRecorder::Default()->SetEnabled(true);
  }
  if (!cli.trace_json.empty()) obs::Tracer::Default()->SetEnabled(true);
  std::string cmd = argv[i++];
  auto arg = [&](int k) -> const char* {
    return i + k < argc ? argv[i + k] : nullptr;
  };

  int rc = [&]() -> int {
    if (cmd == "queries") return CmdQueries();
    if (cmd == "explain" && arg(0)) return CmdExplain(cli, arg(0));
    if (cmd == "run" && arg(0)) return CmdRun(cli, arg(0));
    if (cmd == "record" && arg(0) && arg(1)) {
      return CmdRecord(cli, arg(0), arg(1));
    }
    if (cmd == "replay" && arg(0) && arg(1)) return CmdReplay(arg(0), arg(1));
    if (cmd == "session" && arg(0) && arg(1)) return CmdSession(arg(0), arg(1));
    if (cmd == "diff" && arg(0) && arg(1)) {
      return CmdDiff(arg(0), arg(1), arg(2));
    }
    if (cmd == "monitor" && arg(0)) return CmdMonitor(cli, arg(0));
    return Usage();
  }();

  if (!cli.trace_json.empty()) {
    std::ofstream out(cli.trace_json);
    if (!out) {
      return Fail(Status::IoError("cannot write " + cli.trace_json));
    }
    out << obs::WriteChromeTrace(obs::Tracer::Default()->Snapshot());
    std::fprintf(stderr,
                 "wrote %s (%zu spans; open in Perfetto or chrome://tracing)\n",
                 cli.trace_json.c_str(), obs::Tracer::Default()->size());
  }
  if (cli.metrics) {
    std::printf("%s", obs::Registry::Default()->ExpositionText().c_str());
  }
  return rc;
}
