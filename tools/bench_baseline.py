#!/usr/bin/env python3
"""Benchmark baseline harness.

Runs every bench_* binary under the build directory with
--benchmark_out_format=json (stdout demo banners do not corrupt the JSON),
merges the per-binary reports into one BENCH_<date>[_<label>].json at the
repository root, and diffs the merged run against the most recent previously
recorded baseline so the perf trajectory of the repo is explicit in git.

Usage:
  tools/bench_baseline.py                       # run, merge, diff vs latest
  tools/bench_baseline.py --label seed          # tag the output file name
  tools/bench_baseline.py --min-time 0.1        # slower, steadier numbers
  tools/bench_baseline.py --only c4,layout      # substring filter on binaries
  tools/bench_baseline.py --diff-only A.json B.json   # just compare two files

Exit status: 0 on success (diff regressions are reported, not fatal unless
--fail-on-regress is given), 1 on harness errors.
"""

import argparse
import datetime
import glob
import json
import os
import platform
import re
import subprocess
import sys
import tempfile

REGRESS_THRESHOLD = 1.10  # default: >10% slower is a regression in the diff


def repo_root():
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def find_benches(build_dir, only):
    pattern = os.path.join(build_dir, "bench", "bench_*")
    benches = [p for p in sorted(glob.glob(pattern))
               if os.access(p, os.X_OK) and os.path.isfile(p)]
    if only:
        tokens = [t for t in only.split(",") if t]
        benches = [b for b in benches
                   if any(t in os.path.basename(b) for t in tokens)]
    return benches


def run_bench(binary, min_time):
    """Runs one bench binary, returns its parsed google-benchmark JSON."""
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        out_path = tmp.name
    try:
        cmd = [binary,
               f"--benchmark_out={out_path}",
               "--benchmark_out_format=json",
               f"--benchmark_min_time={min_time}"]
        proc = subprocess.run(cmd, stdout=subprocess.PIPE,
                              stderr=subprocess.STDOUT, timeout=1800)
        if proc.returncode != 0:
            sys.stderr.write(proc.stdout.decode(errors="replace"))
            raise RuntimeError(f"{binary} exited {proc.returncode}")
        with open(out_path) as f:
            return json.load(f)
    finally:
        os.unlink(out_path)


def merge(reports, label, min_time):
    merged = {
        "date": datetime.date.today().isoformat(),
        "label": label,
        "min_time_s": min_time,
        "machine": {
            "platform": platform.platform(),
            "cpus": os.cpu_count(),
        },
        "benchmarks": {},
    }
    for binary, report in reports.items():
        entries = {}
        for bm in report.get("benchmarks", []):
            if bm.get("run_type") == "aggregate":
                continue
            entry = {
                "real_time": bm.get("real_time"),
                "cpu_time": bm.get("cpu_time"),
                "time_unit": bm.get("time_unit"),
            }
            counters = {k: v for k, v in bm.items()
                        if k not in entry and isinstance(v, (int, float))
                        and k not in ("iterations", "repetitions",
                                      "repetition_index", "threads",
                                      "family_index",
                                      "per_family_instance_index")}
            if counters:
                entry["counters"] = counters
            entries[bm["name"]] = entry
        merged["benchmarks"][binary] = entries
    return merged


def previous_baseline(root, exclude):
    candidates = [p for p in sorted(glob.glob(os.path.join(root, "BENCH_*.json")))
                  if os.path.abspath(p) != os.path.abspath(exclude)]
    return candidates[-1] if candidates else None


def to_ns(value, unit):
    scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}.get(unit, 1.0)
    return value * scale


def diff(old, new, threshold=REGRESS_THRESHOLD):
    """Prints per-benchmark old/new real-time ratios; returns regressions."""
    regressions = []
    print(f"--- diff: {old.get('label') or old.get('date')} -> "
          f"{new.get('label') or new.get('date')} ---")
    print(f"{'benchmark':<58} {'old':>12} {'new':>12} {'new/old':>8}")
    for binary, entries in sorted(new["benchmarks"].items()):
        base = os.path.basename(binary)
        old_entries = None
        for ob, oe in old["benchmarks"].items():
            if os.path.basename(ob) == base:
                old_entries = oe
                break
        if old_entries is None:
            print(f"{base:<58} {'(new binary)':>12}")
            continue
        for name, entry in entries.items():
            old_entry = old_entries.get(name)
            label = f"{base}:{name}"
            if old_entry is None:
                print(f"{label:<58} {'(new)':>12}")
                continue
            old_ns = to_ns(old_entry["real_time"], old_entry.get("time_unit", "ns"))
            new_ns = to_ns(entry["real_time"], entry.get("time_unit", "ns"))
            if old_ns <= 0:
                continue
            ratio = new_ns / old_ns
            flag = ""
            if ratio > threshold:
                flag = "  REGRESSION"
                regressions.append((label, ratio))
            elif ratio < 1.0 / threshold:
                flag = "  improved"
            print(f"{label:<58} {old_ns/1e6:>10.3f}ms {new_ns/1e6:>10.3f}ms "
                  f"{ratio:>7.2f}x{flag}")
    if regressions:
        print(f"\n{len(regressions)} regression(s) > "
              f"{(threshold - 1) * 100:.0f}%:")
        for label, ratio in regressions:
            print(f"  {label}: {ratio:.2f}x")
    else:
        print("\nno regressions")
    return regressions


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--build-dir", default=None,
                        help="build tree containing bench/ (default: <root>/build)")
    parser.add_argument("--label", default="",
                        help="suffix for the output file name")
    parser.add_argument("--min-time", type=float, default=0.05,
                        help="--benchmark_min_time per benchmark (seconds)")
    parser.add_argument("--only", default="",
                        help="comma-separated substring filter on bench "
                             "binary names (e.g. --only c5,layout)")
    parser.add_argument("--out", default=None, help="explicit output path")
    parser.add_argument("--fail-on-regress", action="store_true",
                        help="exit 1 when the diff shows a regression")
    parser.add_argument("--regress-threshold", type=float,
                        default=REGRESS_THRESHOLD,
                        help="new/old real-time ratio above which a "
                             "benchmark counts as regressed "
                             f"(default {REGRESS_THRESHOLD}; CI uses 1.25 "
                             "for the noisier layout benches)")
    parser.add_argument("--diff-only", nargs=2, metavar=("OLD", "NEW"),
                        help="skip running; diff two existing baseline files")
    args = parser.parse_args()

    root = repo_root()
    if args.diff_only:
        with open(args.diff_only[0]) as f:
            old = json.load(f)
        with open(args.diff_only[1]) as f:
            new = json.load(f)
        regressions = diff(old, new, args.regress_threshold)
        return 1 if (regressions and args.fail_on_regress) else 0

    build_dir = args.build_dir or os.path.join(root, "build")
    benches = find_benches(build_dir, args.only)
    if not benches:
        sys.stderr.write(f"no bench binaries under {build_dir}/bench "
                         f"(build first: cmake --build {build_dir})\n")
        return 1

    reports = {}
    for binary in benches:
        name = os.path.basename(binary)
        sys.stderr.write(f"running {name} ...\n")
        reports[os.path.relpath(binary, root)] = run_bench(binary, args.min_time)

    merged = merge(reports, args.label, args.min_time)
    date = merged["date"]
    suffix = f"_{re.sub(r'[^A-Za-z0-9_-]', '', args.label)}" if args.label else ""
    out_path = args.out or os.path.join(root, f"BENCH_{date}{suffix}.json")
    prev = previous_baseline(root, exclude=out_path)
    with open(out_path, "w") as f:
        json.dump(merged, f, indent=1, sort_keys=True)
        f.write("\n")
    print(f"wrote {out_path}")

    if prev:
        with open(prev) as f:
            old = json.load(f)
        regressions = diff(old, merged, args.regress_threshold)
        if regressions and args.fail_on_regress:
            return 1
    else:
        print("no previous baseline to diff against")
    return 0


if __name__ == "__main__":
    sys.exit(main())
