#!/usr/bin/env sh
# One-command static analysis gate:
#
#   tools/run_static_analysis.sh                # conventions + tidy + sanitizers
#   tools/run_static_analysis.sh --fast         # skip the sanitizer suites
#   tools/run_static_analysis.sh --no-tidy      # skip clang-tidy
#
# Stages (each gated on tool availability, each fatal on findings):
#   1. tools/check_conventions.py      header guards, includes, no-throw
#   2. clang-tidy                      on files changed vs origin/main (or
#                                      HEAD~1), using the default preset's
#                                      compile_commands.json
#   3. ctest under asan-ubsan + tsan   the full suite per sanitizer preset
#
# Every cmake invocation goes through CMakePresets.json, so the build dirs
# here are the same ones documented in CLAUDE.md (build/, build-asan/,
# build-tsan/).

set -eu

root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$root"

run_sanitizers=1
run_tidy=1
for arg in "$@"; do
  case "$arg" in
    --fast) run_sanitizers=0 ;;
    --no-tidy) run_tidy=0 ;;
    *) echo "unknown flag: $arg" >&2; exit 2 ;;
  esac
done

echo "== stage 1: source conventions =="
python3 tools/check_conventions.py "$root"

if [ "$run_tidy" -eq 1 ]; then
  if command -v clang-tidy >/dev/null 2>&1; then
    echo "== stage 2: clang-tidy on changed files =="
    # Need a compile database; the default preset exports one.
    if [ ! -f build/compile_commands.json ]; then
      cmake --preset default
    fi
    base="origin/main"
    git rev-parse --verify --quiet "$base" >/dev/null || base="HEAD~1"
    changed="$(git diff --name-only --diff-filter=d "$base" -- \
                   'src/*.cc' 'src/*.h' 'tests/*.cc' 'bench/*.cc' \
                   'tools/*.cpp' || true)"
    if [ -n "$changed" ]; then
      # shellcheck disable=SC2086  # word-splitting the file list is the point
      clang-tidy -p build --quiet $changed
    else
      echo "no changed C++ files vs $base"
    fi
  else
    echo "== stage 2: clang-tidy not installed, skipping =="
  fi
fi

if [ "$run_sanitizers" -eq 1 ]; then
  for preset in asan-ubsan tsan; do
    echo "== stage 3: ctest under $preset =="
    cmake --preset "$preset"
    cmake --build --preset "$preset"
    ctest --preset "$preset"
  done
else
  echo "== stage 3: sanitizer suites skipped (--fast) =="
fi

echo "static analysis: all stages passed"
