#!/usr/bin/env python3
"""Repository convention linter, run as a ctest (see tools/CMakeLists.txt).

Checks, over src/ tools/ tests/ bench/ examples/:
  1. Every header under src/ uses the guard STETHO_<PATH>_H_ derived from its
     path relative to src/ (CLAUDE.md convention), with matching #define and
     a trailing #endif comment.
  2. No `throw` statements in src/ — public APIs report errors through
     stetho::Status / stetho::Result<T>.
  3. Project includes are written relative to src/ (no "../" includes).

Exit status: 0 clean, 1 violations (listed one per line), 2 usage error.
"""

import re
import sys
from pathlib import Path

THROW_RE = re.compile(r"\bthrow\b")
REL_INCLUDE_RE = re.compile(r'#\s*include\s+"\.\./')


def expected_guard(header: Path, src_root: Path) -> str:
    rel = header.relative_to(src_root)
    token = re.sub(r"[^A-Za-z0-9]", "_", str(rel.with_suffix("")))
    return f"STETHO_{token.upper()}_H_"


def strip_comments_and_strings(text: str) -> str:
    """Removes // and /* */ comments plus string/char literals, so a `throw`
    inside a comment or a log message does not trip the checker."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            i = n if j < 0 else j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            i = n if j < 0 else j + 2
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == quote:
                    break
                j += 1
            i = j + 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def check_header_guard(path: Path, src_root: Path, problems: list) -> None:
    text = path.read_text(encoding="utf-8", errors="replace")
    guard = expected_guard(path, src_root)
    if f"#ifndef {guard}" not in text:
        problems.append(f"{path}: missing '#ifndef {guard}'")
        return
    if f"#define {guard}" not in text:
        problems.append(f"{path}: missing '#define {guard}'")
    if f"#endif  // {guard}" not in text:
        problems.append(f"{path}: missing '#endif  // {guard}' trailer")


def main(argv):
    if len(argv) != 2:
        print("usage: check_conventions.py <repo-root>", file=sys.stderr)
        return 2
    root = Path(argv[1]).resolve()
    src_root = root / "src"
    if not src_root.is_dir():
        print(f"{src_root} is not a directory", file=sys.stderr)
        return 2

    problems = []
    for header in sorted(src_root.rglob("*.h")):
        check_header_guard(header, src_root, problems)

    sources = sorted(src_root.rglob("*.h")) + sorted(src_root.rglob("*.cc"))
    for path in sources:
        text = path.read_text(encoding="utf-8", errors="replace")
        code = strip_comments_and_strings(text)
        for lineno, line in enumerate(code.splitlines(), start=1):
            if THROW_RE.search(line):
                problems.append(
                    f"{path}:{lineno}: 'throw' in src/ — use stetho::Status"
                )
        for lineno, line in enumerate(text.splitlines(), start=1):
            if REL_INCLUDE_RE.search(line):
                problems.append(
                    f"{path}:{lineno}: relative include — write includes "
                    "project-relative from src/"
                )

    for p in problems:
        print(p)
    if problems:
        print(f"{len(problems)} convention violations")
        return 1
    print("conventions OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
